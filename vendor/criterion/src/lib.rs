//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with `sample_size` /
//! `throughput` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It really measures: each benchmark is warmed up, then timed for
//! `sample_size` samples, and the per-iteration median is printed. There is
//! no statistical analysis, plotting, or HTML report — swap the real
//! criterion back in (same manifests, registry access required) for those.
//!
//! Two environment variables support the CI quick-bench step:
//!
//! * `POLYGEN_BENCH_SAMPLES=<n>` — sampling mode: override every group's
//!   sample count (e.g. `2` for a fast trend-tracking run).
//! * `POLYGEN_BENCH_JSON=<path>` — append one JSON object per benchmark
//!   (`{"group","bench","median_ns"}`, JSON-lines) to `path`; CI collects
//!   these into the `BENCH_pipeline.json` artifact.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units-of-work declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, &mut routine);
        self.report(&id.label, median);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, &mut |b: &mut Bencher| routine(b, input));
        self.report(&id.label, median);
        self
    }

    /// Finish the group. (Reports are emitted eagerly; this is for API
    /// compatibility and marks the group boundary in the output.)
    pub fn finish(&mut self) {
        self.criterion.benches_run += 1;
    }

    fn report(&self, label: &str, per_iter: Duration) {
        if let Ok(path) = std::env::var("POLYGEN_BENCH_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{}}}\n",
                    json_escape(&self.name),
                    json_escape(label),
                    per_iter.as_nanos()
                );
                let _ = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| f.write_all(line.as_bytes()));
            }
        }
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
                let rate = n as f64 / per_iter.as_secs_f64();
                format!("  thrpt: {rate:.3e} elem/s")
            }
            Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
                let rate = n as f64 / per_iter.as_secs_f64();
                format!("  thrpt: {rate:.3e} B/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{label}  time: {}{throughput}",
            self.name,
            format_duration(per_iter)
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Print a one-line summary after all groups have run.
    pub fn final_summary(&self) {
        println!("criterion(stub): {} group(s) completed", self.benches_run);
    }
}

/// Minimal JSON string escaping for bench labels.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Calibrate an iteration count, then time `sample_size` samples and return
/// the median per-iteration duration. `POLYGEN_BENCH_SAMPLES` overrides
/// the sample count (the CI quick-bench sampling mode).
fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, routine: &mut F) -> Duration {
    let sample_size = std::env::var("POLYGEN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(sample_size, |n| n.max(2));
    // Calibration: find an iteration count that takes roughly 2ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
        })
        .collect();
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` and criterion's own flags are
            // accepted but ignored by this offline stub.
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("merge/strategy"), "merge/strategy");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
