//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand 0.9` API surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`]/[`RngExt`] traits with `random::<T>()` and `random_range(a..b)`.
//! The generator is SplitMix64 — deterministic per seed, statistically solid
//! for workload synthesis, and not suitable for cryptography.

use core::ops::Range;

/// Minimal core-RNG trait: a source of uniformly distributed `u64`s.
pub trait Rng {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`Rng`], mirroring `rand`'s ergonomics.
pub trait RngExt: Rng {
    /// Sample a value from its standard distribution (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range. Panics if `range` is empty.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution.
pub trait StandardSample {
    /// Draw one value using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types samplable uniformly from a `Range`.
pub trait UniformSample: Sized {
    /// Uniform draw from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // for every integer width we support, so the retry loop is
                // short and the result exact.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        let offset = raw % span;
                        return range.start.wrapping_add(offset as Self);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.random_range(0..5u32);
            assert!(u < 5);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
