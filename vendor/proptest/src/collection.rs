//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Acceptable length specifications for [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Strategy yielding vectors whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generate vectors of values from `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec");
        let exact = vec(0u8..10, 3);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
        let ranged = vec(0u8..10, 1..5);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
