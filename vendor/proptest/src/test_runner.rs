//! Test configuration and the deterministic RNG driving generation.

/// Subset of `proptest::test_runner::Config`: just the case count.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated inputs each property is checked against.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// SplitMix64 generator seeded per test for reproducible runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a deterministic seed from the test's name so every run (and
    /// every machine) explores the same inputs.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash | 1 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }
}
