//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a pure generator driven by the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy {
            generate: Rc::new(move |rng| map(inner.new_value(rng))),
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy {
            generate: Rc::new(move |rng| inner.new_value(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-typed strategies (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        generate: Rc::new(move |rng| {
            let pick = rng.below(arms.len() as u64) as usize;
            arms[pick].new_value(rng)
        }),
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = rng.below(span);
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (0i64..6, 1u16..4).prop_map(|(a, b)| a + i64::from(b));
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_test("union");
        let strat = union(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
