//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::{BoxedStrategy, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `A`.
pub fn any<A: Arbitrary + 'static>() -> BoxedStrategy<A> {
    AnyStrategy(std::marker::PhantomData).boxed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::for_test("bool");
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(strat.new_value(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
