//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API the workspace tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / [`Just`] strategies,
//! [`collection::vec`], [`any`], `prop_oneof!`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert*` macros.
//!
//! It is a real randomized property tester — each `#[test]` runs its body
//! over `cases` freshly generated inputs from a per-test deterministic seed —
//! but it does **not** shrink failures or persist regression files. Failures
//! therefore report the full failing input via the standard panic message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: an optional `#![proptest_config(..)]` header, then
/// `fn name(pattern in strategy, ...) { body }` items (attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                // Build the strategies once; tuples of strategies are
                // themselves a strategy, generating componentwise.
                let __strategy = ($(($strat),)+);
                for __case in 0..__config.cases {
                    let __case: u32 = __case;
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Assert within a property (stub: plain `assert!`, aborting the run).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assert within a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Inequality assert within a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
