//! # polygen — facade crate
//!
//! A from-scratch Rust reproduction of Wang & Madnick's *"A Polygen Model
//! for Heterogeneous Database Systems: The Source Tagging Perspective"*
//! (MIT Sloan, 1990): the polygen data model and algebra with data-source
//! and intermediate-source tagging, the data-driven polygen query
//! translator, the Polygen Query Processor, Local Query Processors, and the
//! surrounding Composite Information System architecture.
//!
//! This crate re-exports the whole workspace under stable module names; see
//! `README.md` for a tour and `examples/` for runnable entry points:
//!
//! * [`flat`] — untagged relational substrate (local DBMS engine, baseline).
//! * [`core`] — the polygen model: tagged cells, relations, and the
//!   six-primitive polygen algebra.
//! * [`catalog`] — polygen schemes/schemas, attribute mappings, the CIS
//!   data dictionary, and the paper's complete MIT scenario.
//! * [`lqp`] — Local Query Processors (Figure 1).
//! * [`index`] — secondary indexes over source relations: hash and
//!   sorted ordinal indexes the planner pushes selective predicates
//!   onto, rebuilt per source on snapshot version bumps.
//! * [`sql`] — SQL polygen-query and algebra-expression front ends.
//! * [`pqp`] — the Polygen Query Processor (Figure 2): Syntax Analyzer,
//!   two-pass Polygen Operation Interpreter (Figures 3–4), optimizer,
//!   executor.
//! * [`federation`] — the CIS workstation: application schemas, the
//!   Application Query Processor, credibility-based conflict resolution.
//! * [`serve`] — the concurrent query service: federation snapshots
//!   with per-source versioning, plan & tagged-result caching, sessions,
//!   admission control and a shared thread budget.
//! * [`net`] — the TCP front door: a length-prefixed binary protocol
//!   over the serve layer's request/response envelope, with a blocking
//!   client and a closed-loop TCP load generator.
//! * [`obs`] — zero-dependency observability primitives: the
//!   `Trace`/`Span` recorder behind query tracing and EXPLAIN ANALYZE,
//!   lock-free latency histograms with Prometheus exposition, exact
//!   percentile summaries, and the ranked slow-query log.
//! * [`workload`] — seeded synthetic-federation generator and
//!   closed-loop multi-client driver for benchmarks.

pub use polygen_catalog as catalog;
pub use polygen_core as core;
pub use polygen_federation as federation;
pub use polygen_flat as flat;
pub use polygen_index as index;
pub use polygen_lqp as lqp;
pub use polygen_net as net;
pub use polygen_obs as obs;
pub use polygen_pqp as pqp;
pub use polygen_serve as serve;
pub use polygen_sql as sql;
pub use polygen_workload as workload;

/// One-stop import for examples and downstream users.
///
/// The two `algebra` modules stay qualified to avoid ambiguity: use
/// `core::algebra` for the tagged operators and `flat::algebra` for the
/// untagged baseline.
pub mod prelude {
    pub use polygen_catalog::prelude::*;
    pub use polygen_core::prelude::{
        lineage, render_cell, render_relation, render_tuple, Cell, ConflictPolicy, PolyTuple,
        PolygenError, PolygenRelation, SourceId, SourceRegistry, SourceSet,
    };
    pub use polygen_federation::prelude::*;
    pub use polygen_flat::prelude::{
        Cmp, FlatError, Relation, RelationBuilder, Row, Schema, Value,
    };
    pub use polygen_lqp::prelude::*;
    pub use polygen_pqp::prelude::*;
    pub use polygen_sql::prelude::*;
}
