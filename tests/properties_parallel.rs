//! Differential property tests for partition-parallel execution.
//!
//! For random federations, policies and thread counts P ∈ {1, 2, 4, 8},
//! the parallel physical engine must produce output — tuples *and* ONTJ
//! tags — identical to `execute_eager` and to the sequential physical
//! engine (byte-identical there, order included). The kernel-level
//! properties additionally drive `hash_merge_partitioned` and
//! `hash_equi_join_coalesced_partitioned` through their fallback paths:
//! duplicate non-nil keys inside an operand and Int/Float-mixed key
//! columns, both of which must take the reference route and still match.

mod common;

use common::fixtures::{assert_parallel_matches, conflicted_config, small_config};
use polygen::catalog::prelude::scenario;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::core::algebra::merge::{hash_merge_partitioned, merge};
use polygen::core::algebra::{equi_join_coalesced, hash_equi_join_coalesced_partitioned};
use polygen::core::stream::ParallelOptions;
use polygen::core::{Cell, PolygenRelation, SourceId};
use polygen::flat::{Schema, Value};
use polygen::sql::prelude::PAPER_EXPRESSION;
use polygen::workload;
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A tagged relation named `name` with attributes `K, <name>_V`, one
/// tuple per `(key, value)` pair (`None` = nil key), all cells
/// originating from `source`. Keys are deliberately drawn from a tiny
/// space so duplicates (the fold-fallback trigger) are common.
fn keyed_relation(name: &str, source: u16, rows: &[(Option<i64>, i64, bool)]) -> PolygenRelation {
    let schema = Arc::new(
        Schema::from_parts(
            name,
            vec![Arc::from("K"), Arc::from(format!("{name}_V").as_str())],
            Vec::new(),
        )
        .unwrap(),
    );
    let tuples = rows
        .iter()
        .map(|(key, value, float_key)| {
            let k = match key {
                None => Value::Null,
                Some(k) if *float_key => Value::float(*k as f64),
                Some(k) => Value::int(*k),
            };
            vec![
                Cell::retrieved(k, SourceId(source)),
                Cell::retrieved(Value::int(*value), SourceId(source)),
            ]
        })
        .collect();
    PolygenRelation::from_tuples(schema, tuples).unwrap()
}

type KeyedRows = Vec<(Option<i64>, i64, bool)>;

/// Rows with keys in 0..6 (duplicates likely), occasional nils, and an
/// occasional Float key to force the Int/Float fallback.
fn keyed_rows() -> impl Strategy<Value = KeyedRows> {
    proptest::collection::vec(
        (
            prop_oneof![
                (0i64..6).prop_map(Some),
                (0i64..6).prop_map(Some),
                (0i64..6).prop_map(Some),
                Just(None),
            ],
            0i64..100,
            prop_oneof![
                Just(false),
                Just(false),
                Just(false),
                Just(false),
                Just(true)
            ],
        ),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random expressions over random federations, across thread counts:
    /// parallel = sequential = eager, answer and trace, tags included.
    #[test]
    fn parallel_matches_eager_and_sequential(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        // ≥ 64 entities so the parallel paths cross the executor's
        // small-input threshold and genuinely run partitioned.
        let config = small_config(fed_seed, sources, 64);
        let sc = workload::generate(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        assert_parallel_matches(&sc, &expr.to_string(), ConflictPolicy::Strict, THREAD_COUNTS[tidx]);
    }

    /// Conflicting federations under every policy: the partitioned merge
    /// must demote losers exactly like the fold, and `Strict` must reject
    /// with the same error kind in all three engines.
    #[test]
    fn parallel_agrees_under_conflict_policies(
        fed_seed in any::<u64>(),
        sources in 2usize..5,
        policy_idx in 0usize..3,
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        let sc = workload::generate(&conflicted_config(fed_seed, sources, 64));
        let policy = [
            ConflictPolicy::Strict,
            ConflictPolicy::PreferLeft,
            ConflictPolicy::PreferRight,
        ][policy_idx];
        let threads = THREAD_COUNTS[tidx];
        assert_parallel_matches(&sc, "PENTITY [ENAME, CATEGORY]", policy, threads);
        assert_parallel_matches(&sc, "PENTITY [CATEGORY = \"C0\"]", policy, threads);
    }

    /// Kernel-level: the partitioned merge equals the ONTJ fold
    /// tuple-for-tuple (order included) on arbitrary small operands —
    /// including the duplicate-key and Int/Float-mixed-key inputs that
    /// take the fallback path inside `hash_merge_partitioned`.
    #[test]
    fn partitioned_merge_matches_fold_on_arbitrary_operands(
        a in keyed_rows(),
        b in keyed_rows(),
        c in keyed_rows(),
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        let rels = [
            keyed_relation("A", 0, &a),
            keyed_relation("B", 1, &b),
            keyed_relation("C", 2, &c),
        ];
        // Per-operand value columns are disjoint, so non-key coalesces
        // never conflict; key coalesces only conflict on θ-equal
        // Int/Float pairs, which both paths must reject identically.
        let par = ParallelOptions::with_threads(THREAD_COUNTS[tidx]);
        match (
            merge(&rels, "K", ConflictPolicy::Strict),
            hash_merge_partitioned(&rels, "K", ConflictPolicy::Strict, par),
        ) {
            (Ok((fold, _)), Ok((parl, _))) => {
                prop_assert_eq!(fold.schema().attrs(), parl.schema().attrs());
                prop_assert_eq!(fold.tuples(), parl.tuples(), "order included");
            }
            (Err(_), Err(_)) => {}
            (f, p) => panic!(
                "fold {:?} vs partitioned {:?}",
                f.map(|_| ()),
                p.map(|_| ())
            ),
        }
    }

    /// Kernel-level: the partitioned join equals the reference coalesced
    /// equi-join tuple-for-tuple, duplicates, nils and the Int/Float
    /// fallback included.
    #[test]
    fn partitioned_join_matches_reference_on_arbitrary_inputs(
        l in keyed_rows(),
        r in keyed_rows(),
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        let left = keyed_relation("L", 0, &l);
        let right = keyed_relation("R", 1, &r);
        let par = ParallelOptions::with_threads(THREAD_COUNTS[tidx]);
        match (
            equi_join_coalesced(&left, &right, "K", "K", "K"),
            hash_equi_join_coalesced_partitioned(&left, &right, "K", "K", "K", par),
        ) {
            (Ok(reference), Ok(parl)) => {
                prop_assert_eq!(reference.schema().attrs(), parl.schema().attrs());
                prop_assert_eq!(reference.tuples(), parl.tuples(), "order included");
            }
            (Err(_), Err(_)) => {}
            (f, p) => panic!(
                "reference {:?} vs partitioned {:?}",
                f.map(|_| ()),
                p.map(|_| ())
            ),
        }
    }
}

/// The paper's own pipeline across every thread count — scan, hash join,
/// hash merge, fused restrict+project and the alias machinery at once.
#[test]
fn paper_query_is_identical_across_thread_counts() {
    let s = scenario::build();
    for threads in THREAD_COUNTS {
        assert_parallel_matches(&s, PAPER_EXPRESSION, ConflictPolicy::Strict, threads);
    }
}

/// Set operations, anti-join and the θ fallback stay correct when the
/// engine around them runs parallel.
#[test]
fn set_ops_and_theta_joins_agree_in_parallel() {
    let s = scenario::build();
    for expr in [
        "(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])",
        "PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])",
        "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
        "PCAREER [AID# < AID#] PCAREER",
        "PALUMNUS TIMES PFINANCE",
    ] {
        assert_parallel_matches(&s, expr, ConflictPolicy::Strict, 4);
    }
}

/// A federation large enough that every parallel operator is actually
/// exercised above the small-input threshold, swept across thread counts
/// and a detail join (the probe side carries duplicate keys).
#[test]
fn large_federation_join_and_merge_across_thread_counts() {
    let config = small_config(0xfeed, 4, 200);
    let sc = workload::generate(&config);
    for threads in THREAD_COUNTS {
        assert_parallel_matches(
            &sc,
            "((PDETAIL [SCORE >= 40]) [ENAME = ENAME] PENTITY) [ENAME, CATEGORY]",
            ConflictPolicy::Strict,
            threads,
        );
    }
}
