//! Shared helpers for the integration-test binaries: the golden-table
//! transcription checker (below) and the federation/engine fixtures the
//! property suites share ([`fixtures`]).
//!
//! Expected tables are transcribed from the paper in a compact notation:
//! one string per tuple, cells separated by `|`, each cell written
//! `datum @<origins> ^<intermediates>` where origins/intermediates are
//! letter strings (`A` = AD, `P` = PD, `C` = CD) and `-` is the empty
//! set. Example: `Genentech @AC ^AC | Bob Swanson @C ^AC`.

// Each test binary compiles this module separately and uses only the
// helpers it needs; what one binary leaves unused is not dead code.
#![allow(dead_code)]

pub mod fixtures;

use polygen::core::{PolygenRelation, SourceRegistry, SourceSet};
use polygen::flat::Value;

/// Translate a letter string into a source set via the registry.
fn parse_sources(letters: &str, reg: &SourceRegistry) -> SourceSet {
    if letters == "-" {
        return SourceSet::empty();
    }
    letters
        .chars()
        .map(|c| {
            let name = match c {
                'A' => "AD",
                'P' => "PD",
                'C' => "CD",
                other => panic!("unknown source letter `{other}`"),
            };
            reg.lookup(name)
                .unwrap_or_else(|| panic!("source `{name}` not interned"))
        })
        .collect()
}

/// Parse one `datum @o ^i` cell.
fn parse_cell(text: &str, reg: &SourceRegistry) -> (Value, SourceSet, SourceSet) {
    let at = text
        .find('@')
        .unwrap_or_else(|| panic!("cell `{text}` missing @"));
    let caret = text
        .find('^')
        .unwrap_or_else(|| panic!("cell `{text}` missing ^"));
    assert!(at < caret, "cell `{text}`: expected @ before ^");
    let datum_text = text[..at].trim();
    let origins = text[at + 1..caret].trim();
    let inters = text[caret + 1..].trim();
    let datum = if datum_text == "nil" {
        Value::Null
    } else {
        Value::str(datum_text)
    };
    (
        datum,
        parse_sources(origins, reg),
        parse_sources(inters, reg),
    )
}

/// Render one actual cell back into the compact notation for diffs.
fn show_cell(cell: &polygen::core::Cell, reg: &SourceRegistry) -> String {
    let letters = |s: &SourceSet| -> String {
        if s.is_empty() {
            return "-".into();
        }
        s.iter()
            .map(|id| match reg.name(id) {
                "AD" => 'A',
                "PD" => 'P',
                "CD" => 'C',
                other => panic!("unexpected source {other}"),
            })
            .collect()
    };
    format!(
        "{} @{} ^{}",
        cell.datum,
        letters(&cell.origin),
        letters(&cell.intermediate)
    )
}

/// Assert a relation equals a transcribed paper table, cell-exactly
/// (data, origin tags and intermediate tags), ignoring tuple order.
pub fn check_table(
    label: &str,
    rel: &PolygenRelation,
    reg: &SourceRegistry,
    attrs: &[&str],
    expected_rows: &[&str],
) {
    let actual_attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
    assert_eq!(actual_attrs, attrs, "{label}: attribute list mismatch");
    assert_eq!(
        rel.len(),
        expected_rows.len(),
        "{label}: row count mismatch\nactual:\n{}",
        rel.tuples()
            .iter()
            .map(|t| t
                .iter()
                .map(|c| show_cell(c, reg))
                .collect::<Vec<_>>()
                .join(" | "))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let mut expected: Vec<Vec<(Value, SourceSet, SourceSet)>> = expected_rows
        .iter()
        .map(|row| {
            let cells: Vec<_> = row.split('|').map(|c| parse_cell(c, reg)).collect();
            assert_eq!(
                cells.len(),
                attrs.len(),
                "{label}: transcription row has wrong arity: {row}"
            );
            cells
        })
        .collect();
    let mut actual: Vec<Vec<(Value, SourceSet, SourceSet)>> = rel
        .tuples()
        .iter()
        .map(|t| {
            t.iter()
                .map(|c| (c.datum.clone(), c.origin.clone(), c.intermediate.clone()))
                .collect()
        })
        .collect();
    expected.sort();
    actual.sort();
    for (i, (e, a)) in expected.iter().zip(&actual).enumerate() {
        if e != a {
            let render = |row: &Vec<(Value, SourceSet, SourceSet)>| -> String {
                row.iter()
                    .map(|(d, o, ins)| {
                        format!("{d} o={} i={}", reg.render_set(o), reg.render_set(ins))
                    })
                    .collect::<Vec<_>>()
                    .join(" | ")
            };
            panic!(
                "{label}: tuple {i} differs\n expected: {}\n actual:   {}",
                render(e),
                render(a)
            );
        }
    }
}
