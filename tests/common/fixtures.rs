//! Federation/scenario builders and engine-agreement assertions shared by
//! the property suites (`properties_executor`, `properties_pipeline`,
//! `properties_parallel`).
//!
//! The central assertion is [`assert_parallel_matches`]: one expression,
//! three engines — the eager row-by-row reference interpreter, the
//! sequential physical engine, and the partition-parallel physical engine
//! at a given thread count — must produce identical relations (data,
//! origin tags *and* intermediate tags), for the answer and for every
//! traced `R(n)`; and the sequential and parallel physical runs must be
//! byte-identical including tuple order.

use polygen::catalog::scenario::Scenario;
use polygen::catalog::schema::PolygenSchema;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::parse_algebra;
use polygen::workload::{self, WorkloadConfig};

/// A small, fast-to-generate federation config for property tests. The
/// entity pool stays ≥ 64 tuples so parallel runs actually cross the
/// executor's small-input threshold.
pub fn small_config(seed: u64, sources: usize, entities: usize) -> WorkloadConfig {
    WorkloadConfig::default()
        .with_seed(seed)
        .with_sources(sources)
        .with_entities(entities)
}

/// The same with a positive conflict rate, to exercise the resolution
/// policies (and the `Strict` rejection paths).
pub fn conflicted_config(seed: u64, sources: usize, entities: usize) -> WorkloadConfig {
    WorkloadConfig {
        conflict_rate: 0.3,
        ..small_config(seed, sources, entities)
    }
}

/// Generate the federation and stand up a PQP over it.
pub fn generate_pqp(config: &WorkloadConfig) -> (Scenario, Pqp) {
    let scenario = workload::generate(config);
    let pqp = Pqp::for_scenario(&scenario);
    (scenario, pqp)
}

/// Compile an algebra expression to its (unoptimized) IOM.
pub fn compile(expr: &str, schema: &PolygenSchema) -> Iom {
    let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
    interpret(&pom, schema).unwrap().1
}

/// Same error variant (and, for algebra errors, same inner variant) —
/// payloads may differ legitimately (the fold, the hash merge and the
/// partitioned merge detect the first conflict in different orders).
pub fn same_error_kind(a: &PqpError, b: &PqpError) -> bool {
    use std::mem::discriminant;
    if discriminant(a) != discriminant(b) {
        return false;
    }
    match (a, b) {
        (PqpError::Polygen(x), PqpError::Polygen(y)) => discriminant(x) == discriminant(y),
        _ => true,
    }
}

/// Run one expression through the eager reference interpreter, the
/// sequential physical engine and the partition-parallel physical engine
/// at `threads` workers, and assert they agree completely — answers and
/// every retained `R(n)` (tags included), with the two physical runs
/// additionally byte-identical in tuple order. Rejections must agree in
/// error kind across all three.
pub fn assert_parallel_matches(
    scenario: &Scenario,
    expr: &str,
    policy: ConflictPolicy,
    threads: usize,
) {
    let registry = polygen::lqp::scenario_registry(scenario);
    let iom = compile(expr, scenario.dictionary.schema());
    let opts = |threads: usize, retain: bool| ExecOptions {
        conflict_policy: policy,
        retain_intermediates: retain,
        threads,
        partitions: threads,
        batch: None,
        ..ExecOptions::default()
    };
    let eager = execute_eager(&iom, &registry, &scenario.dictionary, opts(1, false));
    let sequential = execute(&iom, &registry, &scenario.dictionary, opts(1, false));
    let parallel = execute(&iom, &registry, &scenario.dictionary, opts(threads, false));
    match (eager, sequential, parallel) {
        (Ok((eager, _)), Ok((seq, _)), Ok((parl, _))) => {
            assert!(
                eager.tagged_set_eq(&seq),
                "eager vs sequential diverge on `{expr}`:\n eager: {} rows\n sequential: {} rows",
                eager.len(),
                seq.len()
            );
            assert!(
                eager.tagged_set_eq(&parl),
                "eager vs parallel({threads}) diverge on `{expr}`:\n eager: {} rows\n parallel: {} rows",
                eager.len(),
                parl.len()
            );
            assert_eq!(
                seq.tuples(),
                parl.tuples(),
                "parallel({threads}) is not byte-identical to sequential on `{expr}`"
            );
            // Retained runs: every traced R(n) must match across engines.
            let (_, eager_trace) =
                execute_eager(&iom, &registry, &scenario.dictionary, opts(1, true)).unwrap();
            let (_, seq_trace) =
                execute(&iom, &registry, &scenario.dictionary, opts(1, true)).unwrap();
            let (_, parl_trace) =
                execute(&iom, &registry, &scenario.dictionary, opts(threads, true)).unwrap();
            assert_eq!(eager_trace.results.len(), seq_trace.results.len());
            assert_eq!(eager_trace.results.len(), parl_trace.results.len());
            for (pr, rel) in &eager_trace.results {
                assert!(
                    rel.tagged_set_eq(seq_trace.result(*pr).expect("traced row")),
                    "sequential R({pr}) diverges on `{expr}`"
                );
                assert!(
                    rel.tagged_set_eq(parl_trace.result(*pr).expect("traced row")),
                    "parallel({threads}) R({pr}) diverges on `{expr}`"
                );
            }
        }
        (Err(ee), Err(se), Err(pe)) => {
            // All three reject (e.g. a strict conflict) — for the same
            // *kind* of reason, or an engine defect could hide behind an
            // unrelated error.
            assert!(
                same_error_kind(&ee, &se),
                "eager and sequential reject `{expr}` differently:\n eager: {ee}\n sequential: {se}"
            );
            assert!(
                same_error_kind(&ee, &pe),
                "eager and parallel({threads}) reject `{expr}` differently:\n eager: {ee}\n parallel: {pe}"
            );
        }
        (eager, sequential, parallel) => panic!(
            "engines disagree on success for `{expr}` (threads = {threads}):\n eager: {}\n sequential: {}\n parallel: {}",
            outcome(&eager),
            outcome(&sequential),
            outcome(&parallel)
        ),
    }
}

/// Sequential physical engine vs the eager reference (no parallelism) —
/// the pre-parallel differential contract.
pub fn assert_engines_agree(scenario: &Scenario, expr: &str, policy: ConflictPolicy) {
    assert_parallel_matches(scenario, expr, policy, 1);
}

/// Run one expression with the columnar batch engine forced on, the row
/// engine forced off, and the eager reference, at `threads` workers, and
/// assert the batch run is byte-identical to the row run (data, tags
/// *and* tuple order) and tag-set-equal to the eager reference.
/// Rejections must agree in error kind across all three.
pub fn assert_batch_matches(
    scenario: &Scenario,
    expr: &str,
    policy: ConflictPolicy,
    threads: usize,
) {
    let registry = polygen::lqp::scenario_registry(scenario);
    let iom = compile(expr, scenario.dictionary.schema());
    let opts = |batch: Option<bool>| ExecOptions {
        conflict_policy: policy,
        retain_intermediates: false,
        threads,
        partitions: threads,
        batch,
        ..ExecOptions::default()
    };
    let eager = execute_eager(&iom, &registry, &scenario.dictionary, opts(None));
    let row = execute(&iom, &registry, &scenario.dictionary, opts(Some(false)));
    let batch = execute(&iom, &registry, &scenario.dictionary, opts(Some(true)));
    match (eager, row, batch) {
        (Ok((eager, _)), Ok((row, _)), Ok((batch, _))) => {
            assert!(
                eager.tagged_set_eq(&batch),
                "eager vs batch({threads}) diverge on `{expr}`:\n eager: {} rows\n batch: {} rows",
                eager.len(),
                batch.len()
            );
            assert_eq!(
                row.tuples(),
                batch.tuples(),
                "batch({threads}) is not byte-identical to the row engine on `{expr}`"
            );
        }
        (Err(ee), Err(re), Err(be)) => {
            assert!(
                same_error_kind(&ee, &re),
                "eager and row engine reject `{expr}` differently:\n eager: {ee}\n row: {re}"
            );
            assert!(
                same_error_kind(&ee, &be),
                "eager and batch({threads}) reject `{expr}` differently:\n eager: {ee}\n batch: {be}"
            );
        }
        (eager, row, batch) => panic!(
            "engines disagree on success for `{expr}` (threads = {threads}):\n eager: {}\n row: {}\n batch: {}",
            outcome(&eager),
            outcome(&row),
            outcome(&batch)
        ),
    }
}

fn outcome<T>(r: &Result<T, PqpError>) -> String {
    match r {
        Ok(_) => "Ok".to_string(),
        Err(e) => format!("Err({e})"),
    }
}
