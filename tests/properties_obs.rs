//! Property tests for the observation layer (`polygen-obs`).
//!
//! The contract under test is *observation without perturbation*:
//!
//! * Executing with an enabled trace recorder must be byte-identical to
//!   executing with a disabled one — same tuples, same order, same tags,
//!   same rejections — across thread counts and both execution engines.
//! * An enabled run's span tree must be well formed (every span closed,
//!   parents enclosing children), with exactly one executor span per
//!   physical node.
//! * EXPLAIN ANALYZE's `act=` row counts are not estimates: they must
//!   equal the materialized `R(n)` sizes the retention-mode executor
//!   produces for the same plan.
//! * The serving histograms' percentiles must agree with the exact
//!   order-statistics summary on identical samples, within the
//!   documented 2× power-of-two bucket resolution.

mod common;

use common::fixtures::{compile, same_error_kind, small_config};
use polygen::catalog::prelude::scenario;
use polygen::lqp::scenario_registry;
use polygen::obs::hist::Histogram;
use polygen::obs::summary::LatencySummary;
use polygen::obs::trace::Trace;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::{parse_algebra, PAPER_EXPRESSION};
use polygen::workload;
use proptest::prelude::*;

/// The fixed expressions that together cover every physical operator
/// kind (scan, index-free pipelines, both hash joins, the nested-loop
/// θ, merge, anti-join, and all four set operators).
const COVERAGE_EXPRESSIONS: &[&str] = &[
    PAPER_EXPRESSION,
    "PCAREER [AID# < AID#] PCAREER",
    "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
    "((PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])) \
     MINUS (PALUMNUS [DEGREE = \"MBA\"])",
    "(PALUMNUS INTERSECT PALUMNUS) TIMES PFINANCE",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random expressions over random federations, executed with the
    /// recorder off and on, across thread counts and both engines: the
    /// answers must be byte-identical (tuple order included) and agree
    /// with the eager reference; rejections must agree in error kind.
    /// The enabled run's span tree must be well formed every time.
    #[test]
    fn tracing_is_invisible_to_results(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
    ) {
        let config = small_config(fed_seed, sources, 50);
        let sc = workload::generate(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        let registry = scenario_registry(&sc);
        let iom = compile(&expr.to_string(), sc.dictionary.schema());
        for threads in [1usize, 4] {
            for batch in [false, true] {
                let opts = |trace: Trace| ExecOptions {
                    threads,
                    partitions: threads,
                    batch: Some(batch),
                    trace,
                    ..ExecOptions::default()
                };
                let eager =
                    execute_eager(&iom, &registry, &sc.dictionary, opts(Trace::disabled()));
                let off = execute(&iom, &registry, &sc.dictionary, opts(Trace::disabled()));
                let recorder = Trace::enabled();
                let on = execute(&iom, &registry, &sc.dictionary, opts(recorder.clone()));
                match (eager, off, on) {
                    (Ok((eager, _)), Ok((off, _)), Ok((on, _))) => {
                        prop_assert_eq!(
                            off.tuples(),
                            on.tuples(),
                            "tracing changed the answer for `{}` (threads={}, batch={})",
                            expr, threads, batch
                        );
                        prop_assert!(
                            eager.tagged_set_eq(&on),
                            "traced run diverges from eager on `{}` (threads={}, batch={})",
                            expr, threads, batch
                        );
                        let report = recorder.report().expect("enabled recorder reports");
                        if let Err(e) = report.well_formed() {
                            panic!(
                                "malformed span tree for `{expr}` \
                                 (threads={threads}, batch={batch}): {e}"
                            );
                        }
                    }
                    (Err(ee), Err(oe), Err(ne)) => {
                        prop_assert!(
                            same_error_kind(&oe, &ne),
                            "tracing changed the rejection for `{}`: off {} vs on {}",
                            expr, oe, ne
                        );
                        prop_assert!(
                            same_error_kind(&ee, &ne),
                            "traced rejection diverges from eager for `{}`: {} vs {}",
                            expr, ee, ne
                        );
                    }
                    (eager, off, on) => {
                        panic!(
                            "engines disagree on success for `{expr}` \
                             (threads={threads}, batch={batch}): eager {} / off {} / on {}",
                            eager.is_ok(),
                            off.is_ok(),
                            on.is_ok()
                        );
                    }
                }
            }
        }
    }

    /// The histogram's nearest-rank percentiles bracket the exact
    /// order-statistics answer on identical samples: never below it,
    /// never more than the 2× bucket width above it, with count and max
    /// exact.
    #[test]
    fn histogram_percentiles_match_exact_summary_within_bucket_resolution(
        samples in proptest::collection::vec(0u64..5_000_000, 1..300),
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record_micros(s);
        }
        let snap = hist.snapshot();
        let exact = LatencySummary::from_micros(samples);
        prop_assert_eq!(snap.count(), exact.count() as u64);
        prop_assert_eq!(snap.max_micros(), exact.max_micros());
        for p in [0.50, 0.95, 0.99] {
            let e = exact.percentile_micros(p);
            let h = snap.percentile_micros(p);
            prop_assert!(
                h >= e,
                "histogram p{} reported below the true percentile: {} < {}",
                p * 100.0, h, e
            );
            prop_assert!(
                h <= e.saturating_mul(2),
                "histogram p{} overshot the 2x bucket resolution: {} > 2 x {}",
                p * 100.0, h, e
            );
        }
    }
}

/// Every coverage expression yields a well-formed span tree with exactly
/// one executor span per physical node, each annotated with its node
/// index and output row count.
#[test]
fn executor_records_one_span_per_node() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
        threads: 1,
        ..PqpOptions::default()
    });
    for expr in COVERAGE_EXPRESSIONS {
        let compiled = pqp.compile(parse_algebra(expr).unwrap()).unwrap();
        let trace = Trace::enabled();
        pqp.run_compiled_traced(&compiled, &trace).unwrap();
        let report = trace.report().expect("enabled recorder reports");
        report
            .well_formed()
            .unwrap_or_else(|e| panic!("malformed span tree for `{expr}`: {e}"));
        let node_spans: Vec<_> = report
            .spans
            .iter()
            .filter(|sp| sp.note_uint("node").is_some())
            .collect();
        assert_eq!(
            node_spans.len(),
            compiled.physical.nodes.len(),
            "one executor span per node for `{expr}`"
        );
        for sp in node_spans {
            assert!(
                sp.note_uint("rows").is_some(),
                "executor span without a row count for `{expr}`"
            );
        }
    }
}

/// EXPLAIN ANALYZE's `act=` side is measurement, not estimation: in
/// retention mode every node's reported row count must equal the length
/// of the materialized `R(n)` the executor kept for that node, and the
/// final node's count must equal the answer.
#[test]
fn analyze_row_counts_equal_materialized_sizes() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
        retain_intermediates: true,
        threads: 1,
        ..PqpOptions::default()
    });
    for expr in COVERAGE_EXPRESSIONS {
        let compiled = pqp.compile(parse_algebra(expr).unwrap()).unwrap();
        let trace = Trace::enabled();
        let (answer, exec_trace) = pqp.run_compiled_traced(&compiled, &trace).unwrap();
        let report = trace.report().expect("enabled recorder reports");
        let mut checked = 0;
        for sp in &report.spans {
            let (Some(node), Some(rows)) = (sp.note_uint("node"), sp.note_uint("rows")) else {
                continue;
            };
            let node = usize::try_from(node).unwrap();
            let pr = compiled.physical.nodes[node].row;
            let materialized = exec_trace
                .result(pr)
                .unwrap_or_else(|| panic!("R({pr}) not retained for `{expr}`"))
                .len();
            assert_eq!(
                rows as usize, materialized,
                "act rows diverge from materialized R({pr}) on `{expr}`"
            );
            checked += 1;
        }
        assert_eq!(
            checked,
            compiled.physical.nodes.len(),
            "every node checked for `{expr}`"
        );
        let last = compiled.physical.nodes.last().unwrap().row;
        assert_eq!(
            exec_trace.result(last).unwrap().len(),
            answer.len(),
            "final node is the answer for `{expr}`"
        );
    }
}

/// The rendered EXPLAIN ANALYZE agrees with itself: the row counts in
/// the `act=` column are exactly the ones a fresh traced run measures —
/// rendering reads the spans, it does not re-execute.
#[test]
fn rendered_analyze_matches_span_row_counts() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
        threads: 1,
        ..PqpOptions::default()
    });
    let compiled = pqp
        .compile(parse_algebra(PAPER_EXPRESSION).unwrap())
        .unwrap();
    let trace = Trace::enabled();
    pqp.run_compiled_traced(&compiled, &trace).unwrap();
    let report = trace.report().unwrap();
    let rendered = render_analyzed_plan(&compiled.physical, pqp.registry(), &report);
    for sp in &report.spans {
        let (Some(_), Some(rows)) = (sp.note_uint("node"), sp.note_uint("rows")) else {
            continue;
        };
        assert!(
            rendered.contains(&format!(" {rows} rows)")),
            "rendered analyze lost a measured row count ({rows}):\n{rendered}"
        );
    }
    assert!(
        !rendered.contains("act=(not executed)"),
        "a fully executed plan must report actuals on every line:\n{rendered}"
    );
}
