//! Golden reproduction of Appendix A (Tables A1–A9): "The Operations that
//! Generate Table 6", executed step by step with the core algebra.
//!
//! A1–A3 are the tagged retrieves; A4/A7 the outer joins; A5/A8 the Outer
//! Natural Primary Joins (key coalesce); A6/A9 the Outer Natural Total
//! Joins. Note on A7: the paper prints its intermediate tags *before* the
//! outer join's restrict-style update while printing A4 (and everything
//! downstream) *after* it; the formal definitions and Tables A8/A9/6 are
//! only consistent with applying the update at the join, so these goldens
//! assert the updated form (see DESIGN.md, "known discrepancies").

mod common;

use common::check_table;
use polygen::catalog::prelude::scenario;
use polygen::core::algebra::{coalesce, outer_join, ConflictPolicy};
use polygen::core::{PolygenRelation, SourceRegistry};
use polygen::lqp::prelude::{scenario_registry, LocalOp};

struct Fixture {
    reg: SourceRegistry,
    business: PolygenRelation,
    corporation: PolygenRelation,
    firm: PolygenRelation,
}

fn fixture() -> Fixture {
    let s = scenario::build();
    let lqps = scenario_registry(&s);
    let get = |db: &str, rel: &str| {
        lqps.execute_tagged(db, &LocalOp::retrieve(rel), &s.dictionary)
            .expect("retrieve")
    };
    Fixture {
        reg: s.dictionary.registry().clone(),
        business: get("AD", "BUSINESS"),
        corporation: get("PD", "CORPORATION"),
        firm: get("CD", "FIRM"),
    }
}

/// Tables A1–A3: the three retrieves, data source = the owning LQP,
/// intermediate source empty. A3's HQ column arrives state-normalized
/// through the domain mapping.
#[test]
fn tables_a1_a2_a3_tagged_retrieves() {
    let f = fixture();
    check_table(
        "Table A1",
        &f.business,
        &f.reg,
        &["BNAME", "IND"],
        &[
            "Langley Castle @A ^- | Hotel @A ^-",
            "IBM @A ^- | High Tech @A ^-",
            "MIT @A ^- | Education @A ^-",
            "Citicorp @A ^- | Banking @A ^-",
            "Oracle @A ^- | High Tech @A ^-",
            "Ford @A ^- | Automobile @A ^-",
            "DEC @A ^- | High Tech @A ^-",
            "BP @A ^- | Energy @A ^-",
            "Genentech @A ^- | High Tech @A ^-",
        ],
    );
    check_table(
        "Table A2",
        &f.corporation,
        &f.reg,
        &["CNAME", "TRADE", "STATE"],
        &[
            "Apple @P ^- | High Tech @P ^- | CA @P ^-",
            "Oracle @P ^- | High Tech @P ^- | CA @P ^-",
            "AT&T @P ^- | High Tech @P ^- | NY @P ^-",
            "IBM @P ^- | High Tech @P ^- | NY @P ^-",
            "Citicorp @P ^- | Banking @P ^- | NY @P ^-",
            "DEC @P ^- | High Tech @P ^- | MA @P ^-",
            "Banker's Trust @P ^- | Finance @P ^- | NY @P ^-",
        ],
    );
    check_table(
        "Table A3",
        &f.firm,
        &f.reg,
        &["FNAME", "CEO", "HQ"],
        &[
            "AT&T @C ^- | Robert Allen @C ^- | NY @C ^-",
            "Langley Castle @C ^- | Stu Madnick @C ^- | MA @C ^-",
            "Banker's Trust @C ^- | Charles Sanford @C ^- | NY @C ^-",
            "Citicorp @C ^- | John Reed @C ^- | NY @C ^-",
            "Ford @C ^- | Donald Peterson @C ^- | MI @C ^-",
            "IBM @C ^- | John Ackers @C ^- | NY @C ^-",
            "Apple @C ^- | John Sculley @C ^- | CA @C ^-",
            "Oracle @C ^- | Lawrence Ellison @C ^- | CA @C ^-",
            "DEC @C ^- | Ken Olsen @C ^- | MA @C ^-",
            "Genentech @C ^- | Bob Swanson @C ^- | CA @C ^-",
        ],
    );
}

/// Table A4: the outer join of A1 and A2 on BNAME = CNAME. Matched rows'
/// cells all gain {AD, PD}; unmatched rows their own side's origin; nil
/// padding carries origin {} and the tuple's intermediates.
#[test]
fn table_a4_outer_join() {
    let f = fixture();
    let a4 = outer_join(&f.business, &f.corporation, "BNAME", "CNAME").unwrap();
    check_table(
        "Table A4",
        &a4,
        &f.reg,
        &["BNAME", "IND", "CNAME", "TRADE", "STATE"],
        &[
            "Langley Castle @A ^A | Hotel @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "IBM @A ^AP | High Tech @A ^AP | IBM @P ^AP | High Tech @P ^AP | NY @P ^AP",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Citicorp @A ^AP | Banking @A ^AP | Citicorp @P ^AP | Banking @P ^AP | NY @P ^AP",
            "Oracle @A ^AP | High Tech @A ^AP | Oracle @P ^AP | High Tech @P ^AP | CA @P ^AP",
            "Ford @A ^A | Automobile @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "DEC @A ^AP | High Tech @A ^AP | DEC @P ^AP | High Tech @P ^AP | MA @P ^AP",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Genentech @A ^A | High Tech @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "nil @- ^P | nil @- ^P | Apple @P ^P | High Tech @P ^P | CA @P ^P",
            "nil @- ^P | nil @- ^P | AT&T @P ^P | High Tech @P ^P | NY @P ^P",
            "nil @- ^P | nil @- ^P | Banker's Trust @P ^P | Finance @P ^P | NY @P ^P",
        ],
    );
}

/// Tables A5 and A6: the Outer Natural Primary Join (key coalesce) and
/// Outer Natural Total Join (IND © TRADE, STATE renamed HEADQUARTERS).
#[test]
fn tables_a5_a6_natural_joins() {
    let f = fixture();
    let a4 = outer_join(&f.business, &f.corporation, "BNAME", "CNAME").unwrap();
    let a5 = coalesce(&a4, "BNAME", "CNAME", "ONAME", ConflictPolicy::Strict).unwrap();
    check_table(
        "Table A5",
        &a5,
        &f.reg,
        &["ONAME", "IND", "TRADE", "STATE"],
        &[
            "Langley Castle @A ^A | Hotel @A ^A | nil @- ^A | nil @- ^A",
            "IBM @AP ^AP | High Tech @A ^AP | High Tech @P ^AP | NY @P ^AP",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A",
            "Citicorp @AP ^AP | Banking @A ^AP | Banking @P ^AP | NY @P ^AP",
            "Oracle @AP ^AP | High Tech @A ^AP | High Tech @P ^AP | CA @P ^AP",
            "Ford @A ^A | Automobile @A ^A | nil @- ^A | nil @- ^A",
            "DEC @AP ^AP | High Tech @A ^AP | High Tech @P ^AP | MA @P ^AP",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A",
            "Genentech @A ^A | High Tech @A ^A | nil @- ^A | nil @- ^A",
            "Apple @P ^P | nil @- ^P | High Tech @P ^P | CA @P ^P",
            "AT&T @P ^P | nil @- ^P | High Tech @P ^P | NY @P ^P",
            "Banker's Trust @P ^P | nil @- ^P | Finance @P ^P | NY @P ^P",
        ],
    );
    let a6 = coalesce(&a5, "IND", "TRADE", "INDUSTRY", ConflictPolicy::Strict)
        .unwrap()
        .rename_attrs(&["ONAME", "INDUSTRY", "HEADQUARTERS"])
        .unwrap();
    check_table(
        "Table A6",
        &a6,
        &f.reg,
        &["ONAME", "INDUSTRY", "HEADQUARTERS"],
        &[
            "Langley Castle @A ^A | Hotel @A ^A | nil @- ^A",
            "IBM @AP ^AP | High Tech @AP ^AP | NY @P ^AP",
            "MIT @A ^A | Education @A ^A | nil @- ^A",
            "Citicorp @AP ^AP | Banking @AP ^AP | NY @P ^AP",
            "Oracle @AP ^AP | High Tech @AP ^AP | CA @P ^AP",
            "Ford @A ^A | Automobile @A ^A | nil @- ^A",
            "DEC @AP ^AP | High Tech @AP ^AP | MA @P ^AP",
            "BP @A ^A | Energy @A ^A | nil @- ^A",
            "Genentech @A ^A | High Tech @A ^A | nil @- ^A",
            "Apple @P ^P | High Tech @P ^P | CA @P ^P",
            "AT&T @P ^P | High Tech @P ^P | NY @P ^P",
            "Banker's Trust @P ^P | Finance @P ^P | NY @P ^P",
        ],
    );
}

/// Tables A7–A9: the second Outer Natural Total Join, against FIRM.
/// A7 is asserted in the post-update form (see module docs); A8 and A9
/// match the paper's print exactly — and A9 *is* Table 6.
#[test]
fn tables_a7_a8_a9_second_join() {
    let f = fixture();
    let a4 = outer_join(&f.business, &f.corporation, "BNAME", "CNAME").unwrap();
    let a5 = coalesce(&a4, "BNAME", "CNAME", "ONAME", ConflictPolicy::Strict).unwrap();
    let a6 = coalesce(&a5, "IND", "TRADE", "INDUSTRY", ConflictPolicy::Strict)
        .unwrap()
        .rename_attrs(&["ONAME", "INDUSTRY", "HEADQUARTERS"])
        .unwrap();
    let a7 = outer_join(&a6, &f.firm, "ONAME", "FNAME").unwrap();
    check_table(
        "Table A7 (post-update form)",
        &a7,
        &f.reg,
        &["ONAME", "INDUSTRY", "HEADQUARTERS", "FNAME", "CEO", "HQ"],
        &[
            "Langley Castle @A ^AC | Hotel @A ^AC | nil @- ^AC | Langley Castle @C ^AC | Stu Madnick @C ^AC | MA @C ^AC",
            "IBM @AP ^APC | High Tech @AP ^APC | NY @P ^APC | IBM @C ^APC | John Ackers @C ^APC | NY @C ^APC",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Citicorp @AP ^APC | Banking @AP ^APC | NY @P ^APC | Citicorp @C ^APC | John Reed @C ^APC | NY @C ^APC",
            "Oracle @AP ^APC | High Tech @AP ^APC | CA @P ^APC | Oracle @C ^APC | Lawrence Ellison @C ^APC | CA @C ^APC",
            "Ford @A ^AC | Automobile @A ^AC | nil @- ^AC | Ford @C ^AC | Donald Peterson @C ^AC | MI @C ^AC",
            "DEC @AP ^APC | High Tech @AP ^APC | MA @P ^APC | DEC @C ^APC | Ken Olsen @C ^APC | MA @C ^APC",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Genentech @A ^AC | High Tech @A ^AC | nil @- ^AC | Genentech @C ^AC | Bob Swanson @C ^AC | CA @C ^AC",
            "Apple @P ^PC | High Tech @P ^PC | CA @P ^PC | Apple @C ^PC | John Sculley @C ^PC | CA @C ^PC",
            "AT&T @P ^PC | High Tech @P ^PC | NY @P ^PC | AT&T @C ^PC | Robert Allen @C ^PC | NY @C ^PC",
            "Banker's Trust @P ^PC | Finance @P ^PC | NY @P ^PC | Banker's Trust @C ^PC | Charles Sanford @C ^PC | NY @C ^PC",
        ],
    );
    let a8 = coalesce(&a7, "ONAME", "FNAME", "ONAME", ConflictPolicy::Strict).unwrap();
    check_table(
        "Table A8",
        &a8,
        &f.reg,
        &["ONAME", "INDUSTRY", "HEADQUARTERS", "CEO", "HQ"],
        &[
            "Langley Castle @AC ^AC | Hotel @A ^AC | nil @- ^AC | Stu Madnick @C ^AC | MA @C ^AC",
            "IBM @APC ^APC | High Tech @AP ^APC | NY @P ^APC | John Ackers @C ^APC | NY @C ^APC",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Citicorp @APC ^APC | Banking @AP ^APC | NY @P ^APC | John Reed @C ^APC | NY @C ^APC",
            "Oracle @APC ^APC | High Tech @AP ^APC | CA @P ^APC | Lawrence Ellison @C ^APC | CA @C ^APC",
            "Ford @AC ^AC | Automobile @A ^AC | nil @- ^AC | Donald Peterson @C ^AC | MI @C ^AC",
            "DEC @APC ^APC | High Tech @AP ^APC | MA @P ^APC | Ken Olsen @C ^APC | MA @C ^APC",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A | nil @- ^A",
            "Genentech @AC ^AC | High Tech @A ^AC | nil @- ^AC | Bob Swanson @C ^AC | CA @C ^AC",
            "Apple @PC ^PC | High Tech @P ^PC | CA @P ^PC | John Sculley @C ^PC | CA @C ^PC",
            "AT&T @PC ^PC | High Tech @P ^PC | NY @P ^PC | Robert Allen @C ^PC | NY @C ^PC",
            "Banker's Trust @PC ^PC | Finance @P ^PC | NY @P ^PC | Charles Sanford @C ^PC | NY @C ^PC",
        ],
    );
    let a9 = coalesce(
        &a8,
        "HEADQUARTERS",
        "HQ",
        "HEADQUARTERS",
        ConflictPolicy::Strict,
    )
    .unwrap();
    check_table(
        "Table A9 (= Table 6)",
        &a9,
        &f.reg,
        &["ONAME", "INDUSTRY", "HEADQUARTERS", "CEO"],
        &[
            "Langley Castle @AC ^AC | Hotel @A ^AC | MA @C ^AC | Stu Madnick @C ^AC",
            "IBM @APC ^APC | High Tech @AP ^APC | NY @PC ^APC | John Ackers @C ^APC",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A",
            "Citicorp @APC ^APC | Banking @AP ^APC | NY @PC ^APC | John Reed @C ^APC",
            "Oracle @APC ^APC | High Tech @AP ^APC | CA @PC ^APC | Lawrence Ellison @C ^APC",
            "Ford @AC ^AC | Automobile @A ^AC | MI @C ^AC | Donald Peterson @C ^AC",
            "DEC @APC ^APC | High Tech @AP ^APC | MA @PC ^APC | Ken Olsen @C ^APC",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A",
            "Genentech @AC ^AC | High Tech @A ^AC | CA @C ^AC | Bob Swanson @C ^AC",
            "Apple @PC ^PC | High Tech @P ^PC | CA @PC ^PC | John Sculley @C ^PC",
            "AT&T @PC ^PC | High Tech @P ^PC | NY @PC ^PC | Robert Allen @C ^PC",
            "Banker's Trust @PC ^PC | Finance @P ^PC | NY @PC ^PC | Charles Sanford @C ^PC",
        ],
    );
}

/// The hand-stepped A9 equals the Merge operator's output (and therefore
/// the executor's R(7)) — the paper's "Table A9 is shown as Table 6".
#[test]
fn a9_equals_merge_output() {
    let f = fixture();
    let a4 = outer_join(&f.business, &f.corporation, "BNAME", "CNAME").unwrap();
    let a5 = coalesce(&a4, "BNAME", "CNAME", "ONAME", ConflictPolicy::Strict).unwrap();
    let a6 = coalesce(&a5, "IND", "TRADE", "INDUSTRY", ConflictPolicy::Strict)
        .unwrap()
        .rename_attrs(&["ONAME", "INDUSTRY", "HEADQUARTERS"])
        .unwrap();
    let a7 = outer_join(&a6, &f.firm, "ONAME", "FNAME").unwrap();
    let a8 = coalesce(&a7, "ONAME", "FNAME", "ONAME", ConflictPolicy::Strict).unwrap();
    let a9 = coalesce(
        &a8,
        "HEADQUARTERS",
        "HQ",
        "HEADQUARTERS",
        ConflictPolicy::Strict,
    )
    .unwrap();

    // Merge path: relabel to polygen names, fold ONTJ.
    let business = f.business.rename_attrs(&["ONAME", "INDUSTRY"]).unwrap();
    let corporation = f
        .corporation
        .rename_attrs(&["ONAME", "INDUSTRY", "HEADQUARTERS"])
        .unwrap();
    let firm = f
        .firm
        .rename_attrs(&["ONAME", "CEO", "HEADQUARTERS"])
        .unwrap();
    let (merged, conflicts) = polygen::core::algebra::merge::merge(
        &[business, corporation, firm],
        "ONAME",
        ConflictPolicy::Strict,
    )
    .unwrap();
    assert!(conflicts.is_empty());
    // Column order differs (CEO vs HEADQUARTERS placement); compare
    // projected onto A9's order.
    let merged_reordered =
        polygen::core::algebra::project(&merged, &["ONAME", "INDUSTRY", "HEADQUARTERS", "CEO"])
            .unwrap();
    assert!(a9.tagged_set_eq(&merged_reordered));
}
