//! Differential property tests for the physical-plan executor.
//!
//! The physical engine (fused pipelines over `Arc`-shared tuples,
//! single-pass hash equi-joins, k-way hash Merge) must compute *exactly*
//! the relations the eager row-by-row reference interpreter computes —
//! data, origin tags and intermediate tags — across workload-generated
//! federations and random query shapes. `execute_eager` is the reference
//! semantics; any divergence here is a bug in a physical kernel or in
//! plan lowering. (The partition-parallel engine gets the same treatment
//! across thread counts in `properties_parallel`.)

mod common;

use common::fixtures::{assert_engines_agree, compile, conflicted_config, small_config};
use polygen::catalog::prelude::scenario;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::PAPER_EXPRESSION;
use polygen::workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random expressions over random federations: identical relations.
    #[test]
    fn physical_matches_eager_on_random_federations(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
    ) {
        let config = small_config(fed_seed, sources, 50);
        let sc = workload::generate(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        assert_engines_agree(&sc, &expr.to_string(), ConflictPolicy::Strict);
    }

    /// Conflicting federations under both resolution policies: the k-way
    /// hash Merge must demote losers to mediators exactly like the ONTJ
    /// fold does.
    #[test]
    fn engines_agree_under_conflict_policies(
        fed_seed in any::<u64>(),
        sources in 2usize..5,
        prefer_left in any::<bool>(),
    ) {
        let sc = workload::generate(&conflicted_config(fed_seed, sources, 40));
        let policy = if prefer_left {
            ConflictPolicy::PreferLeft
        } else {
            ConflictPolicy::PreferRight
        };
        assert_engines_agree(&sc, "PENTITY [ENAME, CATEGORY]", policy);
        assert_engines_agree(&sc, "PENTITY [CATEGORY = \"C0\"]", policy);
    }

    /// The optimizer's output lowers and executes identically too.
    #[test]
    fn physical_matches_eager_on_optimized_plans(
        query_seed in any::<u64>(),
        depth in 1usize..4,
    ) {
        let config = small_config(0x5eed, 3, 40);
        let sc = workload::generate(&config);
        let registry = polygen::lqp::scenario_registry(&sc);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        let iom = compile(&expr.to_string(), sc.dictionary.schema());
        let (opt, _) = optimize(&iom, &registry, &sc.dictionary).unwrap();
        let options = ExecOptions::default();
        let (eager, _) = execute_eager(&opt, &registry, &sc.dictionary, options.clone()).unwrap();
        let (fast, _) = execute(&opt, &registry, &sc.dictionary, options).unwrap();
        prop_assert!(fast.tagged_set_eq(&eager), "optimized plan diverges for {expr}");
    }
}

/// The paper's own pipeline, cell-exact across both engines — the
/// strongest single fixture (it exercises scan, hash join, hash merge,
/// fused restrict+project, and the alias machinery at once).
#[test]
fn paper_query_trace_is_cell_exact_across_engines() {
    let s = scenario::build();
    assert_engines_agree(&s, PAPER_EXPRESSION, ConflictPolicy::Strict);
}

/// Set operations and the θ fallback path.
#[test]
fn set_ops_and_theta_joins_agree() {
    let s = scenario::build();
    for expr in [
        "(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])",
        "PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])",
        "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
        "PCAREER [AID# < AID#] PCAREER",
        "(PALUMNUS [DEGREE = \"MBA\"]) INTERSECT (PALUMNUS [DEGREE = \"MBA\"])",
    ] {
        assert_engines_agree(&s, expr, ConflictPolicy::Strict);
    }
}
