//! Differential property tests for the physical-plan executor.
//!
//! The physical engine (fused pipelines over `Arc`-shared tuples,
//! single-pass hash equi-joins, k-way hash Merge) must compute *exactly*
//! the relations the eager row-by-row reference interpreter computes —
//! data, origin tags and intermediate tags — across workload-generated
//! federations and random query shapes. `execute_eager` is the reference
//! semantics; any divergence here is a bug in a physical kernel or in
//! plan lowering.

use polygen::catalog::prelude::scenario;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::{parse_algebra, PAPER_EXPRESSION};
use polygen::workload::{self, WorkloadConfig};
use proptest::prelude::*;

/// Compile an algebra expression to its (unoptimized) IOM.
fn compile(expr: &str, schema: &polygen::catalog::schema::PolygenSchema) -> Iom {
    let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
    interpret(&pom, schema).unwrap().1
}

/// Run one expression through both engines and assert the answers and
/// (when retained) every traced `R(n)` agree, tags included.
fn assert_engines_agree(
    scenario: &polygen::catalog::scenario::Scenario,
    expr: &str,
    policy: ConflictPolicy,
) {
    let registry = polygen::lqp::scenario_registry(scenario);
    let iom = compile(expr, scenario.dictionary.schema());
    let options = ExecOptions {
        conflict_policy: policy,
        retain_intermediates: false,
    };
    let eager = execute_eager(&iom, &registry, &scenario.dictionary, options);
    let physical = execute(&iom, &registry, &scenario.dictionary, options);
    match (eager, physical) {
        (Ok((eref, _)), Ok((pref, _))) => {
            assert!(
                eref.tagged_set_eq(&pref),
                "engines diverge on `{expr}`:\n eager: {} rows\n physical: {} rows",
                eref.len(),
                pref.len()
            );
            // Retained physical run: every R(n) must match the eager trace.
            let retained = ExecOptions {
                conflict_policy: policy,
                retain_intermediates: true,
            };
            let (_, eager_trace) =
                execute_eager(&iom, &registry, &scenario.dictionary, retained).unwrap();
            let (_, phys_trace) = execute(&iom, &registry, &scenario.dictionary, retained).unwrap();
            assert_eq!(eager_trace.results.len(), phys_trace.results.len());
            for (pr, rel) in &eager_trace.results {
                assert!(
                    rel.tagged_set_eq(phys_trace.result(*pr).expect("traced row")),
                    "R({pr}) diverges on `{expr}`"
                );
            }
        }
        (Err(ee), Err(pe)) => {
            // Both reject (e.g. a strict conflict) — but they must reject
            // for the same *kind* of reason, or a physical-engine defect
            // could hide behind an unrelated eager error.
            assert!(
                same_error_kind(&ee, &pe),
                "engines reject `{expr}` for different reasons:\n eager: {ee}\n physical: {pe}"
            );
        }
        (Ok(_), Err(e)) => panic!("physical engine rejected `{expr}`: {e}"),
        (Err(e), Ok(_)) => panic!("eager engine rejected `{expr}`: {e}"),
    }
}

/// Same error variant (and, for algebra errors, same inner variant) —
/// payloads may differ legitimately (the fold and the hash merge detect
/// the first conflict in different orders).
fn same_error_kind(a: &PqpError, b: &PqpError) -> bool {
    use std::mem::discriminant;
    if discriminant(a) != discriminant(b) {
        return false;
    }
    match (a, b) {
        (PqpError::Polygen(x), PqpError::Polygen(y)) => discriminant(x) == discriminant(y),
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random expressions over random federations: identical relations.
    #[test]
    fn physical_matches_eager_on_random_federations(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
    ) {
        let config = WorkloadConfig::default()
            .with_seed(fed_seed)
            .with_sources(sources)
            .with_entities(50);
        let sc = workload::generate(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        assert_engines_agree(&sc, &expr.to_string(), ConflictPolicy::Strict);
    }

    /// Conflicting federations under both resolution policies: the k-way
    /// hash Merge must demote losers to mediators exactly like the ONTJ
    /// fold does.
    #[test]
    fn engines_agree_under_conflict_policies(
        fed_seed in any::<u64>(),
        sources in 2usize..5,
        prefer_left in any::<bool>(),
    ) {
        let config = WorkloadConfig {
            conflict_rate: 0.3,
            ..WorkloadConfig::default()
                .with_seed(fed_seed)
                .with_sources(sources)
                .with_entities(40)
        };
        let sc = workload::generate(&config);
        let policy = if prefer_left {
            ConflictPolicy::PreferLeft
        } else {
            ConflictPolicy::PreferRight
        };
        assert_engines_agree(&sc, "PENTITY [ENAME, CATEGORY]", policy);
        assert_engines_agree(&sc, "PENTITY [CATEGORY = \"C0\"]", policy);
    }

    /// The optimizer's output lowers and executes identically too.
    #[test]
    fn physical_matches_eager_on_optimized_plans(
        query_seed in any::<u64>(),
        depth in 1usize..4,
    ) {
        let config = WorkloadConfig::default().with_sources(3).with_entities(40);
        let sc = workload::generate(&config);
        let registry = polygen::lqp::scenario_registry(&sc);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        let iom = compile(&expr.to_string(), sc.dictionary.schema());
        let (opt, _) = optimize(&iom, &registry, &sc.dictionary).unwrap();
        let options = ExecOptions::default();
        let (eager, _) = execute_eager(&opt, &registry, &sc.dictionary, options).unwrap();
        let (fast, _) = execute(&opt, &registry, &sc.dictionary, options).unwrap();
        prop_assert!(fast.tagged_set_eq(&eager), "optimized plan diverges for {expr}");
    }
}

/// The paper's own pipeline, cell-exact across both engines — the
/// strongest single fixture (it exercises scan, hash join, hash merge,
/// fused restrict+project, and the alias machinery at once).
#[test]
fn paper_query_trace_is_cell_exact_across_engines() {
    let s = scenario::build();
    assert_engines_agree(&s, PAPER_EXPRESSION, ConflictPolicy::Strict);
}

/// Set operations and the θ fallback path.
#[test]
fn set_ops_and_theta_joins_agree() {
    let s = scenario::build();
    for expr in [
        "(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])",
        "PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])",
        "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
        "PCAREER [AID# < AID#] PCAREER",
        "(PALUMNUS [DEGREE = \"MBA\"]) INTERSECT (PALUMNUS [DEGREE = \"MBA\"])",
    ] {
        assert_engines_agree(&s, expr, ConflictPolicy::Strict);
    }
}
