//! Integration tests for plan costing: the estimator must track reality
//! in *direction* — remote feeds dominate, optimization never raises
//! estimated shipping, and the explain report surfaces all of it.

use polygen::catalog::prelude::scenario;
use polygen::lqp::prelude::*;
use polygen::pqp::costing::estimate;
use polygen::pqp::explain::explain_with_cost;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::PAPER_EXPRESSION;
use polygen::workload::{self, WorkloadConfig};
use std::sync::Arc;

#[test]
fn estimated_shipping_matches_actual_within_reason() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
    let cost = estimate(&out.compiled.plan, pqp.registry());
    // Actual shipped rows for the paper query: 5 (select) + 9 (CAREER) +
    // 9 + 7 + 10 (the three merge retrieves) = 40. The estimator assumes
    // 10% select selectivity (0.8 rows vs actual 5), so it must land in
    // the same decade, not on the number.
    assert!(
        cost.tuples_shipped > 30.0 && cost.tuples_shipped < 60.0,
        "estimate {} out of range",
        cost.tuples_shipped
    );
}

#[test]
fn optimizer_never_raises_estimated_shipping() {
    let config = WorkloadConfig::default().with_entities(200).with_sources(4);
    let sc = workload::generate(&config);
    let naive = Pqp::for_scenario(&sc);
    let optimized = Pqp::for_scenario(&sc).with_options(PqpOptions {
        optimize: true,
        ..PqpOptions::default()
    });
    for query in [
        workload::queries::select_query(0),
        workload::queries::join_query(40),
        "((PDETAIL [SCORE >= 90]) [ENAME = ENAME] PDETAIL) [ENAME]".to_string(),
    ] {
        let a = naive.query_algebra(&query).unwrap();
        let b = optimized.query_algebra(&query).unwrap();
        let ca = estimate(&a.compiled.plan, naive.registry());
        let cb = estimate(&b.compiled.plan, optimized.registry());
        assert!(
            cb.tuples_shipped <= ca.tuples_shipped + 1e-9,
            "{query}: optimized plan ships more ({} > {})",
            cb.tuples_shipped,
            ca.tuples_shipped
        );
    }
}

#[test]
fn remote_feed_shows_up_in_explain() {
    let s = scenario::build();
    let registry = LqpRegistry::new();
    for db in &s.databases {
        let inner = InMemoryLqp::new(&db.name, db.relations.clone());
        if db.name == "CD" {
            registry.register(Arc::new(CompensatingLqp::new(MenuDrivenLqp::new(
                inner,
                CostModel::slow_remote(),
            ))));
        } else {
            registry.register(Arc::new(inner));
        }
    }
    let registry = Arc::new(registry);
    let pqp = Pqp::new(Arc::new(s.dictionary.clone()), Arc::clone(&registry));
    let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
    let report = explain_with_cost(&out, pqp.dictionary(), &registry);
    assert!(report.contains("Plan cost estimate"));
    // With CD behind a transatlantic feed the estimate is dominated by
    // its fixed cost (250 ms per operation).
    let remote_cost = estimate(&out.compiled.plan, &registry);
    let local_cost = estimate(&out.compiled.plan, &polygen::lqp::scenario_registry(&s));
    assert!(remote_cost.total_us > local_cost.total_us * 10.0);
}
