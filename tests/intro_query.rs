//! The paper's *introductory* query (§I) — simpler than §III's but it
//! exercises the interpreter branch the main example never reaches: a
//! Join whose left **and** right sides are both polygen schemes, so pass
//! two must retrieve the pass-one-localized left side ("separate LQP
//! operations need to be performed first before the requested polygen
//! operation is performed").

use polygen::catalog::prelude::scenario;
use polygen::flat::Value;
use polygen::pqp::prelude::*;

/// §I: "SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND
/// DEGREE = \"MBA\"" — CEOs with MIT MBAs, without the career-path
/// subquery.
const INTRO_SQL: &str = "SELECT CEO FROM PORGANIZATION, PALUMNUS \
     WHERE CEO = ANAME AND DEGREE = \"MBA\"";

#[test]
fn intro_query_answer() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let out = pqp.query(INTRO_SQL).unwrap();
    // MBA alumni who are CEOs *of anything in the company directory*:
    // Bob Swanson, Stu Madnick, John Reed (same people as Table 9 — here
    // via the direct CEO = ANAME join rather than the career path).
    let data = out.answer.strip();
    assert_eq!(out.answer.len(), 3);
    for ceo in ["Bob Swanson", "Stu Madnick", "John Reed"] {
        assert!(data.contains(&[Value::str(ceo)]), "missing {ceo}");
    }
    // Data source: the CEO names originate in CD (FIRM); AD mediated the
    // selection (the MBA filter and the name equality) — "the query
    // result contains only the names of CEO which originated from the
    // Company Database, but the query processor also needs to access the
    // Alumni Database (an intermediate source)".
    let reg = pqp.dictionary().registry();
    let (ad, cd) = (reg.lookup("AD").unwrap(), reg.lookup("CD").unwrap());
    for t in out.answer.tuples() {
        assert!(t[0].origin.contains(cd));
        assert!(t[0].intermediate.contains(ad), "AD must appear as mediator");
    }
}

#[test]
fn intro_query_plan_shape() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let out = pqp.query(INTRO_SQL).unwrap();
    // Lowering: the MBA filter pushes into the PALUMNUS leaf, CEO = ANAME
    // becomes the join between the two schemes, the projection closes.
    // (The projected `CEO` is the join's coalesced column; the executor's
    // alias tracking keeps it referenceable and the projection restores
    // the requested name.)
    assert_eq!(
        out.compiled.expr.to_string(),
        "(PORGANIZATION [CEO = ANAME] (PALUMNUS [DEGREE = \"MBA\"])) [CEO]"
    );
    // The IOM retrieves+merges the three organization relations and joins
    // at the PQP.
    let ops: Vec<String> = out
        .compiled
        .iom
        .rows
        .iter()
        .map(|r| r.op.to_string())
        .collect();
    assert_eq!(
        ops,
        vec![
            "Select",   // ALUMNUS[DEG = "MBA"] at AD
            "Retrieve", // BUSINESS
            "Retrieve", // CORPORATION
            "Retrieve", // FIRM
            "Merge", "Join", "Project"
        ]
    );
    let (lqp_rows, pqp_rows) = out.compiled.iom.routing_counts();
    assert_eq!((lqp_rows, pqp_rows), (4, 3));
}

/// The §I paper variant that joins both schemes *without* the select
/// pushed down — forces the pass-two "LHR and RHR both defined in the
/// polygen schema" branch.
#[test]
fn both_sides_polygen_join() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let out = pqp
        .query_algebra("(PALUMNUS [ANAME = CEO] PORGANIZATION) [CEO, DEGREE]")
        .unwrap();
    // Pass one localizes PALUMNUS to ALUMNUS@AD; pass two must retrieve
    // it before the PQP join with the merged organizations.
    let ops: Vec<String> = out
        .compiled
        .iom
        .rows
        .iter()
        .map(|r| r.op.to_string())
        .collect();
    assert_eq!(
        ops,
        vec![
            "Retrieve", // BUSINESS
            "Retrieve", // CORPORATION
            "Retrieve", // FIRM
            "Merge", "Retrieve", // ALUMNUS — the pulled-up left side
            "Join", "Project"
        ]
    );
    // Every CEO in the answer is an alumnus; 4 alumni are CEOs of listed
    // organizations (McCauley is MIS Director, so excluded by data).
    assert_eq!(out.answer.len(), 4);
    let data = out.answer.strip();
    assert!(data.contains(&[Value::str("Ken Olsen"), Value::str("MS")]));
    assert!(data.contains(&[Value::str("John Reed"), Value::str("MBA")]));
}

/// Queries over the schemes the main example never touches: PSTUDENT
/// (float GPAs) and PINTERVIEW.
#[test]
fn student_and_interview_schemes() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let strong = pqp
        .query("SELECT SNAME, GPA FROM PSTUDENT WHERE GPA >= 3.5")
        .unwrap();
    assert_eq!(strong.answer.len(), 3); // Forea Wang, Yeuk Yuan, Mike Lavine
    let pd = pqp.dictionary().registry().lookup("PD").unwrap();
    for t in strong.answer.tuples() {
        assert!(t[0].origin.contains(pd));
        assert!(
            t[0].intermediate.is_empty(),
            "LQP select leaves no mediators"
        );
    }
    // Students interviewing with organizations known to the company DB.
    let out = pqp
        .query_algebra(
            "((PINTERVIEW [ONAME = ONAME] PFINANCE) [SID# = SID#] PSTUDENT) [SNAME, ONAME, PROFIT]",
        )
        .unwrap();
    let data = out.answer.strip();
    assert!(
        data.len() >= 3,
        "IBM/Oracle/Banker's Trust/Citicorp interviews"
    );
    assert!(data
        .rows()
        .iter()
        .any(|r| r[0] == Value::str("Forea Wang") && r[1] == Value::str("IBM")));
}
