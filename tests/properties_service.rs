//! Differential property tests for the serving layer (`polygen-serve`).
//!
//! The guarantee under test: **caching and concurrency are invisible**.
//! With plan + tagged-result caching enabled and N concurrent sessions,
//! every answer — data, origin tags *and* intermediate tags — is
//! byte-identical to single-client, cache-off execution, including
//! across a mid-run source update. Plus the normalization property the
//! plan cache's key integrity rests on: canonical text round-trips
//! through the parser, so two expressions share a key iff they are the
//! same expression.
//!
//! CI runs this suite under both `POLYGEN_THREADS=1` and `=4`, so the
//! cache-hit and execution paths are exercised with sequential and
//! partition-parallel engines alike.

mod common;

use common::fixtures::small_config;
use polygen::core::PolygenRelation;
use polygen::flat::relation::Relation;
use polygen::flat::value::Value;
use polygen::serve::prelude::*;
use polygen::sql::prelude::{canonical_text, canonicalize_algebra, parse_algebra};
use polygen::workload::queries::random_expression;
use polygen::workload::{self, drive, replay, ClientMix, ClientQuery, QueryLang, WorkloadConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Serve one script query against a service.
fn serve(service: &QueryService, q: &ClientQuery) -> Arc<PolygenRelation> {
    match q.lang {
        QueryLang::Sql => service.query(&q.text),
        QueryLang::Algebra => service.query_algebra(&q.text),
    }
    .unwrap_or_else(|e| panic!("query `{}` failed: {e}", q.text))
    .answer
}

/// A deterministic "upstream refresh" of one source: every value in its
/// single-source `VAL_*` column shifts by `delta`. Shared attributes are
/// untouched, so the federation stays conflict-free (the paper's
/// assumption) while the source's own data visibly changes.
fn refreshed_relations(
    scenario: &polygen::catalog::scenario::Scenario,
    source: &str,
    delta: i64,
) -> Vec<Relation> {
    let db = scenario
        .databases
        .iter()
        .find(|db| db.name == source)
        .unwrap_or_else(|| panic!("source {source} missing"));
    db.relations
        .iter()
        .map(|rel| {
            let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let val_col = attrs.iter().position(|a| a.starts_with("VAL_"));
            let mut b = Relation::build(rel.name(), &attrs);
            for row in rel.rows() {
                let mut row = row.clone();
                if let (Some(i), Some(Value::Int(v))) = (val_col, val_col.map(|i| &row[i])) {
                    row[i] = Value::int(v + delta);
                }
                b = b.vrow(row);
            }
            b.finish().expect("refreshed relation rebuilds")
        })
        .collect()
}

/// The population used throughout: small scripts over a small
/// federation so a whole property case stays fast on one core.
fn mix(seed: u64, clients: usize) -> ClientMix {
    ClientMix::default()
        .with_seed(seed)
        .with_clients(clients)
        .with_queries_per_client(6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N concurrent cached sessions == sequential cache-off replay,
    /// byte-identically (tags included), query by query.
    #[test]
    fn concurrent_cached_equals_sequential_uncached(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        clients in 2usize..5,
    ) {
        let config = small_config(fed_seed, 3, 72);
        let scenario = workload::generate(&config);
        let cached = QueryService::for_scenario(&scenario, ServeOptions::default());
        let uncached =
            QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
        let m = mix(mix_seed, clients);
        let concurrent = drive(&m, |_, q| serve(&cached, q));
        let sequential = replay(&m, |_, q| serve(&uncached, q));
        for (c, (cc, ss)) in concurrent
            .per_client
            .iter()
            .zip(&sequential.per_client)
            .enumerate()
        {
            for (i, (a, b)) in cc.iter().zip(ss).enumerate() {
                prop_assert_eq!(
                    &**a, &**b,
                    "client {} query {}: cached+concurrent diverged", c, i
                );
            }
        }
        // The cache actually participated (same scripts repeat shapes).
        prop_assert!(cached.metrics().result_hits + cached.metrics().plan_hits > 0);
        prop_assert_eq!(uncached.cache_sizes(), (0, 0));
    }

    /// The same guarantee across a mid-run source update: phase 1,
    /// deterministic refresh of one source, phase 2. Both services see
    /// the same update; cached answers reading the source must not
    /// survive it.
    #[test]
    fn caches_stay_invisible_across_source_update(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        delta in 1i64..1_000,
    ) {
        let config = small_config(fed_seed, 3, 72);
        let scenario = workload::generate(&config);
        let cached = QueryService::for_scenario(&scenario, ServeOptions::default());
        let uncached =
            QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
        let m = mix(mix_seed, 4);
        let phase = |svc: &QueryService, concurrent: bool| -> Vec<Vec<Arc<PolygenRelation>>> {
            if concurrent {
                drive(&m, |_, q| serve(svc, q)).per_client
            } else {
                replay(&m, |_, q| serve(svc, q)).per_client
            }
        };
        let refreshed = refreshed_relations(&scenario, "S1", delta);

        let cached_before = phase(&cached, true);
        cached.update_source_relations("S1", refreshed.clone());
        let cached_after = phase(&cached, true);

        let uncached_before = phase(&uncached, false);
        uncached.update_source_relations("S1", refreshed);
        let uncached_after = phase(&uncached, false);

        prop_assert_eq!(&cached_before, &uncached_before, "pre-update phase diverged");
        prop_assert_eq!(&cached_after, &uncached_after, "post-update phase diverged");
        // The update was visible at all: S1 is in every PENTITY merge,
        // so its version bump must have evicted cached answers.
        prop_assert!(
            cached.metrics().invalidated_results > 0,
            "update invalidated nothing"
        );
    }

    /// Normalization round-trip: canonical text parses back to the same
    /// expression, canonicalization is idempotent, and the plan cache
    /// holds exactly one entry per *distinct* canonical text — i.e. key
    /// collisions between different plans cannot happen, and key misses
    /// between equal plans cannot happen either.
    #[test]
    fn plan_cache_keys_are_exactly_canonical_texts(
        fed_seed in any::<u64>(),
        query_seeds in proptest::collection::vec(any::<u64>(), 2..6),
        depth in 1usize..4,
    ) {
        let config = small_config(fed_seed, 3, 72);
        let scenario = workload::generate(&config);
        let service = QueryService::for_scenario(&scenario, ServeOptions::default());
        let mut distinct = std::collections::BTreeSet::new();
        for seed in &query_seeds {
            let expr = random_expression(&config, *seed, depth);
            let canonical = canonical_text(&expr);
            // Round trip: the canonical text is a faithful spelling.
            prop_assert_eq!(&parse_algebra(&canonical).unwrap(), &expr);
            // Idempotence: canonicalizing canonical text is identity.
            prop_assert_eq!(&canonicalize_algebra(&canonical).unwrap(), &canonical);
            let served = service.query_algebra(&expr.to_string()).unwrap();
            prop_assert_eq!(&served.canonical, &canonical);
            distinct.insert(canonical);
            prop_assert_eq!(
                service.cache_sizes().0,
                distinct.len(),
                "one plan entry per distinct canonical text"
            );
        }
    }
}

/// Sessions interleaved over one shared service agree with a fresh
/// cache-off service — the multi-session shape of the differential
/// guarantee (sessions share caches; answers must not care).
#[test]
fn interleaved_sessions_match_fresh_service() {
    let config = WorkloadConfig::default().with_seed(11).with_entities(80);
    let scenario = workload::generate(&config);
    let shared = QueryService::for_scenario(&scenario, ServeOptions::default());
    let fresh = QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
    let m = ClientMix::default()
        .with_clients(4)
        .with_queries_per_client(8);
    let concurrent = drive(&m, |client, q| {
        // Every query on its own session: the service must not care.
        let mut session = shared.open_session();
        let out = match q.lang {
            QueryLang::Sql => session.query(&q.text),
            QueryLang::Algebra => session.query_algebra(&q.text),
        }
        .unwrap_or_else(|e| panic!("client {client}: {e}"));
        out.answer
    });
    let baseline = replay(&m, |_, q| serve(&fresh, q));
    assert_eq!(concurrent.per_client, baseline.per_client);
    let metrics = shared.metrics();
    assert!(metrics.result_hits > 0, "shared caches were exercised");
    assert!(metrics.peak_concurrency >= 2, "clients actually overlapped");
}

/// The demo scenario's paper federation: hot query served from cache is
/// the same relation object, and stays correct after invalidation.
#[test]
fn paper_federation_cache_round_trip() {
    let scenario = polygen::catalog::scenario::build();
    let service = QueryService::for_scenario(&scenario, ServeOptions::default());
    let sql = "SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS \
               WHERE CEO = ANAME AND ONAME IN \
               (SELECT ONAME FROM PCAREER WHERE AID# IN \
               (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"MBA\"))";
    let cold = service.query(sql).unwrap();
    let warm = service.query(sql).unwrap();
    assert!(warm.result_hit);
    assert!(
        Arc::ptr_eq(&cold.answer, &warm.answer),
        "hit aliases, not clones"
    );
    // Update AD (read by this plan): the next query recomputes the same
    // answer (the refresh is a no-op content-wise) under a new key.
    let ad = scenario.database("AD").unwrap();
    service.update_source_relations("AD", ad.relations.clone());
    let recomputed = service.query(sql).unwrap();
    assert!(!recomputed.result_hit, "version bump forces re-execution");
    assert_eq!(
        *recomputed.answer, *cold.answer,
        "identical data → identical answer"
    );
}
