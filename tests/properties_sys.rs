//! Differential property tests for the queryable system catalog
//! (`sys.*` — the mediator as its own tagged source).
//!
//! The guarantees under test:
//!
//! * every `sys.*` relation answers ordinary SQL with **well-formed
//!   tagged rows** — every cell origin-tagged exactly `{sys}`;
//! * interleaving catalog reads with user traffic is **invisible**:
//!   user answers (data and tags) and the result-cache hit/miss
//!   counters are byte-identical with and without the catalog traffic;
//! * `sys.sessions` shows a session's in-flight query while it runs
//!   and drains the row when the session closes;
//! * catalog answers are **never stale**: the result cache is bypassed,
//!   so state changes (new queries, scrape-driven window advances) are
//!   visible on the very next read.
//!
//! CI runs this suite under both `POLYGEN_THREADS=1` and `=4` (and both
//! executor batch modes), so the catalog's splice-at-admission path is
//! exercised with sequential and partition-parallel engines alike.

mod common;

use common::fixtures::small_config;
use polygen::core::tuple::origins_of;
use polygen::core::PolygenRelation;
use polygen::serve::prelude::*;
use polygen::workload::queries::{sys_sessions_query, sys_stats_query};
use polygen::workload::{self, drive, replay, ClientMix, ClientQuery, MixWeights, QueryLang};
use proptest::prelude::*;
use std::sync::Arc;

/// Serve one script query against a service.
fn serve(service: &QueryService, q: &ClientQuery) -> Arc<PolygenRelation> {
    match q.lang {
        QueryLang::Sql => service.query(&q.text),
        QueryLang::Algebra => service.query_algebra(&q.text),
    }
    .unwrap_or_else(|e| panic!("query `{}` failed: {e}", q.text))
    .answer
}

/// Column lists for a full read of each catalog relation.
const SYS_SELECTS: &[&str] = &[
    "SELECT ORDINAL, QUERY, TOTAL_US, QUEUE_US, EXEC_US, CACHE, SUBSYSTEM FROM sys.queries",
    "SELECT SESSION_ID, PEER, QUERIES, ROWS, ERRORS, LANG, SUBSYSTEM FROM sys.sessions",
    "SELECT BUCKET, QUERIES, ERRORS, PLAN_HITS, RESULT_HITS, EXECUTED, P95_US, SUBSYSTEM \
     FROM sys.stats",
    "SELECT SOURCE, VERSION, RELATIONS, TUPLES, INDEXES, SUBSYSTEM FROM sys.sources",
    "SELECT ORDINAL, CACHE, ENTRY, FINGERPRINT, HITS, SUBSYSTEM FROM sys.cache",
    "SELECT SOURCE, RELATION, COLUMN, KIND, ENTRIES, SUBSYSTEM FROM sys.indexes",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// After arbitrary user traffic, every catalog relation answers SQL
    /// with rows whose every cell is origin-tagged exactly `{sys}` —
    /// and never from the result cache.
    #[test]
    fn sys_relations_are_well_formed_tagged_sources(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        clients in 2usize..5,
    ) {
        let config = small_config(fed_seed, 3, 72);
        let scenario = workload::generate(&config);
        let service = QueryService::for_scenario(&scenario, ServeOptions::default());
        let m = ClientMix::default()
            .with_seed(mix_seed)
            .with_clients(clients)
            .with_queries_per_client(4);
        drive(&m, |_, q| serve(&service, q));
        let sys_id = service
            .federation()
            .snapshot()
            .dictionary()
            .registry()
            .lookup(SYS_DB)
            .expect("the catalog source is interned at construction");
        for sql in SYS_SELECTS {
            let out = service.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            prop_assert!(!out.result_hit, "{}: catalog answers bypass the cache", sql);
            for tuple in out.answer.tuples() {
                let origins = origins_of(tuple);
                prop_assert!(origins.contains(sys_id), "{}: missing sys tag", sql);
                prop_assert_eq!(
                    origins.iter().count(), 1,
                    "{}: catalog rows carry exactly one origin", sql
                );
            }
        }
        // The service state actually surfaced: traffic left slow-log
        // rows, live stats windows, sources, and cache entries behind.
        for sql in &SYS_SELECTS[..1] {
            prop_assert!(!service.query(sql).unwrap().answer.is_empty(), "{}", sql);
        }
    }

    /// Interleaved catalog reads are invisible to user traffic: answers
    /// (tags included) and the result-cache hit/miss counters are
    /// byte-identical with and without them.
    #[test]
    fn catalog_reads_leave_user_traffic_byte_identical(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
    ) {
        let config = small_config(fed_seed, 3, 72);
        let scenario = workload::generate(&config);
        let plain = QueryService::for_scenario(&scenario, ServeOptions::default());
        let spied = QueryService::for_scenario(&scenario, ServeOptions::default());
        let m = ClientMix::default()
            .with_seed(mix_seed)
            .with_clients(3)
            .with_queries_per_client(5);
        let baseline = replay(&m, |_, q| serve(&plain, q));
        let mut flip = false;
        let watched = replay(&m, |_, q| {
            // A catalog read rides between every pair of user queries.
            let probe = if flip { sys_stats_query() } else { sys_sessions_query() };
            flip = !flip;
            spied.query(&probe).expect("catalog read serves");
            serve(&spied, q)
        });
        for (c, (a, b)) in baseline.per_client.iter().zip(&watched.per_client).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                prop_assert_eq!(&**x, &**y, "client {} query {} diverged", c, i);
            }
        }
        let (pm, sm) = (plain.metrics(), spied.metrics());
        prop_assert_eq!(pm.result_hits, sm.result_hits, "hit counters must not move");
        prop_assert_eq!(pm.result_misses, sm.result_misses, "miss counters must not move");
        prop_assert_eq!(plain.cache_sizes().1, spied.cache_sizes().1, "no sys entries cached");
    }
}

/// `sys.sessions` carries the in-flight query of the very session
/// asking, and the row drains when the session drops.
#[test]
fn sessions_relation_shows_in_flight_work_and_drains() {
    let scenario = workload::generate(&small_config(7, 3, 64));
    let service = QueryService::for_scenario(&scenario, ServeOptions::default());
    let probe = "SELECT SESSION_ID, QUERY, LANG FROM sys.sessions".to_string();
    let mut session = service.open_session();
    let out = session.query(&probe).unwrap();
    assert_eq!(out.answer.len(), 1, "one open session, one row");
    let id = polygen::flat::value::Value::int(i64::try_from(session.id()).unwrap());
    let in_flight = out
        .answer
        .cell("SESSION_ID", &id, "QUERY")
        .expect("own row present");
    assert_eq!(
        in_flight.datum,
        polygen::flat::value::Value::str(&probe),
        "the registry shows what the session is running right now"
    );
    drop(session);
    assert!(service.sessions().is_empty(), "drop deregisters");
    let after = service.query(&probe).unwrap();
    assert!(
        after.answer.cell("SESSION_ID", &id, "QUERY").is_none(),
        "a closed session's row drains from the catalog"
    );
}

/// Catalog freshness across scrapes: the metrics ring advances on every
/// scrape, and the next `sys.stats` read sees the new window — a cached
/// (stale) catalog answer would fail both assertions.
#[test]
fn scrapes_advance_the_stats_ring_and_reads_stay_fresh() {
    let scenario = workload::generate(&small_config(3, 3, 64));
    let service = QueryService::for_scenario(&scenario, ServeOptions::default());
    let stats = sys_stats_query();
    let first = service.query(&stats).unwrap();
    let windows_before = first.answer.len();
    assert!(windows_before >= 1, "materialization opens a window");
    let _ = service.scrape();
    let second = service.query(&stats).unwrap();
    assert!(!second.result_hit);
    assert_eq!(
        second.answer.len(),
        windows_before + 1,
        "the scrape sealed a window and the next read saw it"
    );
    // New queries land on the slow log and are visible immediately.
    let queries = "SELECT ORDINAL, QUERY FROM sys.queries";
    let before = service.query(queries).unwrap().answer.len();
    service
        .query_algebra(&workload::queries::select_query(0))
        .unwrap();
    let after = service.query(queries).unwrap();
    assert!(!after.result_hit);
    assert!(
        after.answer.len() > before,
        "catalog reads reflect every intervening query"
    );
    // And the mix's catalog weight drives the same path end to end:
    // user answers cache, catalog answers never do.
    let m = ClientMix::default()
        .with_queries_per_client(20)
        .with_weights(MixWeights::with_catalog_reads(4));
    drive(&m, |_, q| serve(&service, q));
    let sizes = service.cache_sizes();
    assert!(sizes.1 > 0, "user entries cached under the mixed workload");
    assert!(
        service.metrics().result_misses > 0,
        "user traffic actually executed"
    );
}
