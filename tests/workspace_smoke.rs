//! Workspace-surface smoke test: the facade crate's `prelude` must keep
//! resolving the names downstream code (examples, benches, future crates)
//! imports, and the paper's MIT scenario must round-trip end-to-end
//! through one PQP query. This is the canary for manifest or re-export
//! regressions — it fails at compile time if a prelude item disappears.

use polygen::prelude::*;

/// Every prelude family is touchable by name. Compile-time coverage: each
/// binding below comes from a different member crate's prelude via the
/// facade's single glob import.
#[test]
fn prelude_reexports_resolve() {
    // flat (untagged substrate)
    let builder: RelationBuilder = Relation::build("R", &["A"]);
    let rel: Relation = builder.row(&["x"]).finish().unwrap();
    assert_eq!(rel.len(), 1);
    let _cmp: Cmp = Cmp::Eq;
    let _val: Value = Value::str("x");
    // core (tagged model)
    let mut registry = SourceRegistry::new();
    let src: SourceId = registry.intern("AD");
    let set: SourceSet = [src].into_iter().collect();
    let cell: Cell = Cell::retrieved(Value::str("x"), src);
    assert!(set.contains(src) && cell.origin.contains(src));
    let _policy: ConflictPolicy = ConflictPolicy::Strict;
    // catalog (schemes, dictionary, MIT scenario)
    let scenario: Scenario = scenario::build();
    let _schema: &PolygenSchema = scenario.dictionary.schema();
    // lqp (local query processors)
    let lqp_registry: LqpRegistry = scenario_registry(&scenario);
    assert!(!lqp_registry.is_empty());
    // sql (front ends)
    let expr: AlgebraExpr = parse_algebra(PAPER_EXPRESSION).unwrap();
    assert!(!expr.to_string().is_empty());
    // pqp (the polygen query processor)
    let pqp: Pqp = Pqp::for_scenario(&scenario);
    let _options: PqpOptions = PqpOptions::default();
    let _ = &pqp;
}

/// The MIT scenario from `catalog::scenario` answers a real polygen query
/// through the full PQP pipeline: parse → two-pass interpret → optimize →
/// execute across the three LQPs, with source tags surviving the trip.
#[test]
fn mit_scenario_roundtrips_through_pqp() {
    let scenario = scenario::build();
    let pqp = Pqp::for_scenario(&scenario);
    let out: QueryOutcome = pqp
        .query("SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = \"MBA\"")
        .unwrap();
    assert_eq!(out.answer.len(), 3, "the paper's intro query finds 3 CEOs");
    // Source tagging round-trip: answers originate in the company database
    // and the alumni database mediated the join.
    let registry = pqp.dictionary().registry();
    let (ad, cd) = (
        registry.lookup("AD").expect("AD interned"),
        registry.lookup("CD").expect("CD interned"),
    );
    for tuple in out.answer.tuples() {
        assert!(tuple[0].origin.contains(cd), "CEO names originate in CD");
        assert!(tuple[0].intermediate.contains(ad), "AD mediated the query");
    }
}
