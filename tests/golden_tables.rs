//! Golden reproduction of the paper's body tables (Tables 1–9).
//!
//! The example polygen query of §III is translated and executed over the
//! §IV scenario; every table the paper prints along the way must match
//! cell-for-cell — datum, originating sources *and* intermediate sources.
//! Transcription corrections (printed typos in the 1990 scan) are
//! documented in `EXPERIMENTS.md` and in `catalog::scenario`.

mod common;

use common::check_table;
use polygen::catalog::prelude::scenario;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::PAPER_EXPRESSION;

const PAPER_SQL: &str = "SELECT ONAME, CEO \
    FROM PORGANIZATION, PALUMNUS \
    WHERE CEO = ANAME AND ONAME IN \
    (SELECT ONAME FROM PCAREER WHERE AID# IN \
    (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"MBA\"))";

fn outcome() -> (QueryOutcome, polygen::core::SourceRegistry) {
    let s = scenario::build();
    // Tables 4–9 are read out of the execution trace, so retention is
    // switched on (production pipelines default to final-only).
    let pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
        retain_intermediates: true,
        ..PqpOptions::default()
    });
    let out = pqp
        .query_algebra(PAPER_EXPRESSION)
        .expect("paper query runs");
    let reg = pqp.dictionary().registry().clone();
    (out, reg)
}

/// Table 1: the Polygen Operation Matrix, row for row.
#[test]
fn table1_polygen_operation_matrix() {
    let (out, _) = outcome();
    let rendered = render_pom(&out.compiled.pom);
    let expected_rows = [
        "R(1) | Select | PALUMNUS | DEGREE | = | \"MBA\" | nil",
        "R(2) | Join | R(1) | AID# | = | AID# | PCAREER",
        "R(3) | Join | R(2) | ONAME | = | ONAME | PORGANIZATION",
        "R(4) | Restrict | R(3) | CEO | = | ANAME | nil",
        "R(5) | Project | R(4) | ONAME, CEO | nil | nil | nil",
    ];
    for row in expected_rows {
        let compact: String = row.split_whitespace().collect::<Vec<_>>().join(" ");
        let hit = rendered.lines().any(|l| {
            let squeezed: String = l
                .split('|')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(" | ");
            squeezed == compact
        });
        assert!(hit, "Table 1 missing row `{row}`\nrendered:\n{rendered}");
    }
}

/// Table 2: the half-processed IOM after pass one.
#[test]
fn table2_half_processed_iom() {
    let (out, _) = outcome();
    let expected = [
        ("Select", "ALUMNUS", "DEG", "\"MBA\"", "nil", "AD"),
        ("Join", "R(1)", "AID#", "AID#", "PCAREER", "PQP"),
        ("Join", "R(2)", "ONAME", "ONAME", "PORGANIZATION", "PQP"),
        ("Restrict", "R(3)", "CEO", "ANAME", "nil", "PQP"),
        ("Project", "R(4)", "ONAME, CEO", "nil", "nil", "PQP"),
    ];
    assert_eq!(out.compiled.half.cardinality(), expected.len());
    for (row, (op, lhr, lha, rha, rhr, el)) in out.compiled.half.rows.iter().zip(expected) {
        assert_eq!(row.op.to_string(), op);
        assert_eq!(row.lhr.to_string(), lhr);
        assert_eq!(
            row.lha.join(", "),
            if lha == "nil" {
                String::new()
            } else {
                lha.into()
            }
        );
        assert_eq!(row.rha.to_string(), rha);
        assert_eq!(row.rhr.to_string(), rhr);
        assert_eq!(row.el.to_string(), el);
    }
}

/// Table 3: the full IOM after pass two.
#[test]
fn table3_intermediate_operation_matrix() {
    let (out, _) = outcome();
    let expected = [
        ("Select", "ALUMNUS", "DEG", "\"MBA\"", "nil", "AD"),
        ("Retrieve", "CAREER", "", "nil", "nil", "AD"),
        ("Join", "R(1)", "AID#", "AID#", "R(2)", "PQP"),
        ("Retrieve", "BUSINESS", "", "nil", "nil", "AD"),
        ("Retrieve", "CORPORATION", "", "nil", "nil", "PD"),
        ("Retrieve", "FIRM", "", "nil", "nil", "CD"),
        ("Merge", "R(4), R(5), R(6)", "", "nil", "nil", "PQP"),
        ("Join", "R(3)", "ONAME", "ONAME", "R(7)", "PQP"),
        ("Restrict", "R(8)", "CEO", "ANAME", "nil", "PQP"),
        ("Project", "R(9)", "ONAME, CEO", "nil", "nil", "PQP"),
    ];
    assert_eq!(out.compiled.iom.cardinality(), expected.len());
    for (row, (op, lhr, lha, rha, rhr, el)) in out.compiled.iom.rows.iter().zip(expected) {
        assert_eq!(row.op.to_string(), op, "row {}", row.pr);
        assert_eq!(row.lhr.to_string(), lhr, "row {}", row.pr);
        assert_eq!(row.lha.join(", "), lha, "row {}", row.pr);
        assert_eq!(row.rha.to_string(), rha, "row {}", row.pr);
        assert_eq!(row.rhr.to_string(), rhr, "row {}", row.pr);
        assert_eq!(row.el.to_string(), el, "row {}", row.pr);
    }
}

/// Table 4: `ALUMNUS[DEG = "MBA"]` executed at AD, tagged on arrival.
#[test]
fn table4_select_result() {
    let (out, reg) = outcome();
    let r1 = out.trace.result(1).expect("R(1)");
    check_table(
        "Table 4",
        r1,
        &reg,
        &["AID#", "ANAME", "DEG", "MAJ"],
        &[
            "012 @A ^- | John McCauley @A ^- | MBA @A ^- | IS @A ^-",
            "123 @A ^- | Bob Swanson @A ^- | MBA @A ^- | MGT @A ^-",
            "234 @A ^- | Stu Madnick @A ^- | MBA @A ^- | IS @A ^-",
            "456 @A ^- | Dave Horton @A ^- | MBA @A ^- | IS @A ^-",
            "567 @A ^- | John Reed @A ^- | MBA @A ^- | MGT @A ^-",
        ],
    );
}

/// Table 5: R(1) joined with the retrieved CAREER relation. "The Join
/// requires that the intermediate source cells to be {AD} although in
/// this case it appears to be redundant."
#[test]
fn table5_join_with_career() {
    let (out, reg) = outcome();
    let r3 = out.trace.result(3).expect("R(3)");
    check_table(
        "Table 5",
        r3,
        &reg,
        &["AID#", "ANAME", "DEG", "MAJ", "BNAME", "POS"],
        &[
            "012 @A ^A | John McCauley @A ^A | MBA @A ^A | IS @A ^A | Citicorp @A ^A | MIS Director @A ^A",
            "123 @A ^A | Bob Swanson @A ^A | MBA @A ^A | MGT @A ^A | Genentech @A ^A | CEO @A ^A",
            "234 @A ^A | Stu Madnick @A ^A | MBA @A ^A | IS @A ^A | Langley Castle @A ^A | CEO @A ^A",
            "456 @A ^A | Dave Horton @A ^A | MBA @A ^A | IS @A ^A | Ford @A ^A | Manager @A ^A",
            "567 @A ^A | John Reed @A ^A | MBA @A ^A | MGT @A ^A | Citicorp @A ^A | CEO @A ^A",
            "234 @A ^A | Stu Madnick @A ^A | MBA @A ^A | IS @A ^A | MIT @A ^A | Professor @A ^A",
        ],
    );
}

/// Table 6: the Merge of BUSINESS, CORPORATION and FIRM (== Table A9).
#[test]
fn table6_merged_organizations() {
    let (out, reg) = outcome();
    let r7 = out.trace.result(7).expect("R(7)");
    check_table(
        "Table 6",
        r7,
        &reg,
        &["ONAME", "INDUSTRY", "HEADQUARTERS", "CEO"],
        &[
            "Langley Castle @AC ^AC | Hotel @A ^AC | MA @C ^AC | Stu Madnick @C ^AC",
            "IBM @APC ^APC | High Tech @AP ^APC | NY @PC ^APC | John Ackers @C ^APC",
            "MIT @A ^A | Education @A ^A | nil @- ^A | nil @- ^A",
            "Citicorp @APC ^APC | Banking @AP ^APC | NY @PC ^APC | John Reed @C ^APC",
            "Oracle @APC ^APC | High Tech @AP ^APC | CA @PC ^APC | Lawrence Ellison @C ^APC",
            "Ford @AC ^AC | Automobile @A ^AC | MI @C ^AC | Donald Peterson @C ^AC",
            "DEC @APC ^APC | High Tech @AP ^APC | MA @PC ^APC | Ken Olsen @C ^APC",
            "BP @A ^A | Energy @A ^A | nil @- ^A | nil @- ^A",
            "Genentech @AC ^AC | High Tech @A ^AC | CA @C ^AC | Bob Swanson @C ^AC",
            "Apple @PC ^PC | High Tech @P ^PC | CA @PC ^PC | John Sculley @C ^PC",
            "AT&T @PC ^PC | High Tech @P ^PC | NY @PC ^PC | Robert Allen @C ^PC",
            "Banker's Trust @PC ^PC | Finance @P ^PC | NY @PC ^PC | Charles Sanford @C ^PC",
        ],
    );
}

/// Table 7: Table 5 joined with Table 6 on ONAME.
#[test]
fn table7_join_with_organizations() {
    let (out, reg) = outcome();
    let r8 = out.trace.result(8).expect("R(8)");
    check_table(
        "Table 7",
        r8,
        &reg,
        &[
            "AID#", "ANAME", "DEG", "MAJ", "ONAME", "POS", "INDUSTRY", "HEADQUARTERS", "CEO",
        ],
        &[
            // 012 / Citicorp — all three databases involved.
            "012 @A ^APC | John McCauley @A ^APC | MBA @A ^APC | IS @A ^APC | Citicorp @APC ^APC | MIS Director @A ^APC | Banking @AP ^APC | NY @PC ^APC | John Reed @C ^APC",
            // 123 / Genentech — AD and CD only.
            "123 @A ^AC | Bob Swanson @A ^AC | MBA @A ^AC | MGT @A ^AC | Genentech @AC ^AC | CEO @A ^AC | High Tech @A ^AC | CA @C ^AC | Bob Swanson @C ^AC",
            // 234 / Langley Castle.
            "234 @A ^AC | Stu Madnick @A ^AC | MBA @A ^AC | IS @A ^AC | Langley Castle @AC ^AC | CEO @A ^AC | Hotel @A ^AC | MA @C ^AC | Stu Madnick @C ^AC",
            // 456 / Ford (the paper prints "Don Peterson"; FIRM says Donald).
            "456 @A ^AC | Dave Horton @A ^AC | MBA @A ^AC | IS @A ^AC | Ford @AC ^AC | Manager @A ^AC | Automobile @A ^AC | MI @C ^AC | Donald Peterson @C ^AC",
            // 567 / Citicorp (the paper prints MAJ "MIT"; ALUMNUS says MGT).
            "567 @A ^APC | John Reed @A ^APC | MBA @A ^APC | MGT @A ^APC | Citicorp @APC ^APC | CEO @A ^APC | Banking @AP ^APC | NY @PC ^APC | John Reed @C ^APC",
            // 234 / MIT — AD only; nil HEADQUARTERS and CEO.
            "234 @A ^A | Stu Madnick @A ^A | MBA @A ^A | IS @A ^A | MIT @A ^A | Professor @A ^A | Education @A ^A | nil @- ^A | nil @- ^A",
        ],
    );
}

/// Table 8: the Restrict `CEO = ANAME` keeps only self-CEO alumni.
#[test]
fn table8_restrict_ceo_is_alumnus() {
    let (out, reg) = outcome();
    let r9 = out.trace.result(9).expect("R(9)");
    check_table(
        "Table 8",
        r9,
        &reg,
        &[
            "AID#", "ANAME", "DEG", "MAJ", "ONAME", "POS", "INDUSTRY", "HEADQUARTERS", "CEO",
        ],
        &[
            "123 @A ^AC | Bob Swanson @A ^AC | MBA @A ^AC | MGT @A ^AC | Genentech @AC ^AC | CEO @A ^AC | High Tech @A ^AC | CA @C ^AC | Bob Swanson @C ^AC",
            "234 @A ^AC | Stu Madnick @A ^AC | MBA @A ^AC | IS @A ^AC | Langley Castle @AC ^AC | CEO @A ^AC | Hotel @A ^AC | MA @C ^AC | Stu Madnick @C ^AC",
            "567 @A ^APC | John Reed @A ^APC | MBA @A ^APC | MGT @A ^APC | Citicorp @APC ^APC | CEO @A ^APC | Banking @AP ^APC | NY @PC ^APC | John Reed @C ^APC",
        ],
    );
}

/// Table 9: the final projection — the paper's headline result.
#[test]
fn table9_final_answer() {
    let (out, reg) = outcome();
    check_table(
        "Table 9",
        &out.answer,
        &reg,
        &["ONAME", "CEO"],
        &[
            "Genentech @AC ^AC | Bob Swanson @C ^AC",
            "Langley Castle @AC ^AC | Stu Madnick @C ^AC",
            "Citicorp @APC ^APC | John Reed @C ^APC",
        ],
    );
}

/// The SQL front end produces the identical pipeline (the paper presents
/// the SQL and the algebra as the same query).
#[test]
fn sql_pipeline_matches_algebra_pipeline() {
    let s = scenario::build();
    let pqp = Pqp::for_scenario(&s);
    let via_sql = pqp.query(PAPER_SQL).unwrap();
    let via_alg = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
    assert_eq!(via_sql.compiled.expr, via_alg.compiled.expr);
    assert_eq!(via_sql.compiled.iom, via_alg.compiled.iom);
    assert!(via_sql.answer.tagged_set_eq(&via_alg.answer));
}

/// §IV observation (3): mapping `("ONAME", {AD, CD})` back to local
/// coordinates yields BUSINESS.BNAME and FIRM.FNAME.
#[test]
fn observation3_tag_to_triplet_explanation() {
    let (out, reg) = outcome();
    let s = scenario::build();
    let genentech = out
        .answer
        .cell("ONAME", &polygen::flat::Value::str("Genentech"), "ONAME")
        .unwrap();
    let triplets = s
        .dictionary
        .explain_attribute("PORGANIZATION", "ONAME", &genentech.origin);
    let shown: Vec<String> = triplets.iter().map(|t| t.to_string()).collect();
    assert_eq!(shown, vec!["(AD, BUSINESS, BNAME)", "(CD, FIRM, FNAME)"]);
    let _ = reg;
}
