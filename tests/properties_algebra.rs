//! Property-based tests for the polygen algebra's core invariants.
//!
//! The central theorem these check: **tag erasure is a homomorphism** —
//! for every polygen operator `op`, `strip(op_polygen(p)) ==
//! op_flat(strip(p))`. The polygen model is "a direct extension of the
//! Relational Model … thus it enjoys all of the strengths of the
//! traditional Relational Model" (§I): tagging must never change the
//! data-portion semantics. Plus the algebraic laws §II claims or implies:
//! union commutativity/associativity, project idempotence, restrict
//! intermediate-tag monotonicity, difference disjointness.

use polygen::core::algebra;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::core::{Cell, PolygenRelation, SourceId, SourceSet};
use polygen::flat::prelude::*;
use polygen::flat::Value;
use proptest::prelude::*;
use std::sync::Arc;

/// A tagged relation over schema (K, X, Y): small integer data with
/// random origin/intermediate sets (ids up to 300 to cross the source
/// set's inline/heap boundary).
fn tagged_relation(max_rows: usize) -> impl Strategy<Value = PolygenRelation> {
    let cell = (
        0i64..6,
        proptest::collection::vec(0u16..300, 0..3),
        proptest::collection::vec(0u16..300, 0..2),
    )
        .prop_map(|(v, o, i)| {
            Cell::new(
                Value::Int(v),
                o.into_iter().map(SourceId).collect(),
                i.into_iter().map(SourceId).collect(),
            )
        });
    proptest::collection::vec(proptest::collection::vec(cell, 3), 0..max_rows).prop_map(|tuples| {
        let schema = Arc::new(Schema::new("T", &["K", "X", "Y"]).unwrap());
        let mut rel = PolygenRelation::from_tuples(schema, tuples).unwrap();
        // Keep the data portion set-like, as the model requires.
        rel.merge_duplicates();
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strip_commutes_with_select(p in tagged_relation(12), c in 0i64..6) {
        let tagged = algebra::select(&p, "X", Cmp::Eq, Value::Int(c)).unwrap().strip();
        let flat = polygen::flat::algebra::select(&p.strip(), "X", Cmp::Eq, Value::Int(c)).unwrap();
        prop_assert!(tagged.set_eq(&flat));
    }

    #[test]
    fn strip_commutes_with_restrict(p in tagged_relation(12)) {
        let tagged = algebra::restrict(&p, "X", Cmp::Lt, "Y").unwrap().strip();
        let flat = polygen::flat::algebra::restrict(&p.strip(), "X", Cmp::Lt, "Y").unwrap();
        prop_assert!(tagged.set_eq(&flat));
    }

    #[test]
    fn strip_commutes_with_project(p in tagged_relation(12)) {
        let tagged = algebra::project(&p, &["X", "Y"]).unwrap().strip();
        let flat = polygen::flat::algebra::project(&p.strip(), &["X", "Y"]).unwrap();
        prop_assert!(tagged.set_eq(&flat));
    }

    #[test]
    fn strip_commutes_with_union_and_difference(
        a in tagged_relation(10),
        b in tagged_relation(10),
    ) {
        let tagged_u = algebra::union(&a, &b).unwrap().strip();
        let flat_u = polygen::flat::algebra::union(&a.strip(), &b.strip()).unwrap();
        prop_assert!(tagged_u.set_eq(&flat_u));
        let tagged_d = algebra::difference(&a, &b).unwrap().strip();
        let flat_d = polygen::flat::algebra::difference(&a.strip(), &b.strip()).unwrap();
        prop_assert!(tagged_d.set_eq(&flat_d));
    }

    #[test]
    fn strip_commutes_with_join(
        a in tagged_relation(8),
        b in tagged_relation(8),
    ) {
        let b = b.renamed("B").rename_attrs(&["K2", "X2", "Y2"]).unwrap();
        let tagged = algebra::theta_join(&a, &b, "X", Cmp::Eq, "X2").unwrap().strip();
        let flat = polygen::flat::algebra::theta_join(&a.strip(), &b.strip(), "X", Cmp::Eq, "X2").unwrap();
        prop_assert!(tagged.set_eq(&flat));
    }

    #[test]
    fn strip_commutes_with_outer_join(
        a in tagged_relation(8),
        b in tagged_relation(8),
    ) {
        let b = b.renamed("B").rename_attrs(&["K2", "X2", "Y2"]).unwrap();
        let tagged = algebra::outer_join(&a, &b, "K", "K2").unwrap().strip();
        let flat = polygen::flat::algebra::outer_join(&a.strip(), &b.strip(), "K", "K2").unwrap();
        prop_assert!(tagged.set_eq(&flat));
    }

    #[test]
    fn union_laws(a in tagged_relation(10), b in tagged_relation(10), c in tagged_relation(10)) {
        let ab = algebra::union(&a, &b).unwrap();
        let ba = algebra::union(&b, &a).unwrap();
        prop_assert!(ab.tagged_set_eq(&ba), "commutativity");
        let ab_c = algebra::union(&ab, &c).unwrap();
        let a_bc = algebra::union(&a, &algebra::union(&b, &c).unwrap()).unwrap();
        prop_assert!(ab_c.tagged_set_eq(&a_bc), "associativity");
        let aa = algebra::union(&a, &a).unwrap();
        prop_assert!(aa.tagged_set_eq(&a), "idempotence");
    }

    #[test]
    fn project_idempotent(p in tagged_relation(12)) {
        let once = algebra::project(&p, &["X"]).unwrap();
        let twice = algebra::project(&once, &["X"]).unwrap();
        prop_assert!(once.tagged_set_eq(&twice));
    }

    #[test]
    fn selects_commute(p in tagged_relation(12), c1 in 0i64..6, c2 in 0i64..6) {
        let xy = algebra::select(
            &algebra::select(&p, "X", Cmp::Le, Value::Int(c1)).unwrap(),
            "Y", Cmp::Ge, Value::Int(c2),
        ).unwrap();
        let yx = algebra::select(
            &algebra::select(&p, "Y", Cmp::Ge, Value::Int(c2)).unwrap(),
            "X", Cmp::Le, Value::Int(c1),
        ).unwrap();
        prop_assert!(xy.tagged_set_eq(&yx));
    }

    #[test]
    fn restrict_grows_intermediates_monotonically(p in tagged_relation(12)) {
        let r = algebra::restrict(&p, "X", Cmp::Eq, "Y").unwrap();
        for out in r.tuples() {
            let data: Vec<Value> = out.iter().map(|c| c.datum.clone()).collect();
            let original = p.find_by_data(&data).expect("restrict only keeps input tuples");
            for (oc, ic) in out.iter().zip(original) {
                prop_assert!(ic.intermediate.is_subset(&oc.intermediate));
                prop_assert!(oc.origin == ic.origin, "origins untouched");
            }
        }
    }

    #[test]
    fn difference_output_disjoint_from_subtrahend(
        a in tagged_relation(10),
        b in tagged_relation(10),
    ) {
        let d = algebra::difference(&a, &b).unwrap();
        let db = algebra::intersect(&d, &b);
        // Intersection over data portions must be empty (nil-free data here).
        prop_assert!(db.unwrap().is_empty());
        // And union(difference, intersect) restores a's data portion.
        let i = algebra::intersect(&a, &b).unwrap();
        let rebuilt = algebra::union(&d, &i).unwrap();
        prop_assert!(rebuilt.strip().set_eq(&a.strip()));
    }

    #[test]
    fn coalesce_equal_columns_unions_tags(p in tagged_relation(12)) {
        // Coalescing X with a copy of itself: every datum equal, so the
        // result keeps data and unions tags (here: identical sets).
        let doubled = {
            let schema = Arc::new(Schema::new("D", &["X", "X2"]).unwrap());
            let tuples: Vec<Vec<Cell>> = p
                .tuples()
                .iter()
                .map(|t| vec![t[1].clone(), t[1].clone()])
                .collect();
            PolygenRelation::from_tuples(schema, tuples).unwrap()
        };
        let c = algebra::coalesce(&doubled, "X", "X2", "X", ConflictPolicy::Strict).unwrap();
        for (out, orig) in c.tuples().iter().zip(p.tuples()) {
            prop_assert_eq!(&out[0].datum, &orig[1].datum);
            prop_assert_eq!(&out[0].origin, &orig[1].origin);
            prop_assert_eq!(&out[0].intermediate, &orig[1].intermediate);
        }
    }
}

/// Merge order-insensitivity over conflict-free random federations.
mod merge_order {
    use super::*;

    /// Build `k` relations over a shared entity pool with *canonical*
    /// attribute values (no conflicts possible), each covering a random
    /// subset of entities.
    fn merge_inputs() -> impl Strategy<Value = Vec<PolygenRelation>> {
        (
            2usize..5,
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8), 2..5),
        )
            .prop_map(|(_, coverage)| {
                coverage
                    .into_iter()
                    .enumerate()
                    .map(|(src, covered)| {
                        let schema = Arc::new(
                            Schema::new("R", &["ENAME", "CATEGORY"])
                                .unwrap()
                                .with_key(&["ENAME"])
                                .unwrap(),
                        );
                        let tuples: Vec<Vec<Cell>> = covered
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| **c)
                            .map(|(e, _)| {
                                vec![
                                    Cell::retrieved(
                                        Value::str(format!("E{e}")),
                                        SourceId(src as u16),
                                    ),
                                    Cell::retrieved(
                                        Value::Int((e % 3) as i64),
                                        SourceId(src as u16),
                                    ),
                                ]
                            })
                            .collect();
                        PolygenRelation::from_tuples(schema, tuples).unwrap()
                    })
                    .collect()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn merge_is_order_insensitive(rels in merge_inputs(), shuffle_seed in any::<u64>()) {
            let (baseline, _) =
                algebra::merge::merge(&rels, "ENAME", ConflictPolicy::Strict).unwrap();
            // Deterministic shuffle from the seed.
            let mut order: Vec<usize> = (0..rels.len()).collect();
            let mut s = shuffle_seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            let shuffled: Vec<PolygenRelation> = order.iter().map(|&i| rels[i].clone()).collect();
            let (merged, _) =
                algebra::merge::merge(&shuffled, "ENAME", ConflictPolicy::Strict).unwrap();
            // Same attribute set (order may differ) and same tagged tuples.
            let mut attrs: Vec<&str> =
                baseline.schema().attrs().iter().map(|a| a.as_ref()).collect();
            attrs.sort_unstable();
            let pa = algebra::project(&baseline, &attrs).unwrap();
            let pb = algebra::project(&merged, &attrs).unwrap();
            prop_assert!(pa.tagged_set_eq(&pb));
        }
    }
}

/// Source-set laws, crossing the inline/heap representation boundary.
mod source_sets {
    use super::*;

    fn source_set() -> impl Strategy<Value = SourceSet> {
        proptest::collection::vec(0u16..400, 0..12)
            .prop_map(|ids| ids.into_iter().map(SourceId).collect())
    }

    proptest! {
        #[test]
        fn union_laws(a in source_set(), b in source_set(), c in source_set()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.union(&a), a.clone());
            prop_assert_eq!(a.union(&SourceSet::empty()), a.clone());
        }

        #[test]
        fn union_is_upper_bound(a in source_set(), b in source_set()) {
            let u = a.union(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
            for id in a.iter() {
                prop_assert!(u.contains(id));
            }
        }

        #[test]
        fn len_matches_iter(a in source_set()) {
            prop_assert_eq!(a.len(), a.iter().count());
            prop_assert_eq!(a.is_empty(), a.is_empty());
        }

        #[test]
        fn eq_and_hash_agree_across_representations(ids in proptest::collection::vec(0u16..400, 0..12)) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            // Build in two different insertion orders.
            let a: SourceSet = ids.iter().copied().map(SourceId).collect();
            let b: SourceSet = ids.iter().rev().copied().map(SourceId).collect();
            prop_assert_eq!(&a, &b);
            let hash = |s: &SourceSet| {
                let mut h = DefaultHasher::new();
                s.hash(&mut h);
                h.finish()
            };
            prop_assert_eq!(hash(&a), hash(&b));
        }
    }
}

/// Definitional equivalences: §II defines the derived operators in terms
/// of the primitives; the direct implementations must agree — tags
/// included.
mod derived_definitions {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// "Intersection is defined as the project of a join over all the
        /// attributes in each of the relations involved." Build that
        /// chain — θ-join on the first attribute, restricts on the rest,
        /// coalesce every attribute pair — and compare against the direct
        /// implementation.
        #[test]
        fn intersect_equals_projected_total_join(
            a in tagged_relation(8),
            b in tagged_relation(8),
        ) {
            let direct = algebra::intersect(&a, &b).unwrap();
            let b2 = b.renamed("B").rename_attrs(&["K2", "X2", "Y2"]).unwrap();
            let mut chain = algebra::theta_join(&a, &b2, "K", Cmp::Eq, "K2").unwrap();
            chain = algebra::restrict(&chain, "X", Cmp::Eq, "X2").unwrap();
            chain = algebra::restrict(&chain, "Y", Cmp::Eq, "Y2").unwrap();
            chain = algebra::coalesce(&chain, "K", "K2", "K", ConflictPolicy::Strict).unwrap();
            chain = algebra::coalesce(&chain, "X", "X2", "X", ConflictPolicy::Strict).unwrap();
            chain = algebra::coalesce(&chain, "Y", "Y2", "Y", ConflictPolicy::Strict).unwrap();
            prop_assert!(
                direct.tagged_set_eq(&chain),
                "direct intersect diverged from the definitional chain"
            );
        }

        /// "Join … defined as the restriction of a Cartesian product":
        /// θ-join ≡ restrict ∘ product, tags included, for every θ.
        #[test]
        fn join_equals_restricted_product(
            a in tagged_relation(6),
            b in tagged_relation(6),
        ) {
            let b = b.renamed("B").rename_attrs(&["K2", "X2", "Y2"]).unwrap();
            for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Ge] {
                let direct = algebra::theta_join(&a, &b, "X", cmp, "X2").unwrap();
                let via_product = algebra::restrict(
                    &algebra::product(&a, &b).unwrap(),
                    "X",
                    cmp,
                    "X2",
                ).unwrap();
                prop_assert!(direct.tagged_set_eq(&via_product), "θ = {cmp}");
            }
        }

        /// AntiJoin semantics: survivors are exactly the left tuples whose
        /// key matches nothing on the right, and all survivors carry the
        /// right relation's origin closure — the Difference discipline.
        #[test]
        fn anti_join_complements_semi_join(
            a in tagged_relation(8),
            b in tagged_relation(8),
        ) {
            let b = b.renamed("B").rename_attrs(&["K2", "X2", "Y2"]).unwrap();
            let anti = algebra::anti_join(&a, &b, "K", "K2").unwrap();
            let joined = algebra::theta_join(&a, &b, "K", Cmp::Eq, "K2").unwrap();
            // Data-level: anti(a) ∪ semijoin(a) == a (by keys).
            let matched_keys: std::collections::HashSet<Value> = joined
                .tuples()
                .iter()
                .map(|t| t[0].datum.clone())
                .collect();
            for t in anti.tuples() {
                prop_assert!(!matched_keys.contains(&t[0].datum));
            }
            let anti_keys: std::collections::HashSet<Value> =
                anti.tuples().iter().map(|t| t[0].datum.clone()).collect();
            for t in a.tuples() {
                let k = &t[0].datum;
                prop_assert!(matched_keys.contains(k) || anti_keys.contains(k));
            }
        }
    }
}
