//! Differential property tests for the wire layer (`polygen-net`).
//!
//! The guarantee under test: **the transport is invisible**. A TCP
//! session executing a workload script receives responses that are
//! byte-identical — schema, data, origin tags, intermediate tags, tuple
//! order, error codes — to the same script run in-process through
//! `QueryService::execute`, with only the timing-dependent `Summary`
//! frame allowed to differ. That holds across a mid-run source update,
//! and overload produces a structured `Overloaded` frame on a live
//! connection, never a dropped socket.
//!
//! Plus codec soundness: every frame kind round-trips bit-exactly, and
//! truncating or corrupting bytes yields errors, not panics.
//!
//! CI runs this suite under both `POLYGEN_THREADS=1` and `=4`, so wire
//! answers are checked against sequential and partition-parallel
//! execution alike.

mod common;

use common::fixtures::small_config;
use polygen::core::cell::Cell;
use polygen::core::source::{SourceId, SourceSet};
use polygen::flat::relation::Relation;
use polygen::flat::value::Value;
use polygen::net::codec::CodecError;
use polygen::net::prelude::*;
use polygen::net::protocol::request_frame;
use polygen::serve::prelude::*;
use polygen::workload::{self, ClientMix, MixWeights};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic, seed-driven frame of any kind — the generator
/// behind the codec round-trip property. A tiny splitmix keeps the
/// content varied without pulling in an RNG crate.
fn arbitrary_frame(seed: u64) -> Frame {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let value = |v: u64| match v % 5 {
        0 => Value::Null,
        1 => Value::Bool(v % 2 == 0),
        2 => Value::Int(v as i64),
        3 => Value::float(v as f64 / 7.0),
        _ => Value::str(format!("s{v}")),
    };
    let source_set =
        |v: u64| SourceSet::from_ids((0..v % 4).map(|i| SourceId((v % 50) as u16 + i as u16)));
    let tuple = |v: u64| -> Vec<Cell> {
        (0..1 + v % 3)
            .map(|i| Cell::new(value(v ^ i), source_set(v >> 8), source_set(v >> 16)))
            .collect()
    };
    match next() % 10 {
        0 => Frame::Hello {
            version: (next() % 256) as u8,
        },
        1 => Frame::Query {
            lang: [Lang::Sql, Lang::Algebra, Lang::App][(next() % 3) as usize],
            explain: [
                ExplainOptions::Off,
                ExplainOptions::Plan,
                ExplainOptions::Analyze,
            ][(next() % 3) as usize],
            trace: next() % 2 == 0,
            text: format!("PENTITY [CAT = {}]", next() % 100),
        },
        2 => Frame::Schema {
            name: format!("R{}", next() % 10),
            attrs: (0..1 + next() % 4).map(|i| format!("A{i}")).collect(),
            key: vec![0],
        },
        3 => Frame::Rows {
            tuples: (0..next() % 5).map(|_| tuple(next())).collect(),
        },
        4 => Frame::Explain {
            plan: format!("Project\n  Scan S{}\n", next() % 5),
        },
        5 => Frame::Empty,
        6 => Frame::Error {
            code: (next() % 600) as u16,
            message: format!("err {}", next()),
        },
        7 => Frame::Summary {
            info: ResponseInfo {
                canonical: format!("canon {}", next()),
                fingerprint: next(),
                plan_hit: next() % 2 == 0,
                result_hit: next() % 2 == 0,
                index_routed: next() % 2 == 0,
                threads: (next() % 16) as usize,
                latency_micros: next() % 1_000_000,
            },
        },
        8 => Frame::StatsRequest,
        _ => Frame::Stats {
            text: format!(
                "# HELP polygen_queries_total Queries served.\npolygen_queries_total {}\n",
                next() % 1_000
            ),
        },
    }
}

/// Stand up a TCP server over a service built from `scenario`.
fn spawn_server(
    scenario: &polygen::catalog::scenario::Scenario,
    options: ServeOptions,
) -> (Arc<QueryService>, NetServer) {
    let service = Arc::new(QueryService::for_scenario(scenario, options));
    let server = NetServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    (service, server)
}

/// The in-process baseline for one script query: frames of an uncached
/// `execute`, in the deterministic (summary-less) byte view.
fn baseline_bytes(service: &QueryService, q: &polygen::workload::ClientQuery) -> Vec<u8> {
    deterministic_bytes(&response_frames(&service.execute(request_for(q))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Codec round trip: decode∘encode is the identity on every frame
    /// kind, and re-encoding the decoded frame is byte-identical.
    #[test]
    fn frames_round_trip_bit_exactly(seed in any::<u64>()) {
        let frame = arbitrary_frame(seed);
        let wire = frame.encode();
        let back = Frame::decode(&wire[4..]).expect("well-formed frame decodes");
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(back.encode(), wire);
    }

    /// Robustness: every strict prefix of a valid payload fails cleanly
    /// (no panic, no bogus success), as does appended garbage.
    #[test]
    fn truncated_and_padded_frames_error_cleanly(seed in any::<u64>()) {
        let frame = arbitrary_frame(seed);
        let payload = &frame.encode()[4..];
        for cut in 0..payload.len() {
            prop_assert!(
                Frame::decode(&payload[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
        let mut padded = payload.to_vec();
        padded.push(0);
        prop_assert!(matches!(Frame::decode(&padded), Err(CodecError::Corrupt(_))));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole differential: a concurrent TCP population against a
    /// cached service receives byte-identical deterministic frames to a
    /// sequential in-process replay against an uncached service.
    #[test]
    fn tcp_responses_are_byte_identical_to_in_process(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        clients in 2usize..4,
    ) {
        let scenario = workload::generate(&small_config(fed_seed, 3, 72));
        let (_service, server) = spawn_server(&scenario, ServeOptions::default());
        let uncached =
            QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
        let mix = ClientMix::default()
            .with_seed(mix_seed)
            .with_clients(clients)
            .with_queries_per_client(6)
            .with_weights(MixWeights::with_index_lookups(2, 1));
        let run = NetClientMix::new(mix).drive(server.addr()).expect("TCP run");
        prop_assert_eq!(run.queries, mix.total_queries());
        prop_assert_eq!(run.latency.count(), mix.total_queries());
        for (client, frames_per_query) in run.per_client.iter().enumerate() {
            let script = mix.script(client);
            prop_assert_eq!(frames_per_query.len(), script.len());
            for (i, (frames, q)) in frames_per_query.iter().zip(&script).enumerate() {
                prop_assert_eq!(
                    deterministic_bytes(frames),
                    baseline_bytes(&uncached, q),
                    "client {} query {} `{}`: wire bytes diverge from in-process",
                    client, i, q.text
                );
            }
        }
        server.shutdown();
    }

    /// The same guarantee across a mid-run source update, mirroring the
    /// serve suite's phase test: phase 1 over TCP, refresh one source on
    /// both services, phase 2 over TCP — each phase byte-identical to
    /// its in-process baseline.
    #[test]
    fn wire_stays_identical_across_source_update(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        delta in 1i64..1_000,
    ) {
        let scenario = workload::generate(&small_config(fed_seed, 3, 72));
        let (service, server) = spawn_server(&scenario, ServeOptions::default());
        let uncached =
            QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
        let mix = ClientMix::default()
            .with_seed(mix_seed)
            .with_clients(3)
            .with_queries_per_client(5);
        let net = NetClientMix::new(mix);
        let refreshed = refreshed_relations(&scenario, "S1", delta);

        let check_phase = |label: &str| {
            let run = net.drive(server.addr()).expect("TCP run");
            for (client, frames_per_query) in run.per_client.iter().enumerate() {
                for (i, (frames, q)) in
                    frames_per_query.iter().zip(&mix.script(client)).enumerate()
                {
                    prop_assert_eq!(
                        deterministic_bytes(frames),
                        baseline_bytes(&uncached, q),
                        "{}: client {} query {} diverged", label, client, i
                    );
                }
            }
        };

        check_phase("pre-update");
        service.update_source_relations("S1", refreshed.clone());
        uncached.update_source_relations("S1", refreshed);
        check_phase("post-update");
        // The update actually changed what the wire carries: cached
        // answers reading S1 were evicted, not replayed stale.
        prop_assert!(
            service.metrics().invalidated_results > 0,
            "update invalidated nothing"
        );
        server.shutdown();
    }
}

/// Error codes cross the wire unchanged: for a gallery of failing
/// queries (every layer band) the TCP response carries exactly the code
/// in-process `execute` reports — and the connection survives to serve
/// the next query.
#[test]
fn error_codes_are_identical_over_the_wire() {
    let scenario = workload::generate(&small_config(11, 3, 64));
    let (service, server) = spawn_server(&scenario, ServeOptions::default());
    let mut session = NetClient::connect(server.addr()).expect("connect");
    let bad = [
        Request::sql("SELECT"),                   // 100 sql-syntax
        Request::sql("SELECT NOPE FROM NOWHERE"), // lowering band
        Request::algebra("ZZZ [CAT = 0]"),        // 303 unknown relation
        Request::algebra("PENTITY [NOPE = 1]"),   // 304 unresolved attribute
        Request::app("SELECT X FROM Y"),          // 2xx app band
        Request::algebra("PENTITY"),              // 302 bare relation
    ];
    for request in bad {
        let in_process = service.execute(request.clone());
        let code = in_process
            .error_code()
            .unwrap_or_else(|| panic!("`{}` should fail in-process", request.text));
        let over_wire = session.execute(&request).expect("transport stays healthy");
        assert_eq!(
            over_wire.error_code(),
            Some(code),
            "`{}`: wire and in-process codes diverge",
            request.text
        );
        assert!(over_wire.payload_eq(&in_process));
    }
    // The same connection still answers real queries afterwards.
    let answer = session
        .execute(&Request::algebra("PENTITY [CATEGORY = \"C0\"]"))
        .expect("healthy connection");
    assert!(matches!(answer, Response::Rows { .. }));
    // Blank text and EXPLAIN cross the wire too.
    assert_eq!(
        session.execute(&Request::sql("   ")).expect("blank"),
        Response::Empty
    );
    let explained = session
        .execute(&Request::algebra("PENTITY [CATEGORY = \"C0\"]").with_explain(true))
        .expect("explain");
    let in_process =
        service.execute(Request::algebra("PENTITY [CATEGORY = \"C0\"]").with_explain(true));
    assert!(explained.payload_eq(&in_process), "plan text matches");
    server.shutdown();
}

/// An overload-shedding episode: with admission capacity 1 and no
/// queue, two connections race for the single slot until one of them
/// observes a structured `Overloaded` (503) frame — a real frame on a
/// live socket, never an io error or disconnect — and both connections
/// still serve afterwards. Which side loses the race is scheduling
/// luck, so either observation ends the episode.
#[test]
fn overload_sheds_structured_frames_not_connections() {
    let scenario = workload::generate(&small_config(7, 3, 2_000));
    let (service, server) = spawn_server(
        &scenario,
        ServeOptions::default()
            .without_caches()
            .with_admission(1, 0),
    );
    let heavy = workload::queries::paper_shaped_sql(0);
    let cheap = Request::algebra("PENTITY [CATEGORY = \"C0\"]");
    let shed_seen = AtomicBool::new(false);
    let addr = server.addr();

    // Observe one request/response exchange: assert a shed is exactly
    // the structured single-frame form, flag it, and hand back the
    // decoded response.
    let exchange = |session: &mut NetClient, request: &Request, who: &str| -> Response {
        let frames = session
            .execute_frames(request)
            .unwrap_or_else(|e| panic!("{who} transport stays healthy: {e}"));
        let response = response_from_frames(&frames).expect("well-formed stream");
        if response.is_overloaded() {
            assert!(matches!(
                frames.as_slice(),
                [Frame::Error { code: 503, .. }]
            ));
            shed_seen.store(true, Ordering::SeqCst);
        } else {
            assert!(
                matches!(response, Response::Rows { .. }),
                "unexpected {who} response: {response:?}"
            );
        }
        response
    };

    let mut victim = NetClient::connect(addr).expect("victim connects");
    std::thread::scope(|scope| {
        let exchange = &exchange;
        let heavy = &heavy;
        let shed_seen = &shed_seen;
        // The occupant: heavy queries monopolizing the slot. It may
        // itself lose the race and be the one shed — that observation
        // counts too (and ends its loop via the flag).
        scope.spawn(move || {
            let mut session = NetClient::connect(addr).expect("occupant connects");
            for _ in 0..300 {
                if shed_seen.load(Ordering::SeqCst) {
                    break;
                }
                exchange(&mut session, &Request::sql(heavy.clone()), "occupant");
            }
            // The occupant's own socket survived the episode.
            exchange(
                &mut session,
                &Request::algebra("PENTITY [CATEGORY = \"C1\"]"),
                "occupant",
            );
        });
        // The victim: cheap queries on one long-lived connection until
        // either side has observed a shed (bounded so it cannot hang).
        for _ in 0..2_000 {
            if shed_seen.load(Ordering::SeqCst) {
                break;
            }
            exchange(&mut victim, &cheap, "victim");
        }
        assert!(
            shed_seen.load(Ordering::SeqCst),
            "no connection ever observed a shed frame"
        );
    });

    // The episode over, the same victim socket still serves...
    let served = victim.execute(&cheap).expect("post-episode transport");
    assert!(matches!(served, Response::Rows { .. }));
    // ...and so does a fresh connection.
    let mut fresh = NetClient::connect(addr).expect("reconnect");
    let served = fresh.execute(&cheap).expect("fresh transport");
    assert!(matches!(served, Response::Rows { .. }));
    let metrics = service.metrics();
    assert!(metrics.shed() > 0, "metrics bucket the shed under 503");
    assert_eq!(
        metrics.shed(),
        metrics.rejected,
        "taxonomy agrees with counter"
    );
    server.shutdown();
}

/// A deterministic "upstream refresh" of one source: every value in its
/// single-source `VAL_*` column shifts by `delta` (same helper as the
/// serve suite, so both differential tests refresh identically).
fn refreshed_relations(
    scenario: &polygen::catalog::scenario::Scenario,
    source: &str,
    delta: i64,
) -> Vec<Relation> {
    let db = scenario
        .databases
        .iter()
        .find(|db| db.name == source)
        .unwrap_or_else(|| panic!("source {source} missing"));
    db.relations
        .iter()
        .map(|rel| {
            let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let val_col = attrs.iter().position(|a| a.starts_with("VAL_"));
            let mut b = Relation::build(rel.name(), &attrs);
            for row in rel.rows() {
                let mut row = row.clone();
                if let (Some(i), Some(Value::Int(v))) = (val_col, val_col.map(|i| &row[i])) {
                    row[i] = Value::int(v + delta);
                }
                b = b.vrow(row);
            }
            b.finish().expect("refreshed relation rebuilds")
        })
        .collect()
}

/// The reassembled wire answer is not just byte-identical — it is a
/// full `PolygenRelation` equal to the in-process answer, tags and
/// schema included (i.e. the wire carries enough to reconstruct the
/// polygen model's objects, not just render them).
#[test]
fn wire_answers_reconstruct_the_full_tagged_relation() {
    let scenario = polygen::catalog::scenario::build();
    let (service, server) = spawn_server(&scenario, ServeOptions::default());
    let mut session = NetClient::connect(server.addr()).expect("connect");
    let sql = "SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS \
               WHERE CEO = ANAME AND ONAME IN \
               (SELECT ONAME FROM PCAREER WHERE AID# IN \
               (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"MBA\"))";
    let over_wire = session.execute(&Request::sql(sql)).expect("wire answer");
    let in_process = service.execute(Request::sql(sql));
    let (a, b) = (over_wire.rows().unwrap(), in_process.rows().unwrap());
    assert_eq!(a.schema(), b.schema(), "schema (name, attrs, key) survives");
    assert_eq!(a.tuples(), b.tuples(), "tuples with all tags survive");
    // Schema reconstruction is deep: key designations round-trip.
    assert_eq!(a.schema().key(), b.schema().key());
    // And a second wire query hits the result cache server-side while
    // remaining byte-identical.
    let again = session.execute(&Request::sql(sql)).expect("warm answer");
    assert!(again.payload_eq(&over_wire));
    assert!(again.info().unwrap().result_hit, "server-side cache hit");
    server.shutdown();
}

/// The stats surface: `scrape_stats` fetches the live Prometheus
/// scrape over its own frame pair, and a traced wire query leaves a
/// complete decode → queue → parse/plan/execute → flush waterfall in
/// the slow-query log the scrape carries.
#[test]
fn stats_scrape_and_traced_waterfall_cross_the_wire() {
    let scenario = polygen::catalog::scenario::build();
    let (service, server) = spawn_server(&scenario, ServeOptions::default());
    let mut session = NetClient::connect(server.addr()).expect("connect");
    let sql = "SELECT ANAME FROM PALUMNUS WHERE DEGREE = \"MBA\"";
    let traced = session
        .execute(&Request::sql(sql).with_trace(true))
        .expect("traced query");
    let plain = service.execute(Request::sql(sql));
    assert!(traced.payload_eq(&plain), "tracing never changes answers");
    // The scrape crosses the wire: counters, histograms, slowlog. It is
    // answered by the poller thread, strictly after the traced
    // response's flush — so the waterfall below is already observed.
    let scrape = session.scrape_stats().expect("stats frame");
    assert!(scrape.contains("polygen_queries_total"), "{scrape}");
    assert!(
        scrape.contains("polygen_miss_latency_micros_bucket"),
        "{scrape}"
    );
    let slow = service.slow_queries();
    let waterfall = slow
        .iter()
        .find_map(|e| e.waterfall.as_deref())
        .expect("traced request was observed");
    for site in [
        "net/decode",
        "net/queue",
        "serve/parse",
        "serve/plan",
        "serve/execute",
        "net/flush",
    ] {
        assert!(waterfall.contains(site), "missing {site} in:\n{waterfall}");
    }
    // The same waterfall is visible to remote eyes via the scrape.
    assert!(scrape.contains("net/flush"), "{scrape}");
    // EXPLAIN ANALYZE crosses the wire as an Explain response with
    // per-node actuals beside the estimates.
    let analyzed = session
        .execute(&Request::sql(format!("EXPLAIN ANALYZE {sql}")))
        .expect("analyze");
    let Response::Explain { plan, .. } = &analyzed else {
        panic!("expected explain, got {analyzed:?}");
    };
    assert!(plan.contains("est=("), "{plan}");
    assert!(plan.contains("act=("), "{plan}");
    server.shutdown();
}

/// Concurrent TCP sessions with think time exercise the summary frame's
/// metrics fields sanely: positive latency, QPS, and a served count that
/// matches the metrics the service reports.
#[test]
fn summaries_and_metrics_agree_with_the_run() {
    let scenario = workload::generate(&small_config(3, 3, 72));
    let (service, server) = spawn_server(&scenario, ServeOptions::default());
    let mix = ClientMix::default()
        .with_clients(3)
        .with_queries_per_client(4)
        .with_think(Duration::from_millis(1));
    let run = NetClientMix::new(mix).drive(server.addr()).expect("run");
    assert_eq!(run.queries, 12);
    assert!(run.qps() > 0.0);
    assert!(run.latency.p99_micros() >= run.latency.p50_micros());
    for frames in run.per_client.iter().flatten() {
        let response = response_from_frames(frames).expect("stream");
        let info = response.info().expect("rows responses carry info");
        assert!(!info.canonical.is_empty());
        assert!(info.threads >= 1, "executed queries got worker threads");
    }
    assert_eq!(service.metrics().queries, 12);
    let addr = server.addr();
    server.shutdown();
    // After shutdown the port is closed: connecting errors rather than
    // producing a phantom session.
    assert!(NetClient::connect(addr).is_err());
}

/// Read one full response stream (frames up to and including the
/// terminal frame) from a raw socket — the hand-rolled client used by
/// the soak tests to control exactly when bytes are read.
fn read_response(stream: &mut TcpStream, reader: &mut FrameReader) -> Vec<Frame> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut frames = Vec::new();
    loop {
        assert!(Instant::now() < deadline, "response never completed");
        match reader.poll(stream).expect("stream decodes") {
            FramePoll::Payload(payload) => {
                let frame = Frame::decode(&payload).expect("frame decodes");
                let done = frame.is_terminal();
                frames.push(frame);
                if done {
                    return frames;
                }
            }
            FramePoll::Idle => continue,
            FramePoll::Closed => panic!("server hung up mid-response"),
        }
    }
}

/// Connect a raw socket and consume the greeting (a single non-terminal
/// `Hello` frame).
fn raw_session(addr: std::net::SocketAddr) -> (TcpStream, FrameReader) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    let mut reader = FrameReader::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "greeting never arrived");
        match reader.poll(&mut stream).expect("greeting decodes") {
            FramePoll::Payload(payload) => {
                let frame = Frame::decode(&payload).expect("frame decodes");
                assert!(matches!(frame, Frame::Hello { .. }));
                return (stream, reader);
            }
            FramePoll::Idle => continue,
            FramePoll::Closed => panic!("server hung up before greeting"),
        }
    }
}

/// Soak: ~1k concurrent idle connections are parked sessions, not
/// parked threads — the scripted traffic threading between them stays
/// byte-identical to in-process execution, the service's connection
/// gauge sees the whole population, and the server is still the same
/// O(workers)-thread process afterwards.
#[test]
fn soak_thousand_idle_connections_stay_serviceable() {
    let scenario = workload::generate(&small_config(21, 3, 72));
    let (service, server) = spawn_server(&scenario, ServeOptions::default());
    let uncached = QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
    let mix = ClientMix::default()
        .with_seed(21)
        .with_clients(2)
        .with_queries_per_client(4);
    let idle = 1_000;
    let run = NetClientMix::new(mix)
        .with_idle_connections(idle)
        .drive(server.addr())
        .expect("run with parked population");
    assert_eq!(run.queries, mix.total_queries());
    assert_eq!(run.idle, idle);
    // Every scripted answer, served while 1k sessions sat parked, is
    // still byte-identical to the in-process baseline.
    for (client, frames_per_query) in run.per_client.iter().enumerate() {
        for (frames, q) in frames_per_query.iter().zip(&mix.script(client)) {
            assert_eq!(
                deterministic_bytes(frames),
                baseline_bytes(&uncached, q),
                "client {client} diverged under the idle population"
            );
        }
    }
    // The connection gauge saw the full population (idle + scripted).
    let metrics = service.metrics();
    assert!(
        metrics.conns_peak_open >= (idle + mix.clients) as u64,
        "peak open {} never covered the parked population",
        metrics.conns_peak_open
    );
    assert_eq!(metrics.conns_backpressure_closed, 0);
    // The parked population dropped with the run; the poller reaps the
    // hangups promptly.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} sessions never reaped after the run",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// Soak: a deliberately slow reader (sleeps before draining each
/// response) interleaved with a fast client on the same server — both
/// streams stay byte-identical to the in-process baseline. The poller's
/// per-connection buffers must not let one session's pacing corrupt or
/// reorder another's.
#[test]
fn soak_slow_and_fast_interleaved_clients_get_identical_streams() {
    let scenario = workload::generate(&small_config(5, 3, 72));
    let (_service, server) = spawn_server(&scenario, ServeOptions::default());
    let uncached = QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
    let queries: Vec<polygen::workload::ClientQuery> = (0..6)
        .map(|c| polygen::workload::ClientQuery {
            lang: polygen::workload::QueryLang::Algebra,
            text: format!("PENTITY [CATEGORY = \"C{c}\"]"),
        })
        .collect();
    let baselines: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| baseline_bytes(&uncached, q))
        .collect();
    let addr = server.addr();
    std::thread::scope(|scope| {
        let fast = scope.spawn(|| {
            let mut session = NetClient::connect(addr).expect("fast connects");
            for _round in 0..3 {
                for (q, want) in queries.iter().zip(&baselines) {
                    let frames = session.execute_frames(&request_for(q)).expect("fast run");
                    assert_eq!(
                        &deterministic_bytes(&frames),
                        want,
                        "fast client diverged on `{}`",
                        q.text
                    );
                }
            }
        });
        let slow = scope.spawn(|| {
            let (mut stream, mut reader) = raw_session(addr);
            for _round in 0..2 {
                for (q, want) in queries.iter().zip(&baselines) {
                    stream
                        .write_all(&request_frame(&request_for(q)).encode())
                        .expect("slow sends");
                    // The slow part: the response sits in the server's
                    // outbound buffer (or kernel) while we look away.
                    std::thread::sleep(Duration::from_millis(15));
                    let frames = read_response(&mut stream, &mut reader);
                    assert_eq!(
                        &deterministic_bytes(&frames),
                        want,
                        "slow client diverged on `{}`",
                        q.text
                    );
                }
            }
        });
        fast.join().expect("fast client");
        slow.join().expect("slow client");
    });
    server.shutdown();
}

/// Soak (regression for the write-timeout bug): a peer that queries and
/// then stops reading entirely used to pin a connection thread in a
/// blocking `write_all`, hanging `NetServer::shutdown` forever. With
/// nonblocking buffered writes, shutdown must complete within its
/// bounded grace period.
#[test]
fn soak_stalled_reader_cannot_hang_shutdown() {
    let scenario = workload::generate(&small_config(7, 3, 2_000));
    let (_service, server) = spawn_server(&scenario, ServeOptions::default());
    let (mut stream, _reader) = raw_session(server.addr());
    // Pipeline a batch of row-heavy queries and never read a byte of
    // the responses.
    let frame = request_frame(&Request::algebra("PENTITY [CATEGORY = \"C0\"]")).encode();
    for _ in 0..8 {
        stream.write_all(&frame).expect("queries sent");
    }
    // Give the workers a moment to start producing responses into the
    // stalled connection's outbound path.
    std::thread::sleep(Duration::from_millis(200));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    assert!(
        done_rx.recv_timeout(Duration::from_secs(15)).is_ok(),
        "shutdown hung on a stalled reader"
    );
    drop(stream);
}

/// Soak: a peer that keeps issuing queries but never drains responses
/// trips the outbound backpressure cap and is closed — with the
/// backpressure close recorded in the service metrics — instead of
/// buffering server memory without bound or blocking anything.
#[test]
fn soak_backpressure_closes_a_peer_that_stops_reading() {
    let scenario = workload::generate(&small_config(7, 3, 2_000));
    let service = Arc::new(QueryService::for_scenario(
        &scenario,
        ServeOptions::default(),
    ));
    let server = polygen::net::NetServerOptions {
        outbound_cap: 64 * 1024,
        ..Default::default()
    };
    let server = polygen::net::NetServer::spawn_with(Arc::clone(&service), "127.0.0.1:0", server)
        .expect("bind");
    // Size one response, then pipeline enough of them to overflow both
    // the kernel's socket buffering and the 64 KiB cap.
    let request = Request::algebra("PENTITY [CATEGORY = \"C0\"]");
    let one: usize = response_frames(&service.execute(request.clone()))
        .iter()
        .map(|f| f.encode().len())
        .sum();
    assert!(one > 0);
    let needed = (4 * 1024 * 1024 / one).clamp(16, 4_000);
    let (mut stream, _reader) = raw_session(server.addr());
    let frame = request_frame(&request).encode();
    for _ in 0..needed {
        stream.write_all(&frame).expect("queries sent");
    }
    // Never read. The server must cut this connection off.
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.metrics().conns_backpressure_closed == 0 {
        assert!(
            Instant::now() < deadline,
            "stalled peer was never backpressure-closed \
             (one response = {one} bytes, {needed} pipelined)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the rest of the server is unaffected: a fresh connection
    // still gets served.
    let mut fresh = NetClient::connect(server.addr()).expect("fresh connects");
    let served = fresh.execute(&request).expect("healthy transport");
    assert!(matches!(served, Response::Rows { .. }));
    server.shutdown();
    drop(stream);
}
