//! Property-based tests for the query pipeline: parser round-trips,
//! SQL-vs-algebra agreement, and optimizer plan equivalence on random
//! synthetic federations.

mod common;

use common::fixtures::{generate_pqp, small_config};
use polygen::pqp::prelude::*;
use polygen::sql::prelude::*;
use polygen::workload::{self, WorkloadConfig};
use proptest::prelude::*;

/// Random SQL queries over the MIT polygen schema (shape-constrained so
/// every generated query is lowerable).
fn sql_query() -> impl Strategy<Value = String> {
    let cat = prop_oneof![
        Just("High Tech".to_string()),
        Just("Banking".to_string()),
        Just("Hotel".to_string()),
    ];
    let deg = prop_oneof![Just("MBA".to_string()), Just("MS".to_string())];
    prop_oneof![
        cat.clone()
            .prop_map(|c| format!("SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = \"{c}\"")),
        deg.clone()
            .prop_map(|d| format!("SELECT ANAME FROM PALUMNUS WHERE DEGREE = \"{d}\"")),
        (cat.clone(), deg.clone()).prop_map(|(c, d)| format!(
            "SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = \"{c}\" AND ONAME IN \
             (SELECT ONAME FROM PCAREER WHERE AID# IN \
             (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"{d}\"))"
        )),
        (cat, deg).prop_map(|(c, d)| format!(
            "SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = \"{c}\" OR INDUSTRY = \"{d}\""
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SQL parse → print → parse is a fixpoint.
    #[test]
    fn sql_roundtrip(sql in sql_query()) {
        let q1 = parse_query(&sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    /// Algebra print → parse is a fixpoint on generated expressions.
    #[test]
    fn algebra_roundtrip(seed in any::<u64>(), depth in 1usize..5) {
        let config = WorkloadConfig::default();
        let expr = workload::queries::random_expression(&config, seed, depth);
        let reparsed = parse_algebra(&expr.to_string()).unwrap();
        prop_assert_eq!(expr, reparsed);
    }

    /// Every generated SQL query executes, and its lowered algebra text
    /// executes to the same tagged answer.
    #[test]
    fn sql_and_algebra_agree_on_mit(sql in sql_query()) {
        let s = polygen::catalog::prelude::scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let out_sql = pqp.query(&sql).unwrap();
        let out_alg = pqp.query_algebra(&out_sql.compiled.expr.to_string()).unwrap();
        prop_assert!(out_sql.answer.tagged_set_eq(&out_alg.answer));
    }
}

proptest! {
    // End-to-end equivalence runs are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The optimizer never changes the tagged answer, across random
    /// federations and random query shapes.
    #[test]
    fn optimizer_preserves_answers(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
    ) {
        let config = small_config(fed_seed, sources, 60);
        let (scenario, naive) = generate_pqp(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        let optimizing = Pqp::for_scenario(&scenario).with_options(PqpOptions {
            optimize: true,
            ..PqpOptions::default()
        });
        let a = naive.query_algebra(&expr.to_string()).unwrap();
        let b = optimizing.query_algebra(&expr.to_string()).unwrap();
        prop_assert!(
            a.answer.tagged_set_eq(&b.answer),
            "optimizer changed the answer for {expr}"
        );
    }

    /// Merged multi-source schemes carry complete provenance: with full
    /// coverage, every entity's key cell is tagged with every source.
    #[test]
    fn full_coverage_tags_every_source(fed_seed in any::<u64>(), sources in 2usize..5) {
        let config = small_config(fed_seed, sources, 20).with_coverage(1.0);
        let (_, pqp) = generate_pqp(&config);
        let out = pqp.query_algebra("PENTITY [ENAME, CATEGORY]").unwrap();
        prop_assert_eq!(out.answer.len(), 20);
        for t in out.answer.tuples() {
            prop_assert_eq!(t[0].origin.len(), sources, "key knows all sources");
        }
    }
}
