//! Differential property tests for the secondary-index subsystem
//! (`polygen-index` + the pqp pushdown pass + snapshot maintenance).
//!
//! The guarantee under test: **indexes are invisible**. For random
//! federations, index declarations and predicates, a plan routed
//! through `IndexScan` probes produces answers *byte-identical* — data,
//! origin tags, intermediate tags, and tuple order — to the same query
//! with indexes disabled, across thread counts, and across a mid-run
//! source update in the serving layer (which rebuilds exactly the
//! updated source's indexes in the successor snapshot).
//!
//! CI runs this suite under both `POLYGEN_THREADS=1` and `=4`, so probe
//! emission feeds both the sequential and partition-parallel pipelines.

mod common;

use common::fixtures::small_config;
use polygen::core::PolygenRelation;
use polygen::flat::relation::Relation;
use polygen::flat::value::Value;
use polygen::index::{IndexCatalog, IndexSpec};
use polygen::pqp::prelude::*;
use polygen::serve::prelude::*;
use polygen::sql::prelude::parse_algebra;
use polygen::workload::queries::{point_lookup, range_scan};
use polygen::workload::{self, drive, replay, ClientMix, ClientQuery, MixWeights, QueryLang};
use proptest::prelude::*;
use std::sync::Arc;

/// The index set every test declares over the synthetic federation:
/// hash postings for detail point lookups, sorted postings for score
/// ranges.
fn detail_specs() -> Vec<IndexSpec> {
    vec![
        IndexSpec::hash("S0", "DETAIL", "DNAME"),
        IndexSpec::sorted("S0", "DETAIL", "DSCORE"),
    ]
}

/// Serve one script query, reporting whether the plan routed.
fn serve(service: &QueryService, q: &ClientQuery) -> (Arc<PolygenRelation>, bool) {
    let out = match q.lang {
        QueryLang::Sql => service.query(&q.text),
        QueryLang::Algebra => service.query_algebra(&q.text),
    }
    .unwrap_or_else(|e| panic!("query `{}` failed: {e}", q.text));
    (out.answer, out.index_routed)
}

/// A deterministic "upstream refresh" of S0: every DETAIL score shifts
/// by `delta` (mod the 0..100 space so range scans stay selective);
/// the entity relation is untouched.
fn refreshed_s0(scenario: &polygen::catalog::scenario::Scenario, delta: i64) -> Vec<Relation> {
    let db = scenario.database("S0").expect("S0 exists");
    db.relations
        .iter()
        .map(|rel| {
            if rel.name() != "DETAIL" {
                return rel.clone();
            }
            let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let mut b = Relation::build(rel.name(), &attrs).key(&["DID"]);
            for row in rel.rows() {
                let mut row = row.clone();
                if let Value::Int(v) = row[2] {
                    row[2] = Value::int((v + delta).rem_euclid(100));
                }
                b = b.vrow(row);
            }
            b.finish().expect("refreshed DETAIL rebuilds")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pqp-level: for random federations and predicates, routed plans
    /// return byte-identical relations (order included) to unindexed
    /// execution, sequentially and partition-parallel.
    #[test]
    fn indexed_plans_are_byte_identical_to_scans(
        fed_seed in any::<u64>(),
        entity in 0usize..120,
        lo in 0i64..90,
        width in 0i64..30,
    ) {
        let config = small_config(fed_seed, 3, 120);
        let scenario = workload::generate(&config);
        let exprs = [
            point_lookup(entity),
            point_lookup(9_999_999),                  // missing key
            range_scan(lo, lo + width),
            range_scan(lo + width, lo),               // empty range
            format!("PDETAIL [SCORE <> {lo}]"), // not sargable — stays a scan
            format!("PDETAIL [ENAME = \"{entity}\"]"), // probes a key that can't exist
        ];
        for threads in [1usize, 4] {
            let plain = Pqp::for_scenario(&scenario)
                .with_options(PqpOptions::default().with_threads(threads));
            let indexed = Pqp::for_scenario(&scenario)
                .with_options(PqpOptions::default().with_threads(threads));
            let catalog = Arc::new(
                IndexCatalog::build(&detail_specs(), indexed.registry(), indexed.dictionary())
                    .unwrap(),
            );
            let indexed = indexed.with_indexes(catalog);
            for expr in &exprs {
                let a = plain.query_algebra(expr).unwrap();
                let b = indexed.query_algebra(expr).unwrap();
                prop_assert_eq!(
                    a.answer.tuples(),
                    b.answer.tuples(),
                    "indexed diverged on `{}` (threads = {})",
                    expr,
                    threads
                );
            }
            // The sargable shapes really route (eligibility holds on
            // every generated federation).
            let point = indexed.compile(parse_algebra(&point_lookup(entity)).unwrap()).unwrap();
            prop_assert_eq!(point.physical.index_scans(), 1);
            let range = indexed.compile(parse_algebra(&range_scan(lo, lo + width)).unwrap()).unwrap();
            prop_assert_eq!(range.physical.index_scans(), 1);
            let ne = indexed
                .compile(parse_algebra(&format!("PDETAIL [SCORE <> {lo}]")).unwrap())
                .unwrap();
            prop_assert_eq!(ne.physical.index_scans(), 0, "`<>` must not route");
        }
    }

    /// Service-level: an indexed, cached, concurrent service returns
    /// byte-identical answers to an unindexed, uncached, sequential
    /// replay — including across a mid-run S0 refresh, which rebuilds
    /// S0's indexes in the successor snapshot.
    #[test]
    fn indexed_service_is_invisible_across_source_update(
        fed_seed in any::<u64>(),
        mix_seed in any::<u64>(),
        delta in 1i64..1_000,
    ) {
        let config = small_config(fed_seed, 3, 96);
        let scenario = workload::generate(&config);
        let indexed = QueryService::for_scenario(&scenario, ServeOptions::default())
            .with_index_specs(&detail_specs())
            .unwrap();
        let baseline =
            QueryService::for_scenario(&scenario, ServeOptions::default().without_caches());
        let mix = ClientMix::default()
            .with_seed(mix_seed)
            .with_clients(3)
            .with_queries_per_client(6)
            .with_entities(96)
            .with_weights(MixWeights::with_index_lookups(6, 4));
        let refreshed = refreshed_s0(&scenario, delta);

        let indexed_before = drive(&mix, |_, q| serve(&indexed, q));
        indexed.update_source_relations("S0", refreshed.clone());
        let indexed_after = drive(&mix, |_, q| serve(&indexed, q));

        let base_before = replay(&mix, |_, q| serve(&baseline, q).0);
        baseline.update_source_relations("S0", refreshed);
        let base_after = replay(&mix, |_, q| serve(&baseline, q).0);

        let mut routed = 0usize;
        for (phase, (got, want)) in [
            (indexed_before.per_client, base_before.per_client),
            (indexed_after.per_client, base_after.per_client),
        ]
        .into_iter()
        .enumerate()
        {
            for (c, (cc, ss)) in got.iter().zip(&want).enumerate() {
                for (i, ((a, r), b)) in cc.iter().zip(ss).enumerate() {
                    routed += usize::from(*r);
                    prop_assert_eq!(
                        &**a, &**b,
                        "phase {} client {} query {}: indexed service diverged",
                        phase, c, i
                    );
                }
            }
        }
        prop_assert!(routed > 0, "the mix never exercised an index route");
        prop_assert!(
            indexed.metrics().invalidated_results > 0,
            "the S0 bump invalidated nothing"
        );
    }
}

/// The snapshot pinned by an in-flight query keeps serving its own
/// index catalog even after an update swaps the head — and both
/// catalogs answer their own snapshot's data.
#[test]
fn pinned_snapshots_keep_their_catalogs() {
    let config = small_config(7, 3, 80);
    let scenario = workload::generate(&config);
    let service = QueryService::for_scenario(&scenario, ServeOptions::default())
        .with_index_specs(&detail_specs())
        .unwrap();
    let fed = service.federation();
    let pinned = fed.snapshot();
    service.update_source_relations("S0", refreshed_s0(&scenario, 13));
    let head = fed.snapshot();
    let pinned_idx = pinned.indexes().lookup("S0", "DETAIL", "DSCORE").unwrap();
    let head_idx = head.indexes().lookup("S0", "DETAIL", "DSCORE").unwrap();
    assert!(!Arc::ptr_eq(pinned_idx, head_idx), "S0 index was rebuilt");
    assert_eq!(
        pinned_idx.len(),
        head_idx.len(),
        "refresh shifts scores, not cardinality"
    );
    // Every query keeps routing after the update.
    let out = service.query_algebra(&range_scan(20, 40)).unwrap();
    assert!(out.index_routed);
}
