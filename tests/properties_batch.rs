//! Differential property tests for columnar batch execution with late
//! tag materialization.
//!
//! The guarantee under test: **the batch engine is invisible**. For
//! random federations, policies and thread counts, a plan whose eligible
//! pipelines run on `ColumnBatch` kernels must produce output
//! *byte-identical* — data, origin tags, intermediate tags, and tuple
//! order — to the row engine forced on the same plan, and tag-set-equal
//! to the eager reference interpreter; rejections must agree in error
//! kind. The same holds through index-routed probes (batch ordinals)
//! and across a mid-run source update in the serving layer.
//!
//! CI runs the whole test suite under `POLYGEN_BATCH=0` and `=1` (and
//! `POLYGEN_THREADS=1`/`=4`); this suite additionally forces both
//! engines explicitly so every leg diffs them against each other.

mod common;

use common::fixtures::{assert_batch_matches, conflicted_config, small_config};
use polygen::catalog::prelude::scenario;
use polygen::core::algebra::coalesce::ConflictPolicy;
use polygen::core::batch::ColumnBatch;
use polygen::core::stream::TupleStream;
use polygen::core::{Cell, PolygenRelation, SourceId};
use polygen::flat::value::Cmp;
use polygen::flat::{Schema, Value};
use polygen::index::IndexSpec;
use polygen::pqp::prelude::*;
use polygen::serve::prelude::*;
use polygen::sql::prelude::PAPER_EXPRESSION;
use polygen::workload::queries::{point_lookup, range_scan};
use polygen::workload::{self, replay, ClientMix, MixWeights, QueryLang};
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// A three-column tagged relation with deliberately mixed value types:
/// `K` drawn from a tiny space (Int, occasionally Float or nil, so
/// typed columns fall back to the mixed representation), `V` always
/// Int, `NAME` a short string. Every cell originates from `source`.
fn mixed_relation(name: &str, source: u16, rows: &[(Option<i64>, i64, bool)]) -> PolygenRelation {
    let schema = Arc::new(Schema::new(name, &["K", "V", "NAME"]).unwrap());
    let tuples = rows
        .iter()
        .map(|(key, value, float_key)| {
            let k = match key {
                None => Value::Null,
                Some(k) if *float_key => Value::float(*k as f64),
                Some(k) => Value::int(*k),
            };
            vec![
                Cell::retrieved(k, SourceId(source)),
                Cell::retrieved(Value::int(*value), SourceId(source)),
                Cell::retrieved(Value::str(format!("N{}", value % 4)), SourceId(source)),
            ]
        })
        .collect();
    PolygenRelation::from_tuples(schema, tuples).unwrap()
}

type MixedRows = Vec<(Option<i64>, i64, bool)>;

fn mixed_rows() -> impl Strategy<Value = MixedRows> {
    proptest::collection::vec(
        (
            prop_oneof![
                (0i64..6).prop_map(Some),
                (0i64..6).prop_map(Some),
                (0i64..6).prop_map(Some),
                Just(None),
            ],
            0i64..100,
            prop_oneof![
                Just(false),
                Just(false),
                Just(false),
                Just(false),
                Just(true)
            ],
        ),
        0..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random expressions over random federations, across thread counts:
    /// batch = row (byte-identical) = eager (tag-set-equal), or all
    /// three reject with the same error kind.
    #[test]
    fn batch_matches_row_and_eager(
        fed_seed in any::<u64>(),
        query_seed in any::<u64>(),
        depth in 1usize..4,
        sources in 2usize..5,
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        // ≥ 64 entities so parallel legs chunk batches for real.
        let config = small_config(fed_seed, sources, 64);
        let sc = workload::generate(&config);
        let expr = workload::queries::random_expression(&config, query_seed, depth);
        assert_batch_matches(&sc, &expr.to_string(), ConflictPolicy::Strict, THREAD_COUNTS[tidx]);
    }

    /// Conflicting federations under every policy: batch pipelines feed
    /// the merge exactly what the row engine would, and `Strict`
    /// rejections agree in kind across all three engines.
    #[test]
    fn batch_agrees_under_conflict_policies(
        fed_seed in any::<u64>(),
        sources in 2usize..5,
        policy_idx in 0usize..3,
        tidx in 0usize..THREAD_COUNTS.len(),
    ) {
        let sc = workload::generate(&conflicted_config(fed_seed, sources, 64));
        let policy = [
            ConflictPolicy::Strict,
            ConflictPolicy::PreferLeft,
            ConflictPolicy::PreferRight,
        ][policy_idx];
        let threads = THREAD_COUNTS[tidx];
        assert_batch_matches(&sc, "PENTITY [ENAME, CATEGORY]", policy, threads);
        assert_batch_matches(&sc, "PENTITY [CATEGORY = \"C0\"]", policy, threads);
    }

    /// Kernel-level: a select→restrict→project chain on `ColumnBatch`
    /// (late tags applied at emission, duplicates collapsed once) equals
    /// the `TupleStream` walk (tags applied per stage) byte-for-byte on
    /// arbitrary operands — nils, duplicate keys and Int/Float-mixed
    /// columns included.
    #[test]
    fn batch_kernels_match_stream_kernels(
        rows in mixed_rows(),
        threshold in 0i64..100,
        cmp_idx in 0usize..4,
    ) {
        let rel = mixed_relation("M", 0, &rows);
        let cmp = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Ge][cmp_idx];

        let mut stream = TupleStream::from_relation(rel.clone());
        stream.select("V", cmp, &Value::int(threshold)).unwrap();
        stream.restrict("K", Cmp::Le, "V").unwrap();
        stream.project(&["NAME", "K"]).unwrap();
        let row_out = stream.into_relation();

        let mut batch = ColumnBatch::from_relation(rel);
        batch.select("V", cmp, &Value::int(threshold)).unwrap();
        batch.restrict("K", Cmp::Le, "V").unwrap();
        batch.project(&["NAME", "K"]).unwrap();
        let mut batch_out = batch.into_relation();
        batch_out.merge_duplicates();

        prop_assert_eq!(row_out.schema().attrs(), batch_out.schema().attrs());
        prop_assert_eq!(row_out.tuples(), batch_out.tuples(), "order included");
    }
}

/// The paper's own pipeline: batch = row = eager across thread counts.
#[test]
fn paper_query_is_identical_under_batch_execution() {
    let s = scenario::build();
    for threads in THREAD_COUNTS {
        assert_batch_matches(&s, PAPER_EXPRESSION, ConflictPolicy::Strict, threads);
    }
}

/// Shapes around the batch path's edges: shared leaves (both engines
/// must fall back identically), set operations, θ fallback, lone
/// projects, and empty results.
#[test]
fn edge_shapes_agree_under_batch_execution() {
    let s = scenario::build();
    for expr in [
        "(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])",
        "PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])",
        "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
        "PCAREER [AID# < AID#] PCAREER",
        "PCAREER [AID# = ONAME] [AID#, POSITION]",
        "PALUMNUS [DEGREE = \"NOPE\"] [ANAME]",
        "PALUMNUS [ANAME]",
    ] {
        for threads in THREAD_COUNTS {
            assert_batch_matches(&s, expr, ConflictPolicy::Strict, threads);
        }
    }
}

/// Index-routed plans under the batch engine: the probe hands the
/// pipeline a gathered batch (ordinals, not a relation), and the answer
/// stays byte-identical to the row engine over the same routed plan.
#[test]
fn indexed_probes_feed_batches_byte_identically() {
    let config = small_config(0xbead, 3, 120);
    let scenario = workload::generate(&config);
    let specs = [
        IndexSpec::hash("S0", "DETAIL", "DNAME"),
        IndexSpec::sorted("S0", "DETAIL", "DSCORE"),
    ];
    for threads in THREAD_COUNTS {
        let mk = |batch: bool| {
            let pqp = Pqp::for_scenario(&scenario).with_options(
                PqpOptions::default()
                    .with_threads(threads)
                    .with_batch(batch),
            );
            let catalog =
                Arc::new(IndexCatalog::build(&specs, pqp.registry(), pqp.dictionary()).unwrap());
            pqp.with_indexes(catalog)
        };
        let (row, batch) = (mk(false), mk(true));
        for expr in [
            point_lookup(17),
            point_lookup(9_999_999),
            range_scan(20, 60),
            range_scan(60, 20),
            "PDETAIL [SCORE >= 30] [ENAME, SCORE]".to_string(),
        ] {
            let a = row.query_algebra(&expr).unwrap();
            let b = batch.query_algebra(&expr).unwrap();
            assert!(
                b.compiled.physical.index_scans() > 0 || expr.contains(">= 30"),
                "probe shapes must route: `{expr}`"
            );
            assert_eq!(
                a.answer.tuples(),
                b.answer.tuples(),
                "batch diverged on routed `{expr}` (threads = {threads})"
            );
        }
    }
}

/// Service-level: a batch-engine service returns byte-identical answers
/// to a row-engine baseline across a mid-run source update (which swaps
/// snapshots and rebuilds the updated source's indexes under it).
#[test]
fn batch_service_is_invisible_across_source_update() {
    let config = small_config(0xcafe, 3, 96);
    let scenario = workload::generate(&config);
    let specs = [
        IndexSpec::hash("S0", "DETAIL", "DNAME"),
        IndexSpec::sorted("S0", "DETAIL", "DSCORE"),
    ];
    let batch = QueryService::for_scenario(
        &scenario,
        ServeOptions::default().with_pqp(PqpOptions::default().with_batch(true)),
    )
    .with_index_specs(&specs)
    .unwrap();
    let row = QueryService::for_scenario(
        &scenario,
        ServeOptions::default()
            .without_caches()
            .with_pqp(PqpOptions::default().with_batch(false)),
    )
    .with_index_specs(&specs)
    .unwrap();
    let mix = ClientMix::default()
        .with_seed(0xfeed)
        .with_clients(3)
        .with_queries_per_client(6)
        .with_entities(96)
        .with_weights(MixWeights::with_index_lookups(6, 4));
    // A deterministic upstream refresh: shift every DETAIL score.
    let refreshed: Vec<_> = scenario
        .database("S0")
        .expect("S0 exists")
        .relations
        .iter()
        .map(|rel| {
            if rel.name() != "DETAIL" {
                return rel.clone();
            }
            let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let mut b = polygen::flat::relation::Relation::build(rel.name(), &attrs).key(&["DID"]);
            for row in rel.rows() {
                let mut row = row.clone();
                if let Value::Int(v) = row[2] {
                    row[2] = Value::int((v + 37).rem_euclid(100));
                }
                b = b.vrow(row);
            }
            b.finish().expect("refreshed DETAIL rebuilds")
        })
        .collect();
    let serve = |service: &QueryService, q: &polygen::workload::ClientQuery| {
        match q.lang {
            QueryLang::Sql => service.query(&q.text),
            QueryLang::Algebra => service.query_algebra(&q.text),
        }
        .unwrap_or_else(|e| panic!("query `{}` failed: {e}", q.text))
        .answer
    };
    let batch_before = replay(&mix, |_, q| serve(&batch, q));
    batch.update_source_relations("S0", refreshed.clone());
    let batch_after = replay(&mix, |_, q| serve(&batch, q));

    let row_before = replay(&mix, |_, q| serve(&row, q));
    row.update_source_relations("S0", refreshed);
    let row_after = replay(&mix, |_, q| serve(&row, q));

    for (phase, (got, want)) in [
        (batch_before.per_client, row_before.per_client),
        (batch_after.per_client, row_after.per_client),
    ]
    .into_iter()
    .enumerate()
    {
        for (c, (cc, ss)) in got.iter().zip(&want).enumerate() {
            for (i, (a, b)) in cc.iter().zip(ss).enumerate() {
                assert_eq!(
                    &**a, &**b,
                    "phase {phase} client {c} query {i}: batch service diverged"
                );
            }
        }
    }
}
