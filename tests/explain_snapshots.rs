//! Golden EXPLAIN snapshots: `render_plan` output for every physical
//! operator kind (Scan, fused pipeline stages, HashJoin, ThetaJoin,
//! HashMerge, AntiJoin, Union, Difference, Intersect, Product), with and
//! without partition annotations.
//!
//! These are exact-string comparisons on purpose: the plan printer is the
//! engine's public diagnostic surface, and a silent format drift should
//! be caught in review (by editing the expected text here) rather than by
//! users' tooling. If you change `render_plan`, update the snapshots and
//! say so in the PR.

mod common;

use polygen::catalog::prelude::scenario;
use polygen::index::{IndexCatalog, IndexSpec};
use polygen::lqp::scenario_registry;
use polygen::pqp::prelude::*;
use polygen::sql::prelude::{parse_algebra, PAPER_EXPRESSION};
use std::sync::Arc;

/// Lower `expr` over the MIT scenario and render the physical plan.
fn plan_text(expr: &str, fuse: bool, partitions: usize) -> String {
    let s = scenario::build();
    let registry = scenario_registry(&s);
    let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
    let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
    let plan = lower_plan(
        &iom,
        &registry,
        &s.dictionary,
        LowerOptions { fuse, partitions },
    )
    .unwrap();
    render_plan(&plan)
}

/// The same with secondary indexes declared: lower, run the pushdown
/// pass, render — and also render the physical cost estimate, the
/// lines EXPLAIN justifies the route with.
fn indexed_plan_and_cost(expr: &str, specs: &[IndexSpec]) -> (String, String) {
    let s = scenario::build();
    let registry = scenario_registry(&s);
    let catalog = IndexCatalog::build(specs, &registry, &s.dictionary).unwrap();
    let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
    let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
    let plan = lower_plan(&iom, &registry, &s.dictionary, LowerOptions::default()).unwrap();
    let routed = route_index_scans(&plan, &catalog);
    let cost = estimate_physical(&routed, &registry).to_string();
    (render_plan(&routed), cost)
}

/// EXPLAIN ANALYZE over the MIT scenario, serial, with the measured
/// microsecond readings masked to `_`. Row counts, node order and the
/// cost model's `est=` column are deterministic and stay verbatim; only
/// the wall-clock side of `act=` varies run to run.
fn analyzed_text(expr: &str, specs: &[IndexSpec]) -> String {
    let s = scenario::build();
    let mut pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
        threads: 1,
        ..PqpOptions::default()
    });
    if !specs.is_empty() {
        let registry = scenario_registry(&s);
        let catalog = IndexCatalog::build(specs, &registry, &s.dictionary).unwrap();
        pqp = pqp.with_indexes(Arc::new(catalog));
    }
    let compiled = pqp.compile(parse_algebra(expr).unwrap()).unwrap();
    mask_act_micros(&pqp.explain_analyze_compiled(&compiled).unwrap())
}

/// Replace the digit run right after `marker` with `_`, if any.
fn mask_after(line: &str, marker: &str) -> String {
    let Some(pos) = line.find(marker) else {
        return line.to_string();
    };
    let tail = pos + marker.len();
    let end = line[tail..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |d| tail + d);
    if end == tail {
        return line.to_string();
    }
    format!("{}_{}", &line[..tail], &line[end..])
}

/// Mask the measured (nondeterministic) microsecond numbers in an
/// EXPLAIN ANALYZE rendering: `act=(NN µs` → `act=(_ µs` and
/// `executed in NN µs` → `executed in _ µs`. Estimates stay put.
fn mask_act_micros(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        out.push_str(&mask_after(&mask_after(line, "act=("), "executed in "));
        out.push('\n');
    }
    out
}

#[track_caller]
fn assert_snapshot(actual: &str, expected: &str) {
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "\n== plan printer drifted ==\nactual:\n{actual}\nexpected:\n{expected}"
    );
}

/// Scan (with and without pushed-down selects), HashJoin, HashMerge and a
/// fused pipeline — the paper's own plan, serial.
#[test]
fn paper_plan_fused_serial() {
    assert_snapshot(
        &plan_text(PAPER_EXPRESSION, true, 1),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)
#1  Scan[AD] CAREER  → R(2)
#2  HashJoin[R(1).AID# = R(2).AID#, coalesce → AID#] (build R(2), probe R(1))  → R(3)
#3  Scan[AD] BUSINESS  → R(4)
#4  Scan[PD] CORPORATION  → R(5)
#5  Scan[CD] FIRM  → R(6)
#6  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(4), R(5), R(6)  → R(7)
#7  HashJoin[R(3).BNAME = R(7).ONAME, coalesce → ONAME] (build R(7), probe R(3))  → R(8)
#8  Pipeline over R(8) → Restrict[CEO = ANAME]@R(9) → Project[ONAME, CEO]@R(10) (fused ×2)  → R(10) ◀ answer",
    );
}

/// The same plan lowered for 4 partitions: hash operators annotate their
/// key, pipelines annotate chunking, scans stay serial.
#[test]
fn paper_plan_fused_partitioned_x4() {
    assert_snapshot(
        &plan_text(PAPER_EXPRESSION, true, 4),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)
#1  Scan[AD] CAREER  → R(2)
#2  HashJoin[R(1).AID# = R(2).AID#, coalesce → AID#] (build R(2), probe R(1)) [hash(AID#) x4]  → R(3)
#3  Scan[AD] BUSINESS  → R(4)
#4  Scan[PD] CORPORATION  → R(5)
#5  Scan[CD] FIRM  → R(6)
#6  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(4), R(5), R(6) [hash(ONAME) x4]  → R(7)
#7  HashJoin[R(3).BNAME = R(7).ONAME, coalesce → ONAME] (build R(7), probe R(3)) [hash(ONAME) x4]  → R(8)
#8  Pipeline over R(8) → Restrict[CEO = ANAME]@R(9) → Project[ONAME, CEO]@R(10) (fused ×2) [chunked x4]  → R(10) ◀ answer",
    );
}

/// Retention-mode lowering (no fusion): every Select/Restrict/Project row
/// keeps its own single-stage pipeline node.
#[test]
fn paper_plan_unfused_serial() {
    assert_snapshot(
        &plan_text(PAPER_EXPRESSION, false, 1),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)
#1  Scan[AD] CAREER  → R(2)
#2  HashJoin[R(1).AID# = R(2).AID#, coalesce → AID#] (build R(2), probe R(1))  → R(3)
#3  Scan[AD] BUSINESS  → R(4)
#4  Scan[PD] CORPORATION  → R(5)
#5  Scan[CD] FIRM  → R(6)
#6  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(4), R(5), R(6)  → R(7)
#7  HashJoin[R(3).BNAME = R(7).ONAME, coalesce → ONAME] (build R(7), probe R(3))  → R(8)
#8  Pipeline over R(8) → Restrict[CEO = ANAME]@R(9)  → R(9)
#9  Pipeline over R(9) → Project[ONAME, CEO]@R(10)  → R(10) ◀ answer",
    );
}

/// A non-equality θ lowers to the nested-loop join — which has no
/// partitionable key, so even a 4-partition lowering leaves it serial
/// (no annotation).
#[test]
fn theta_join_stays_serial_under_partitioning() {
    assert_snapshot(
        &plan_text("PCAREER [AID# < AID#] PCAREER", true, 4),
        "\
#0  Scan[AD] CAREER  → R(1)
#1  Scan[AD] CAREER  → R(2)
#2  NestedLoopJoin[R(2).AID# < R(1).AID#]  → R(3) ◀ answer",
    );
}

/// AntiJoin feeding a lone-Project pipeline, over a merge.
#[test]
fn antijoin_plan_serial() {
    assert_snapshot(
        &plan_text(
            "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
            true,
            1,
        ),
        "\
#0  Scan[AD] BUSINESS  → R(1)
#1  Scan[PD] CORPORATION  → R(2)
#2  Scan[CD] FIRM  → R(3)
#3  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(1), R(2), R(3)  → R(4)
#4  Scan[CD] FINANCE  → R(5)
#5  AntiJoin[R(4).ONAME = R(5).FNAME]  → R(6)
#6  Pipeline over R(6) → Project[ONAME]@R(7)  → R(7) ◀ answer",
    );
}

/// Union and Difference.
#[test]
fn set_ops_plan_serial() {
    assert_snapshot(
        &plan_text(
            "((PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])) \
             MINUS (PALUMNUS [DEGREE = \"MBA\"])",
            true,
            1,
        ),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)
#1  Scan[AD] ALUMNUS[DEG = MS]  → R(2)
#2  Union[R(1), R(2)]  → R(3)
#3  Scan[AD] ALUMNUS[DEG = MBA]  → R(4)
#4  Difference[R(3), R(4)]  → R(5) ◀ answer",
    );
}

/// Index routing, chosen: the paper plan's MBA select rides the hash
/// index; everything else (scans, joins, merge, fused pipeline) is
/// untouched.
#[test]
fn paper_plan_with_deg_index_routes_the_select() {
    let (plan, _) =
        indexed_plan_and_cost(PAPER_EXPRESSION, &[IndexSpec::hash("AD", "ALUMNUS", "DEG")]);
    assert_snapshot(
        &plan,
        "\
#0  IndexScan[AD] ALUMNUS [ixscan AD.DEG = MBA] (hash)  → R(1)
#1  Scan[AD] CAREER  → R(2)
#2  HashJoin[R(1).AID# = R(2).AID#, coalesce → AID#] (build R(2), probe R(1))  → R(3)
#3  Scan[AD] BUSINESS  → R(4)
#4  Scan[PD] CORPORATION  → R(5)
#5  Scan[CD] FIRM  → R(6)
#6  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(4), R(5), R(6)  → R(7)
#7  HashJoin[R(3).BNAME = R(7).ONAME, coalesce → ONAME] (build R(7), probe R(3))  → R(8)
#8  Pipeline over R(8) → Restrict[CEO = ANAME]@R(9) → Project[ONAME, CEO]@R(10) (fused ×2)  → R(10) ◀ answer",
    );
}

/// Index routing, rejected: `<>` is not sargable and a range θ cannot
/// ride hash postings — both keep the full scan.
#[test]
fn ineligible_predicates_keep_scanning() {
    let (ne, _) = indexed_plan_and_cost(
        "PALUMNUS [DEGREE <> \"MBA\"]",
        &[IndexSpec::hash("AD", "ALUMNUS", "DEG")],
    );
    assert_snapshot(
        &ne,
        "\
#0  Scan[AD] ALUMNUS[DEG <> MBA]  → R(1) ◀ answer",
    );
    let (range, _) = indexed_plan_and_cost(
        "PALUMNUS [DEGREE > \"MBA\"]",
        &[IndexSpec::hash("AD", "ALUMNUS", "DEG")],
    );
    assert_snapshot(
        &range,
        "\
#0  Scan[AD] ALUMNUS[DEG > MBA]  → R(1) ◀ answer",
    );
}

/// Index routing with a residual predicate: the between's two conjuncts
/// fold into one sorted-range probe, and the second conjunct stays in
/// the pipeline re-checking itself over the narrowed input.
#[test]
fn between_folds_into_a_range_probe_with_residual() {
    let (plan, _) = indexed_plan_and_cost(
        "PALUMNUS [AID# >= \"200\"] [AID# <= \"600\"]",
        &[IndexSpec::sorted("AD", "ALUMNUS", "AID#")],
    );
    assert_snapshot(
        &plan,
        "\
#0  IndexScan[AD] ALUMNUS [ixscan 200 <= AD.AID# <= 600] (sorted)  → R(1)
#1  Pipeline over R(1) → Select[AID# <= 600]@R(2) [batch]  → R(2) ◀ answer",
    );
}

/// Columnar annotation, chosen: a stage chain directly over a
/// lone-consumer Scan leaf is batch-eligible (the restrict itself folds
/// into the scan descriptor, the trailing Project runs columnar), and
/// EXPLAIN says so with `[batch]`. The marker is plan-shape only —
/// `POLYGEN_BATCH=0` still runs such a plan on the row engine.
#[test]
fn eligible_leaf_pipeline_announces_batch() {
    assert_snapshot(
        &plan_text("PCAREER [AID# = ONAME] [AID#, POSITION]", true, 1),
        "\
#0  Scan[AD] CAREER[AID# = BNAME]  → R(1)
#1  Pipeline over R(1) → Project[AID#, POSITION]@R(2) [batch]  → R(2) ◀ answer",
    );
}

/// Columnar annotation, rejected: the paper plan's final pipeline reads
/// a HashJoin (an interior node, already `Arc`-shared streams), so it
/// stays on the row engine and renders without the `[batch]` marker —
/// see `paper_plan_fused_serial` above. The same holds for every
/// unfused (retention-mode) stage chain.
#[test]
fn interior_pipeline_stays_on_the_row_engine() {
    let shown = plan_text(PAPER_EXPRESSION, true, 1);
    assert!(
        !shown.contains("[batch]"),
        "interior pipelines must not claim the columnar path:\n{shown}"
    );
}

/// The cost lines EXPLAIN justifies a route with: the probe is charged
/// probe + residual emission (no LQP shipping), strictly below the
/// full-scan estimate of the same query unindexed.
#[test]
fn index_cost_lines_justify_the_route() {
    let spec = [IndexSpec::hash("AD", "ALUMNUS", "DEG")];
    let (_, routed_cost) = indexed_plan_and_cost("PALUMNUS [DEGREE = \"MBA\"]", &spec);
    assert_snapshot(
        &routed_cost,
        "\
estimated cost: 2 µs, 0 tuples shipped from LQPs
  R(1): 2 µs, ~0 rows",
    );
    let (_, scan_cost) = indexed_plan_and_cost("PALUMNUS [DEGREE = \"MBA\"]", &[]);
    let total = |s: &str| -> f64 {
        s.split("estimated cost: ")
            .nth(1)
            .unwrap()
            .split(" µs")
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(
        total(&routed_cost) < total(&scan_cost),
        "the probe must cost below the scan: {routed_cost} vs {scan_cost}"
    );
}

/// EXPLAIN ANALYZE, the paper plan: every line carries the cost model's
/// `est=` next to the measured `act=`, and the actual row counts are the
/// materialized `R(n)` sizes from the golden tables (5 MBA alumni, 13
/// career rows, 9 merged organizations, the 1-row answer).
#[test]
fn analyzed_paper_plan_reports_est_and_act() {
    assert_snapshot(
        &analyzed_text(PAPER_EXPRESSION, &[]),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)  est=(505 µs, ~1 rows)  act=(_ µs, 5 rows)
#1  Scan[AD] CAREER  → R(2)  est=(545 µs, ~9 rows)  act=(_ µs, 9 rows)
#2  HashJoin[R(1).AID# = R(2).AID#, coalesce → AID#] (build R(2), probe R(1))  → R(3)  est=(10 µs, ~9 rows)  act=(_ µs, 6 rows)
#3  Scan[AD] BUSINESS  → R(4)  est=(545 µs, ~9 rows)  act=(_ µs, 9 rows)
#4  Scan[PD] CORPORATION  → R(5)  est=(535 µs, ~7 rows)  act=(_ µs, 7 rows)
#5  Scan[CD] FIRM  → R(6)  est=(550 µs, ~10 rows)  act=(_ µs, 10 rows)
#6  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(4), R(5), R(6)  → R(7)  est=(26 µs, ~26 rows)  act=(_ µs, 12 rows)
#7  HashJoin[R(3).BNAME = R(7).ONAME, coalesce → ONAME] (build R(7), probe R(3))  → R(8)  est=(35 µs, ~26 rows)  act=(_ µs, 6 rows)
#8  Pipeline over R(8) → Restrict[CEO = ANAME]@R(9) → Project[ONAME, CEO]@R(10) (fused ×2)  → R(10) ◀ answer  est=(26 µs, ~8 rows)  act=(_ µs, 3 rows)
(estimated 2777 µs total, executed in _ µs)",
    );
}

/// EXPLAIN ANALYZE over the nested-loop θ-join.
#[test]
fn analyzed_theta_join() {
    assert_snapshot(
        &analyzed_text("PCAREER [AID# < AID#] PCAREER", &[]),
        "\
#0  Scan[AD] CAREER  → R(1)  est=(545 µs, ~9 rows)  act=(_ µs, 9 rows)
#1  Scan[AD] CAREER  → R(2)  est=(545 µs, ~9 rows)  act=(_ µs, 9 rows)
#2  NestedLoopJoin[R(2).AID# < R(1).AID#]  → R(3) ◀ answer  est=(81 µs, ~9 rows)  act=(_ µs, 35 rows)
(estimated 1171 µs total, executed in _ µs)",
    );
}

/// EXPLAIN ANALYZE over AntiJoin + merge + lone-Project pipeline.
#[test]
fn analyzed_antijoin() {
    assert_snapshot(
        &analyzed_text(
            "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
            &[],
        ),
        "\
#0  Scan[AD] BUSINESS  → R(1)  est=(545 µs, ~9 rows)  act=(_ µs, 9 rows)
#1  Scan[PD] CORPORATION  → R(2)  est=(535 µs, ~7 rows)  act=(_ µs, 7 rows)
#2  Scan[CD] FIRM  → R(3)  est=(550 µs, ~10 rows)  act=(_ µs, 10 rows)
#3  HashMerge[PORGANIZATION on ONAME, 3-way single pass] over R(1), R(2), R(3)  → R(4)  est=(26 µs, ~26 rows)  act=(_ µs, 12 rows)
#4  Scan[CD] FINANCE  → R(5)  est=(550 µs, ~10 rows)  act=(_ µs, 10 rows)
#5  AntiJoin[R(4).ONAME = R(5).FNAME]  → R(6)  est=(36 µs, ~13 rows)  act=(_ µs, 2 rows)
#6  Pipeline over R(6) → Project[ONAME]@R(7)  → R(7) ◀ answer  est=(13 µs, ~13 rows)  act=(_ µs, 2 rows)
(estimated 2255 µs total, executed in _ µs)",
    );
}

/// EXPLAIN ANALYZE over Union and Difference.
#[test]
fn analyzed_set_ops() {
    assert_snapshot(
        &analyzed_text(
            "((PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])) \
             MINUS (PALUMNUS [DEGREE = \"MBA\"])",
            &[],
        ),
        "\
#0  Scan[AD] ALUMNUS[DEG = MBA]  → R(1)  est=(505 µs, ~1 rows)  act=(_ µs, 5 rows)
#1  Scan[AD] ALUMNUS[DEG = MS]  → R(2)  est=(505 µs, ~1 rows)  act=(_ µs, 1 rows)
#2  Union[R(1), R(2)]  → R(3)  est=(2 µs, ~2 rows)  act=(_ µs, 6 rows)
#3  Scan[AD] ALUMNUS[DEG = MBA]  → R(4)  est=(505 µs, ~1 rows)  act=(_ µs, 5 rows)
#4  Difference[R(3), R(4)]  → R(5) ◀ answer  est=(2 µs, ~1 rows)  act=(_ µs, 1 rows)
(estimated 1519 µs total, executed in _ µs)",
    );
}

/// EXPLAIN ANALYZE over Intersect and Product.
#[test]
fn analyzed_intersect_and_product() {
    assert_snapshot(
        &analyzed_text("(PALUMNUS INTERSECT PALUMNUS) TIMES PFINANCE", &[]),
        "\
#0  Scan[AD] ALUMNUS  → R(1)  est=(540 µs, ~8 rows)  act=(_ µs, 8 rows)
#1  Scan[AD] ALUMNUS  → R(2)  est=(540 µs, ~8 rows)  act=(_ µs, 8 rows)
#2  Intersect[R(2), R(1)]  → R(3)  est=(16 µs, ~8 rows)  act=(_ µs, 8 rows)
#3  Scan[CD] FINANCE  → R(4)  est=(550 µs, ~10 rows)  act=(_ µs, 10 rows)
#4  Product[R(3), R(4)]  → R(5) ◀ answer  est=(80 µs, ~80 rows)  act=(_ µs, 80 rows)
(estimated 1726 µs total, executed in _ µs)",
    );
}

/// EXPLAIN ANALYZE over an IndexScan probe: the routed plan executes and
/// the probe reports its actual posting-list hit count.
#[test]
fn analyzed_index_scan() {
    assert_snapshot(
        &analyzed_text(
            "PALUMNUS [DEGREE = \"MBA\"]",
            &[IndexSpec::hash("AD", "ALUMNUS", "DEG")],
        ),
        "\
#0  IndexScan[AD] ALUMNUS [ixscan AD.DEG = MBA] (hash)  → R(1) ◀ answer  est=(2 µs, ~0 rows)  act=(_ µs, 5 rows)
(estimated 2 µs total, executed in _ µs)",
    );
}

/// Intersect and Product.
#[test]
fn intersect_and_product_plan_serial() {
    assert_snapshot(
        &plan_text("(PALUMNUS INTERSECT PALUMNUS) TIMES PFINANCE", true, 1),
        "\
#0  Scan[AD] ALUMNUS  → R(1)
#1  Scan[AD] ALUMNUS  → R(2)
#2  Intersect[R(2), R(1)]  → R(3)
#3  Scan[CD] FINANCE  → R(4)
#4  Product[R(3), R(4)]  → R(5) ◀ answer",
    );
}
