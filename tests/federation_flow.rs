//! Integration tests spanning the full Figure 1 stack — application
//! schema → AQP → PQP → LQPs → local databases — plus failure injection
//! (capability-restricted feeds, missing relations, conflict policies).

use polygen::catalog::prelude::*;
use polygen::core::prelude::ConflictPolicy;
use polygen::federation::prelude::*;
use polygen::flat::{Relation, Value};
use polygen::lqp::prelude::*;
use polygen::pqp::prelude::*;
use std::sync::Arc;

fn app_schema() -> AppSchema {
    let mut s = AppSchema::new();
    s.push(AppRelation::new(
        "COMPANIES",
        "PORGANIZATION",
        &[
            ("COMPANY", "ONAME"),
            ("SECTOR", "INDUSTRY"),
            ("CHIEF", "CEO"),
            ("STATE", "HEADQUARTERS"),
        ],
    ));
    s.push(AppRelation::new(
        "GRADS",
        "PALUMNUS",
        &[("ID", "AID#"), ("GRAD", "ANAME"), ("DEGREE", "DEGREE")],
    ));
    s.push(AppRelation::new(
        "POSITIONS",
        "PCAREER",
        &[("ID", "AID#"), ("COMPANY", "ONAME"), ("ROLE", "POSITION")],
    ));
    s
}

/// The complete Figure 1 dataflow with the paper's answer at the end.
#[test]
fn figure1_full_stack() {
    let s = scenario::build();
    let ws = CisWorkstation::for_scenario(&s, app_schema());
    let out = ws
        .query_app(
            "SELECT COMPANY, CHIEF FROM COMPANIES, GRADS \
             WHERE CHIEF = GRAD AND COMPANY IN \
             (SELECT COMPANY FROM POSITIONS WHERE ID IN \
             (SELECT ID FROM GRADS WHERE DEGREE = \"MBA\"))",
        )
        .unwrap();
    assert_eq!(out.answer.len(), 3);
    let reg = ws.pqp().dictionary().registry();
    let cd = reg.lookup("CD").unwrap();
    let reed = out
        .answer
        .cell("ONAME", &Value::str("Citicorp"), "CEO")
        .unwrap();
    assert_eq!(reed.datum, Value::str("John Reed"));
    assert!(reed.origin.contains(cd));
    // The explain report renders end to end.
    let report = explain(&out, ws.pqp().dictionary());
    assert!(report.contains("Merge"));
    assert!(report.contains("Citicorp"));
}

/// A menu-driven (retrieve-only) commercial feed behind the compensating
/// adapter: same answers, zero native pushdown.
#[test]
fn menu_driven_feed_compensates() {
    let s = scenario::build();
    // CD becomes a Finsbury-style menu interface.
    let registry = LqpRegistry::new();
    for db in &s.databases {
        let inner = InMemoryLqp::new(&db.name, db.relations.clone());
        if db.name == "CD" {
            registry.register(Arc::new(CompensatingLqp::new(MenuDrivenLqp::new(
                inner,
                CostModel::slow_remote(),
            ))));
        } else {
            registry.register(Arc::new(inner));
        }
    }
    let pqp = Pqp::new(Arc::new(s.dictionary.clone()), Arc::new(registry));
    let out = pqp
        .query_algebra(polygen::sql::prelude::PAPER_EXPRESSION)
        .unwrap();
    assert_eq!(out.answer.len(), 3);
    // Against a plain registry the answers are tag-identical.
    let baseline = Pqp::for_scenario(&s)
        .query_algebra(polygen::sql::prelude::PAPER_EXPRESSION)
        .unwrap();
    assert!(out.answer.tagged_set_eq(&baseline.answer));
}

/// Without the compensating adapter, pushing a select to a menu-driven
/// LQP is a hard error the pipeline surfaces cleanly.
#[test]
fn menu_driven_feed_without_adapter_rejects_pushdown() {
    let s = scenario::build();
    let registry = LqpRegistry::new();
    for db in &s.databases {
        let inner = InMemoryLqp::new(&db.name, db.relations.clone());
        if db.name == "AD" {
            registry.register(Arc::new(MenuDrivenLqp::new(
                inner,
                CostModel::slow_remote(),
            )));
        } else {
            registry.register(Arc::new(inner));
        }
    }
    let pqp = Pqp::new(Arc::new(s.dictionary.clone()), Arc::new(registry));
    // The interpreter pushes [DEGREE = "MBA"] to AD, which now refuses.
    let err = pqp
        .query_algebra("PALUMNUS [DEGREE = \"MBA\"]")
        .unwrap_err();
    assert!(matches!(err, PqpError::Lqp(LqpError::Unsupported { .. })));
}

/// Missing local relations and unknown databases surface as typed errors.
#[test]
fn failure_injection_missing_pieces() {
    let s = scenario::build();
    // An LQP registry whose AD lacks the CAREER relation.
    let registry = LqpRegistry::new();
    for db in &s.databases {
        let relations: Vec<Relation> = db
            .relations
            .iter()
            .filter(|r| r.name() != "CAREER")
            .cloned()
            .collect();
        registry.register(Arc::new(InMemoryLqp::new(&db.name, relations)));
    }
    let pqp = Pqp::new(Arc::new(s.dictionary.clone()), Arc::new(registry));
    let err = pqp
        .query_algebra("PALUMNUS [AID# = AID#] PCAREER")
        .unwrap_err();
    assert!(matches!(
        err,
        PqpError::Lqp(LqpError::UnknownRelation { .. })
    ));
}

/// Conflicting sources: Strict errors, PreferLeft resolves and demotes.
#[test]
fn conflict_policies_through_the_pipeline() {
    let mut s = scenario::build();
    // Make PD disagree with CD about Citicorp's headquarters state.
    for db in &mut s.databases {
        if db.name == "PD" {
            for rel in &mut db.relations {
                if rel.name() == "CORPORATION" {
                    let mut rows = rel.rows().to_vec();
                    for row in &mut rows {
                        if row[0] == Value::str("Citicorp") {
                            row[2] = Value::str("DE");
                        }
                    }
                    *rel = Relation::from_rows(Arc::clone(rel.schema()), rows).unwrap();
                }
            }
        }
    }
    let strict = Pqp::for_scenario(&s);
    let err = strict
        .query_algebra("PORGANIZATION [ONAME, HEADQUARTERS]")
        .unwrap_err();
    assert!(matches!(
        err,
        PqpError::Polygen(polygen::core::PolygenError::CoalesceConflict { .. })
    ));
    let lenient = Pqp::for_scenario(&s).with_options(PqpOptions {
        conflict_policy: ConflictPolicy::PreferLeft,
        ..PqpOptions::default()
    });
    let out = lenient
        .query_algebra("PORGANIZATION [ONAME, HEADQUARTERS]")
        .unwrap();
    let hq = out
        .answer
        .cell("ONAME", &Value::str("Citicorp"), "HEADQUARTERS")
        .unwrap();
    // PD is merged before CD (catalog order), so PD's DE wins under
    // PreferLeft, and CD is demoted to an intermediate source.
    assert_eq!(hq.datum, Value::str("DE"));
    let cd = s.dictionary.registry().lookup("CD").unwrap();
    assert!(hq.intermediate.contains(cd));
}

/// The cardinality audit and credibility ranking work over live LQPs.
#[test]
fn audits_and_credibility_over_live_federation() {
    let s = scenario::build();
    let registry = polygen::lqp::scenario_registry(&s);
    let report = audit_scheme("PORGANIZATION", &registry, &s.dictionary).unwrap();
    assert_eq!(report.total_keys, 12);
    assert_eq!(report.inconsistent_keys(), 8);

    let pqp = Pqp::for_scenario(&s);
    let out = pqp.query_algebra("PORGANIZATION [ONAME, CEO]").unwrap();
    let ranks = rank_tuples(&out.answer, &s.dictionary);
    assert_eq!(ranks.len(), 12);
    // AD-backed tuples (credibility 0.9 floor) rank above CD-only data.
    let best = &out.answer.tuples()[ranks[0].0];
    let worst = &out.answer.tuples()[ranks[ranks.len() - 1].0];
    assert!(ranks[0].1 >= ranks[ranks.len() - 1].1);
    assert_ne!(best[0].datum, worst[0].datum);
}
