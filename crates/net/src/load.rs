//! Closed-loop TCP load generation.
//!
//! [`NetClientMix`] is the wire twin of
//! [`polygen_workload::clients::drive`]: the *same* [`ClientMix`]
//! scripts (same seed ⇒ same per-client `RngStream` sub-seeds ⇒ the
//! exact same query sequences), but each client is a real TCP session
//! against a [`crate::server::NetServer`]. That pairing is what the
//! differential suite leans on — a TCP run and an in-process run of one
//! mix are comparable query-for-query, so responses can be required to
//! be byte-identical.

use crate::client::{NetClient, NetError};
use crate::protocol::Frame;
use polygen_serve::request::Request;
use polygen_workload::clients::{ClientMix, ClientQuery, LatencySummary, QueryLang};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One client's exchanges: the frames and round-trip latency of each
/// scripted query, in script order.
type ClientExchanges = Vec<(Vec<Frame>, Duration)>;

/// The [`Request`] a generated workload query maps onto. One place, so
/// the TCP driver and the in-process baseline cannot disagree.
pub fn request_for(query: &ClientQuery) -> Request {
    match query.lang {
        QueryLang::Sql => Request::sql(&query.text),
        QueryLang::Algebra => Request::algebra(&query.text),
    }
}

/// What one TCP population run produced: the full frame stream of every
/// response, in script order, plus wall-clock and latency figures.
#[derive(Debug)]
pub struct NetRun {
    /// `per_client[i][q]` = the response frames (terminal frame
    /// included) for client `i`'s `q`-th scripted query.
    pub per_client: Vec<Vec<Vec<Frame>>>,
    /// Queries issued in total.
    pub queries: usize,
    /// Idle connections held open (and verified serviceable) for the
    /// whole run, alongside the scripted clients.
    pub idle: usize,
    /// Wall-clock time for the whole population to finish.
    pub elapsed: Duration,
    /// Per-query round-trip latencies (think time excluded).
    pub latency: LatencySummary,
}

impl NetRun {
    /// Sustained throughput in queries per second.
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }
}

/// A closed-loop TCP client population: [`ClientMix`] scripts spoken
/// over the wire, one connection per client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetClientMix {
    /// The script generator — shared verbatim with in-process runs.
    pub mix: ClientMix,
    /// Extra connections that connect, read the greeting, and then sit
    /// parked for the whole run — the "ten thousand idle sessions"
    /// population the evented server exists to make cheap. Zero by
    /// default so the differential suite's runs stay exactly the
    /// in-process scripts.
    pub idle: usize,
}

impl NetClientMix {
    /// Drive `mix`'s scripts over TCP.
    pub fn new(mix: ClientMix) -> Self {
        NetClientMix { mix, idle: 0 }
    }

    /// Park `idle` extra connections for the duration of the run.
    pub fn with_idle_connections(mut self, idle: usize) -> Self {
        self.idle = idle;
        self
    }

    /// Run the population against a server at `addr`: one OS thread and
    /// one TCP session per client, each executing its deterministic
    /// script closed-loop (send, await the full response stream, think,
    /// repeat).
    pub fn drive(&self, addr: SocketAddr) -> Result<NetRun, NetError> {
        let mix = &self.mix;
        // Park the idle population first: each one completes the
        // greeting handshake (so it is a *serviced* session, not just a
        // socket in an accept queue) and then holds its connection open
        // across the scripted run.
        let parked: Vec<NetClient> = (0..self.idle)
            .map(|_| NetClient::connect(addr))
            .collect::<Result<_, _>>()?;
        let start = Instant::now();
        let joined: Vec<Result<ClientExchanges, NetError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..mix.clients)
                .map(|client| {
                    let script = mix.script(client);
                    let think = mix.think;
                    scope.spawn(move || {
                        let mut session = NetClient::connect(addr)?;
                        let last = script.len().saturating_sub(1);
                        let mut exchanges = Vec::with_capacity(script.len());
                        for (i, q) in script.iter().enumerate() {
                            let issued = Instant::now();
                            let frames = session.execute_frames(&request_for(q))?;
                            exchanges.push((frames, issued.elapsed()));
                            if !think.is_zero() && i < last {
                                std::thread::sleep(think);
                            }
                        }
                        Ok(exchanges)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("net client thread panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        drop(parked);
        let mut per_client = Vec::with_capacity(joined.len());
        let mut latencies = Vec::new();
        for outcome in joined {
            let exchanges = outcome?;
            latencies.extend(exchanges.iter().map(|(_, d)| *d));
            per_client.push(exchanges.into_iter().map(|(f, _)| f).collect::<Vec<_>>());
        }
        Ok(NetRun {
            queries: per_client.iter().map(Vec::len).sum(),
            idle: self.idle,
            per_client,
            elapsed,
            latency: LatencySummary::from_durations(latencies),
        })
    }
}
