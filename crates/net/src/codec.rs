//! Deterministic byte-level encoding for the wire protocol.
//!
//! Every frame travels as `[u32 LE payload length][payload]`, where the
//! payload is `[u8 frame tag][frame body]`. All integers are
//! little-endian; strings are `u32 length + UTF-8 bytes`; a
//! [`SourceSet`] is `u16 count + ascending u16 source ids` (the set
//! iterates ascending, so identical sets — however they were built —
//! encode to identical bytes). That determinism is load-bearing: the
//! differential suite compares *encoded frames* across transports, so
//! any two equal answers must serialize identically.
//!
//! [`FrameReader`] accumulates partial reads across read-timeout polls
//! without ever losing frame sync — a timeout mid-frame just leaves the
//! prefix buffered for the next poll.

use polygen_core::cell::Cell;
use polygen_core::source::{SourceId, SourceSet};
use polygen_core::tuple::PolyTuple;
use polygen_flat::value::{Value, F64};
use std::fmt;
use std::io::{ErrorKind, Read};
use std::sync::Arc;

/// Upper bound on a single frame's payload — a corrupted or hostile
/// length prefix must not provoke a giant allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the structure it promised.
    Truncated,
    /// A tag, length, or invariant was out of range.
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consume into the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats travel as raw IEEE-754 bits — bit-for-bit, not lossily
    /// formatted, so a decoded float re-encodes to the same bytes.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string exceeds u32::MAX bytes"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(F64(f)) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
        }
    }

    /// `u16 count + ascending u16 ids` — [`SourceSet::iter`] yields
    /// ascending order, making the encoding canonical.
    pub fn put_source_set(&mut self, set: &SourceSet) {
        self.put_u16(u16::try_from(set.len()).expect("more than u16::MAX sources"));
        for id in set.iter() {
            self.put_u16(id.0);
        }
    }

    pub fn put_cell(&mut self, cell: &Cell) {
        self.put_value(&cell.datum);
        self.put_source_set(&cell.origin);
        self.put_source_set(&cell.intermediate);
    }

    pub fn put_tuple(&mut self, tuple: &PolyTuple) {
        self.put_u32(u32::try_from(tuple.len()).expect("tuple degree exceeds u32::MAX"));
        for cell in tuple {
            self.put_cell(cell);
        }
    }
}

/// Cursor-style decoder over a byte slice. Every read checks bounds and
/// reports [`CodecError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoders must consume their frame exactly; trailing garbage means
    /// the encoder and decoder disagree about the format.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Corrupt(format!(
                "{} trailing bytes after frame body",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Corrupt(format!("bool byte {other}"))),
        }
    }

    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Corrupt("string is not UTF-8".into()))
    }

    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.get_bool()?)),
            2 => Ok(Value::Int(self.get_i64()?)),
            3 => Ok(Value::Float(F64(self.get_f64()?))),
            4 => Ok(Value::Str(Arc::from(self.get_str()?.as_str()))),
            tag => Err(CodecError::Corrupt(format!("value tag {tag}"))),
        }
    }

    pub fn get_source_set(&mut self) -> Result<SourceSet, CodecError> {
        let count = self.get_u16()?;
        let mut prev: Option<u16> = None;
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = self.get_u16()?;
            // Enforce the canonical (ascending, duplicate-free) form so
            // decode∘encode is the identity on bytes.
            if prev.is_some_and(|p| p >= id) {
                return Err(CodecError::Corrupt("source ids not ascending".into()));
            }
            prev = Some(id);
            ids.push(SourceId(id));
        }
        Ok(SourceSet::from_ids(ids))
    }

    pub fn get_cell(&mut self) -> Result<Cell, CodecError> {
        Ok(Cell {
            datum: self.get_value()?,
            origin: self.get_source_set()?,
            intermediate: self.get_source_set()?,
        })
    }

    pub fn get_tuple(&mut self) -> Result<PolyTuple, CodecError> {
        let degree = self.get_u32()? as usize;
        if degree > self.remaining() {
            // A cell is at least one byte; an impossible count is
            // corruption, not a reason to reserve gigabytes.
            return Err(CodecError::Truncated);
        }
        (0..degree).map(|_| self.get_cell()).collect()
    }
}

/// What one poll of a [`FrameReader`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FramePoll {
    /// A complete frame payload (`tag + body`, length prefix stripped).
    Payload(Vec<u8>),
    /// The read timed out (or would block) before a full frame arrived;
    /// any partial bytes stay buffered for the next poll.
    Idle,
    /// The peer closed the connection cleanly (no partial frame).
    Closed,
}

/// Incremental frame extractor over a [`Read`] stream.
///
/// The server polls connections under a read timeout so it can notice
/// shutdown; `poll` must therefore tolerate a timeout at *any* byte
/// boundary. It buffers whatever arrived and reports [`FramePoll::Idle`]
/// until the length prefix and full payload are present.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with nothing buffered.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Pull bytes from `stream` until a full frame, a timeout, or EOF.
    ///
    /// Errors: [`CodecError::Corrupt`] for an oversized length prefix,
    /// [`CodecError::Truncated`] for EOF mid-frame. I/O errors other
    /// than timeout/would-block surface as `Corrupt` with the message —
    /// the connection is unusable either way.
    pub fn poll<R: Read>(&mut self, stream: &mut R) -> Result<FramePoll, CodecError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.extract()? {
                return Ok(FramePoll::Payload(payload));
            }
            match stream.read(&mut scratch) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FramePoll::Closed)
                    } else {
                        Err(CodecError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(FramePoll::Idle);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(CodecError::Corrupt(format!("read failed: {e}"))),
            }
        }
    }

    /// Pop one complete frame payload off the buffer, if present.
    fn extract(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(CodecError::Corrupt(format!("frame length {len}")));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// Wrap a frame payload (`tag + body`) in its length prefix.
pub fn prefix_frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame exceeds u32::MAX");
    assert!(len > 0 && len <= MAX_FRAME_LEN, "frame length {len}");
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(payload);
    wire
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-5);
        w.put_f64(-0.25);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn cells_round_trip_with_canonical_source_sets() {
        let cell = Cell::new(
            Value::str("alpha"),
            SourceSet::from_ids([SourceId(9), SourceId(2), SourceId(2)]),
            SourceSet::singleton(SourceId(0)),
        );
        let mut w = ByteWriter::new();
        w.put_cell(&cell);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.get_cell().unwrap();
        assert_eq!(back, cell);
        r.expect_end().unwrap();
        // Re-encoding the decoded cell is byte-identical.
        let mut w2 = ByteWriter::new();
        w2.put_cell(&back);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncation_and_corruption_are_errors_not_panics() {
        let mut w = ByteWriter::new();
        w.put_value(&Value::int(42));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert_eq!(r.get_value(), Err(CodecError::Truncated), "cut at {cut}");
        }
        let mut r = ByteReader::new(&[200]);
        assert!(matches!(r.get_value(), Err(CodecError::Corrupt(_))));
        // Non-ascending source ids are rejected.
        let mut w = ByteWriter::new();
        w.put_u16(2);
        w.put_u16(5);
        w.put_u16(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_source_set(), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn frame_reader_survives_byte_dribble() {
        let payload = b"\x07hello frame".to_vec();
        let wire = prefix_frame(&payload);
        let mut reader = FrameReader::new();
        // Feed one byte at a time through a cursor that times out after
        // each byte — sync must never be lost.
        for (i, b) in wire.iter().enumerate() {
            let mut one = OneByte(Some(*b));
            let poll = reader.poll(&mut one).unwrap();
            if i + 1 < wire.len() {
                assert_eq!(poll, FramePoll::Idle, "byte {i}");
            } else {
                assert_eq!(poll, FramePoll::Payload(payload.clone()));
            }
        }
        // Clean EOF with an empty buffer.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(reader.poll(&mut empty).unwrap(), FramePoll::Closed);
        // EOF mid-frame is truncation.
        let mut partial = std::io::Cursor::new(wire[..6].to_vec());
        let mut reader = FrameReader::new();
        assert_eq!(reader.poll(&mut partial), Err(CodecError::Truncated));
    }

    /// `EINTR` is retryable, not a dropped connection: a stream that
    /// interleaves `Interrupted` errors between every byte must still
    /// deliver the frame (and a mid-frame interruption must not lose
    /// the buffered prefix).
    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        let payload = b"\x03interrupt me".to_vec();
        let wire = prefix_frame(&payload);
        let mut stuttering = Interruptible {
            bytes: wire.clone().into(),
            interrupt_next: true,
        };
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.poll(&mut stuttering).unwrap(),
            FramePoll::Payload(payload.clone())
        );
        // Same stream split across two polls with an interruption and a
        // timeout in between: the prefix survives both.
        let mut reader = FrameReader::new();
        let mut first = Interruptible {
            bytes: wire[..5].to_vec().into(),
            interrupt_next: true,
        };
        assert_eq!(reader.poll(&mut first).unwrap(), FramePoll::Idle);
        let mut rest = Interruptible {
            bytes: wire[5..].to_vec().into(),
            interrupt_next: true,
        };
        assert_eq!(reader.poll(&mut rest).unwrap(), FramePoll::Payload(payload));
    }

    /// Yields `ErrorKind::Interrupted` before every byte, then times
    /// out once drained.
    struct Interruptible {
        bytes: std::collections::VecDeque<u8>,
        interrupt_next: bool,
    }

    impl Read for Interruptible {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::from(ErrorKind::Interrupted));
            }
            self.interrupt_next = true;
            match self.bytes.pop_front() {
                Some(b) => {
                    buf[0] = b;
                    Ok(1)
                }
                None => Err(std::io::Error::from(ErrorKind::WouldBlock)),
            }
        }
    }

    #[test]
    fn two_frames_in_one_read_both_extract() {
        let a = prefix_frame(b"\x01aa");
        let b = prefix_frame(b"\x02bbb");
        let mut both = std::io::Cursor::new([a, b].concat());
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.poll(&mut both).unwrap(),
            FramePoll::Payload(b"\x01aa".to_vec())
        );
        assert_eq!(
            reader.poll(&mut both).unwrap(),
            FramePoll::Payload(b"\x02bbb".to_vec())
        );
        assert_eq!(reader.poll(&mut both).unwrap(), FramePoll::Closed);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = ((MAX_FRAME_LEN + 1).to_le_bytes()).to_vec();
        wire.push(0);
        let mut cursor = std::io::Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut cursor),
            Err(CodecError::Corrupt(_))
        ));
    }

    /// Yields its byte, then times out forever.
    struct OneByte(Option<u8>);

    impl Read for OneByte {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.take() {
                Some(b) => {
                    buf[0] = b;
                    Ok(1)
                }
                None => Err(std::io::Error::from(ErrorKind::WouldBlock)),
            }
        }
    }
}
