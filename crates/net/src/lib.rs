//! # polygen-net — the wire-protocol front door
//!
//! `polygen-serve` made the mediator a service; this crate puts a
//! socket on it. The design rests on the serve layer's transport-
//! agnostic envelope ([`polygen_serve::request::Request`] in,
//! [`polygen_serve::request::Response`] out): the wire adds framing and
//! bytes, never semantics, so an answer over TCP is *byte-identical* to
//! the same answer in process.
//!
//! * [`codec`] — deterministic little-endian encoding (length-prefixed
//!   frames, canonical ascending source-set bytes) and a
//!   [`codec::FrameReader`] that survives partial reads.
//! * [`protocol`] — the frame vocabulary: `Hello`, `Query`, then a
//!   streamed response (`Schema`, `Rows` batches, `Explain`, `Empty`,
//!   `Error`, `Summary`) with one terminal frame per response.
//!   Everything deterministic precedes the timing-dependent `Summary`.
//! * [`server`] — [`server::NetServer`]: an evented front door. One
//!   poller thread owns every connection socket (readiness via the
//!   [`sys`] shim — epoll on Linux, a portable fallback elsewhere) and
//!   a bounded worker pool runs queries, so a thousand idle sessions
//!   cost registrations, not threads. Responses drain through
//!   per-connection outbound buffers on write-readiness; a peer that
//!   stops reading is closed with a backpressure error, never allowed
//!   to block a server thread. Overload is still answered with a
//!   structured `Error { code: 503 }` frame on a live connection —
//!   graceful shedding, never a dropped socket.
//! * [`client`] — [`client::NetClient`]: blocking connect/execute, the
//!   network spelling of `QueryService::execute`.
//! * [`load`] — [`load::NetClientMix`]: the closed-loop TCP load
//!   generator, replaying the exact deterministic per-client scripts of
//!   [`polygen_workload::clients::ClientMix`] over real sockets.
//!
//! The differential guarantee (`tests/properties_net.rs`): for the same
//! scripts, TCP responses — data, tags, order, error codes — are
//! byte-identical to in-process `execute`, with only the `Summary`
//! frame (latency, thread allotment, cache temperature) allowed to
//! differ.

pub mod client;
pub mod codec;
pub mod load;
pub mod protocol;
pub mod server;
pub mod sys;

/// Convenient glob import.
pub mod prelude {
    pub use crate::client::{NetClient, NetError};
    pub use crate::codec::{CodecError, FramePoll, FrameReader};
    pub use crate::load::{request_for, NetClientMix, NetRun};
    pub use crate::protocol::{
        deterministic_bytes, response_frames, response_from_frames, Frame, PROTOCOL_VERSION,
    };
    pub use crate::server::{NetServer, NetServerOptions};
}

pub use client::{NetClient, NetError};
pub use load::{request_for, NetClientMix, NetRun};
pub use protocol::{Frame, PROTOCOL_VERSION};
pub use server::{NetServer, NetServerOptions};
