//! Thin readiness shim for the evented server — epoll on Linux, a
//! portable polling fallback elsewhere. No external runtime: the Linux
//! backend declares the four `epoll`/`close` syscalls it needs against
//! the libc that `std` already links, and everything above it is safe
//! code.
//!
//! The contract is deliberately minimal and *level-triggered*: readiness
//! may be reported spuriously (the fallback backend reports every
//! registered socket ready on each tick), so callers must treat
//! `WouldBlock` from the subsequent read/write as "not actually ready",
//! never as an error. That tolerance is what lets one server loop run on
//! both backends unchanged.

use std::io;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on read-readiness (or peer hangup).
    pub read: bool,
    /// Wake on write-readiness.
    pub write: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// Write-readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };

    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: u64,
    /// Bytes (or EOF, or an error) can be read without blocking.
    pub readable: bool,
    /// The socket can accept bytes without blocking.
    pub writable: bool,
    /// The peer hung up or the socket errored; the connection is dead
    /// regardless of buffered data.
    pub hangup: bool,
}

/// The socket identity a backend registers. On unix this is the raw fd;
/// the portable fallback never inspects it.
#[cfg(unix)]
pub type SockId = std::os::fd::RawFd;
/// Socket identity placeholder on non-unix targets (the scan backend
/// reports readiness by token, not by inspecting the socket).
#[cfg(not(unix))]
pub type SockId = u64;

/// Extract the backend's socket identity from any socket-like type.
pub trait AsSockId {
    /// The identity to register with a [`Poller`].
    fn sock_id(&self) -> SockId;
}

#[cfg(unix)]
impl<T: std::os::fd::AsRawFd> AsSockId for T {
    fn sock_id(&self) -> SockId {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> AsSockId for T {
    fn sock_id(&self) -> SockId {
        0
    }
}

#[cfg(target_os = "linux")]
pub use epoll::Poller;
#[cfg(not(target_os = "linux"))]
pub use scan::Poller;

/// Wake a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// On unix this is one end of a nonblocking socket pair whose other end
/// is registered with the poller; elsewhere it is a no-op, because the
/// scan backend's `wait` never sleeps longer than its tick.
#[derive(Debug)]
pub struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
}

impl Waker {
    /// A second handle to the same waker (workers each hold their own).
    pub fn try_clone(&self) -> io::Result<Waker> {
        #[cfg(unix)]
        {
            Ok(Waker {
                tx: self.tx.try_clone()?,
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Waker {})
        }
    }

    /// Nudge the poller. Best-effort: a full pipe means a wake is
    /// already pending, which is all a wake means.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.tx).write(&[1]);
        }
    }
}

/// The poller-owned end of the wake channel.
#[derive(Debug)]
pub struct WakeReceiver {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl WakeReceiver {
    /// The identity to register with the poller (unix only; the scan
    /// backend ignores it).
    pub fn sock_id(&self) -> SockId {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            self.rx.as_raw_fd()
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    /// Swallow pending wake bytes so level-triggered readiness clears.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// Build a connected waker pair, both ends nonblocking.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    #[cfg(unix)]
    {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReceiver { rx }))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, WakeReceiver {}))
    }
}

/// Linux backend: a real `epoll` instance, level-triggered.
#[cfg(target_os = "linux")]
mod epoll {
    // The one corner of the workspace that talks to the kernel
    // directly; everything is bounds-checked buffers around four
    // syscalls, kept in this module so the rest of the crate stays
    // under the workspace-wide `unsafe_code = "deny"`.
    #![allow(unsafe_code)]

    use super::{Event, Interest, SockId};
    use std::ffi::c_int;
    use std::io;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirror of the kernel's `struct epoll_event`. x86 packs it so the
    /// 64-bit data field sits at offset 4; other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance plus its scratch event buffer.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
        scratch: Vec<(u32, u64)>,
    }

    impl Poller {
        /// A fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                scratch: Vec::new(),
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = EPOLLRDHUP;
            if interest.read {
                events |= EPOLLIN;
            }
            if interest.write {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: c_int, id: SockId, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe { epoll_ctl(self.epfd, op, id, &mut ev) })?;
            Ok(())
        }

        /// Start watching `id` under `token`.
        pub fn add(&mut self, id: SockId, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, id, Self::mask(interest), token)
        }

        /// Change what `id` is watched for.
        pub fn modify(&mut self, id: SockId, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, id, Self::mask(interest), token)
        }

        /// Stop watching `id`. Harmless if the socket is about to be
        /// closed anyway (closing removes it implicitly).
        pub fn remove(&mut self, id: SockId) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, id, 0, 0)
        }

        /// Block until readiness or `timeout`, appending to `out`.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let millis = c_int::try_from(timeout.as_millis())
                .unwrap_or(c_int::MAX)
                .max(1);
            let n = match check(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, millis)
            }) {
                Ok(n) => n as usize,
                // A signal interrupting the wait is a spurious wake.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            // Copy out of the (possibly packed) kernel structs before
            // building events.
            self.scratch.clear();
            for ev in buf.iter().take(n) {
                let events = ev.events;
                let data = ev.data;
                self.scratch.push((events, data));
            }
            for &(events, token) in &self.scratch {
                out.push(Event {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { close(self.epfd) };
        }
    }
}

/// Portable fallback: no kernel readiness at all. `wait` sleeps one
/// short tick and reports every registered token ready for whatever it
/// registered interest in; the server's nonblocking reads and writes
/// turn the spurious readiness into cheap `WouldBlock`s. O(connections)
/// per tick — degraded but correct on targets without the epoll shim.
#[cfg(not(target_os = "linux"))]
mod scan {
    use super::{Event, Interest, SockId};
    use std::collections::HashMap;
    use std::io;
    use std::time::Duration;

    /// Registered tokens and their interests.
    #[derive(Debug)]
    pub struct Poller {
        registered: HashMap<SockId, (u64, Interest)>,
        tick: Duration,
    }

    impl Poller {
        /// A fresh registration table.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: HashMap::new(),
                tick: Duration::from_millis(1),
            })
        }

        /// Start watching `id` under `token`.
        pub fn add(&mut self, id: SockId, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(id, (token, interest));
            Ok(())
        }

        /// Change what `id` is watched for.
        pub fn modify(&mut self, id: SockId, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(id, (token, interest));
            Ok(())
        }

        /// Stop watching `id`.
        pub fn remove(&mut self, id: SockId) -> io::Result<()> {
            self.registered.remove(&id);
            Ok(())
        }

        /// Sleep one tick, then report everything ready (spuriously).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            std::thread::sleep(self.tick.min(timeout));
            for (&_id, &(token, interest)) in &self.registered {
                out.push(Event {
                    token,
                    readable: interest.read,
                    writable: interest.write,
                    hangup: false,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// The shim end to end on a real socket: write-readiness on a fresh
    /// stream, no read-readiness until bytes arrive, read-readiness
    /// (and eventual hangup visibility) after.
    #[test]
    fn readiness_on_a_real_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.sock_id(), 7, Interest::BOTH).unwrap();

        // A fresh socket is writable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(200))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.writable),
            "fresh socket should be writable: {events:?}"
        );

        // Bytes from the peer make it readable.
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let readable = loop {
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
        };
        assert!(readable, "bytes never surfaced as read-readiness");
        let mut buf = [0u8; 8];
        let mut served = &server;
        assert_eq!(served.read(&mut buf).unwrap(), 4);

        // Interest changes stick: read-only interest stops write events
        // on the epoll backend (the fallback may still report both).
        poller.modify(server.sock_id(), 7, Interest::READ).unwrap();

        // Peer hangup surfaces as readable (EOF) and/or hangup.
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let saw_eof = loop {
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events
                .iter()
                .any(|e| e.token == 7 && (e.readable || e.hangup))
            {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
        };
        assert!(saw_eof, "hangup never surfaced");
        poller.remove(server.sock_id()).unwrap();
    }

    /// A waker unblocks a poller mid-wait (the fallback backend's wait
    /// is bounded anyway, so this just checks the call sequence).
    #[test]
    fn waker_wakes_a_blocked_wait() {
        let (waker, rx) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        #[cfg(unix)]
        poller.add(rx.sock_id(), 1, Interest::READ).unwrap();
        let clone = waker.try_clone().unwrap();
        let hand = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            clone.wake();
        });
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        #[cfg(target_os = "linux")]
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake did not interrupt the wait"
        );
        let _ = start;
        rx.drain();
        hand.join().unwrap();
    }
}
