//! A blocking client for the wire protocol.
//!
//! [`NetClient::execute`] is the network spelling of
//! [`QueryService::execute`](polygen_serve::service::QueryService::execute):
//! same [`Request`] in, same [`Response`] out — reassembled from the
//! frame stream. [`NetClient::execute_frames`] exposes the raw frames
//! for byte-level differential comparison.
//!
//! Connections are keep-alive by design: hold a `NetClient` open
//! between queries instead of reconnecting. The evented server parks an
//! idle session as one registration in its readiness poller — no
//! thread, no stack — so thousands of long-lived clients cost it almost
//! nothing, while a reconnect pays the TCP + greeting handshake every
//! time. The only thing a client must stay honest about is *draining
//! responses*: a client that issues queries and stops reading will hit
//! the server's outbound backpressure cap and have its connection
//! closed with a `WIRE_BACKPRESSURE` error.

use crate::codec::{CodecError, FramePoll, FrameReader};
use crate::protocol::{request_frame, response_from_frames, Frame, PROTOCOL_VERSION};
use polygen_serve::request::{Request, Response};
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

/// Why a client call failed at the transport level (serve-level
/// failures arrive as ordinary [`Response::Error`] values).
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame failed to decode.
    Codec(CodecError),
    /// The server greeted with an incompatible protocol version.
    VersionMismatch {
        /// What the server speaks.
        server: u8,
        /// What this client speaks ([`PROTOCOL_VERSION`]).
        client: u8,
    },
    /// The server closed the connection mid-response.
    Disconnected,
    /// The server reported a transport-level violation (code < 100).
    Transport {
        /// One of the `WIRE_*` codes.
        code: u16,
        /// Server-side detail.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::VersionMismatch { server, client } => {
                write!(f, "server speaks protocol v{server}, client v{client}")
            }
            NetError::Disconnected => write!(f, "server closed the connection mid-response"),
            NetError::Transport { code, message } => {
                write!(f, "transport error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// One blocking protocol session over TCP.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl NetClient {
    /// Connect and consume the server's `Hello`, refusing a version
    /// mismatch.
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = NetClient {
            stream,
            reader: FrameReader::new(),
        };
        match client.read_frame()? {
            Frame::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Frame::Hello { version } => Err(NetError::VersionMismatch {
                server: version,
                client: PROTOCOL_VERSION,
            }),
            other => Err(NetError::Codec(CodecError::Corrupt(format!(
                "expected Hello, got tag {}",
                other.tag()
            )))),
        }
    }

    /// Issue one request and collect its full response frame stream
    /// (terminal frame included, `Hello` long since consumed).
    pub fn execute_frames(&mut self, request: &Request) -> Result<Vec<Frame>, NetError> {
        self.stream.write_all(&request_frame(request).encode())?;
        let mut frames = Vec::new();
        loop {
            let frame = self.read_frame()?;
            if let Frame::Error { code, message } = &frame {
                // Transport-coded errors mean the server is about to
                // hang up; surface them as client errors, not responses.
                if *code < 100 {
                    return Err(NetError::Transport {
                        code: *code,
                        message: message.clone(),
                    });
                }
            }
            let terminal = frame.is_terminal();
            frames.push(frame);
            if terminal {
                return Ok(frames);
            }
        }
    }

    /// Issue one request and reassemble the serve-level [`Response`].
    pub fn execute(&mut self, request: &Request) -> Result<Response, NetError> {
        let frames = self.execute_frames(request)?;
        Ok(response_from_frames(&frames)?)
    }

    /// Fetch the server's metrics scrape (Prometheus exposition text
    /// plus the slow-query log) — the wire spelling of
    /// `QueryService::scrape`. Answered by the server's poller thread,
    /// so it works even while every query worker is busy.
    pub fn scrape_stats(&mut self) -> Result<String, NetError> {
        self.stream.write_all(&Frame::StatsRequest.encode())?;
        match self.read_frame()? {
            Frame::Stats { text } => Ok(text),
            Frame::Error { code, message } if code < 100 => {
                Err(NetError::Transport { code, message })
            }
            other => Err(NetError::Codec(CodecError::Corrupt(format!(
                "expected Stats, got tag {}",
                other.tag()
            )))),
        }
    }

    /// Block until the next frame (the client sets no read timeout, so
    /// a clean server close is the only `Disconnected` source).
    fn read_frame(&mut self) -> Result<Frame, NetError> {
        loop {
            match self.reader.poll(&mut self.stream)? {
                FramePoll::Payload(payload) => return Ok(Frame::decode(&payload)?),
                FramePoll::Idle => continue,
                FramePoll::Closed => return Err(NetError::Disconnected),
            }
        }
    }
}
