//! The frame vocabulary and its mapping onto the serve envelope.
//!
//! A session is: server sends [`Frame::Hello`]; the client then loops
//! `Query → response frames`. A response is a *stream* of frames:
//!
//! * `Rows`    → `Schema`, zero or more `Rows` batches of at most
//!   [`ROW_BATCH`] tuples, then `Summary` (terminal).
//! * `Explain` → `Explain`, then `Summary` (terminal).
//! * `Empty`   → `Empty` (terminal).
//! * `Error`   → `Error` (terminal) — including admission-control
//!   shedding, which arrives as code 503 on a connection that stays
//!   open. Overload is an answer, not a hangup.
//!
//! Besides `Query`, a client may send [`Frame::StatsRequest`]: the
//! server answers with a single [`Frame::Stats`] (terminal) carrying
//! the Prometheus-format metrics scrape plus the slow-query log — the
//! wire spelling of `QueryService::scrape`. Stats are answered by the
//! poller itself, so the scrape works even when every worker is busy.
//!
//! The client reads until a terminal frame. Everything deterministic
//! (schema, rows, tags, plan text, error codes) precedes the `Summary`
//! frame, which carries the timing-dependent [`ResponseInfo`]; the
//! differential suite compares encoded frames *excluding summaries*.
//!
//! Error codes 0–99 are reserved for the transport itself (malformed
//! frames, version mismatch); the serve taxonomy starts at 100. A
//! transport-coded `Error` frame is followed by the server closing the
//! connection — the stream can no longer be trusted to be in sync.

use crate::codec::{prefix_frame, ByteReader, ByteWriter, CodecError};
use polygen_core::relation::PolygenRelation;
use polygen_core::tuple::PolyTuple;
use polygen_flat::schema::Schema;
use polygen_serve::request::{
    ErrorCode, ExplainOptions, Lang, Request, RequestOptions, Response, ResponseInfo,
};
use std::sync::Arc;

/// Protocol revision; [`Frame::Hello`] announces it and clients refuse a
/// mismatch. v2 widened `Query` (EXPLAIN mode tag + trace flag) and
/// added the `StatsRequest`/`Stats` pair.
pub const PROTOCOL_VERSION: u8 = 2;

/// Tuples per `Rows` batch frame — bounds per-frame allocation while
/// keeping framing overhead negligible.
pub const ROW_BATCH: usize = 256;

/// Transport-reserved error code: a frame failed to decode or violated
/// the protocol state machine. The server closes the connection after
/// sending it.
pub const WIRE_MALFORMED: u16 = 1;

/// Transport-reserved error code: the client spoke a different
/// [`PROTOCOL_VERSION`].
pub const WIRE_VERSION_MISMATCH: u16 = 2;

/// Transport-reserved error code: the server received a frame other
/// than `Query` where a query was expected.
pub const WIRE_UNEXPECTED_FRAME: u16 = 3;

/// Transport-reserved error code: the peer stopped draining its
/// responses and the server's outbound buffer for the connection hit
/// its cap. The server closes the connection after (best-effort)
/// sending it — a slow reader costs one socket, never a server thread.
pub const WIRE_BACKPRESSURE: u16 = 4;

/// One protocol frame. Tags are part of the wire format and never
/// change meaning.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Tag 0 — server greeting, first frame on every connection.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u8,
    },
    /// Tag 1 — a client request.
    Query {
        /// Which parser the text is for.
        lang: Lang,
        /// EXPLAIN mode (off / plan-only / analyze).
        explain: ExplainOptions,
        /// Record a span waterfall server-side (slow-query log).
        trace: bool,
        /// The query text.
        text: String,
    },
    /// Tag 2 — the answer relation's schema, sent before any rows.
    Schema {
        /// Relation name.
        name: String,
        /// Attribute names, in order.
        attrs: Vec<String>,
        /// Primary-key attribute positions.
        key: Vec<u16>,
    },
    /// Tag 3 — a batch of tagged tuples (datum + origin + intermediate
    /// per cell), at most [`ROW_BATCH`] per frame, in answer order.
    Rows {
        /// The batch.
        tuples: Vec<PolyTuple>,
    },
    /// Tag 4 — a rendered physical plan.
    Explain {
        /// `render_plan` text.
        plan: String,
    },
    /// Tag 5 — the request text was blank. Terminal.
    Empty,
    /// Tag 6 — the query failed (or the transport did). Terminal.
    Error {
        /// A [`ErrorCode`] number (≥ 100) or a transport code (< 100).
        code: u16,
        /// Human-readable detail; not stable.
        message: String,
    },
    /// Tag 7 — cache/route/metrics info; terminates `Rows`/`Explain`
    /// responses. Timing-dependent, hence excluded from byte-identity
    /// comparisons.
    Summary {
        /// The info block the service reported.
        info: ResponseInfo,
    },
    /// Tag 8 — client asks for the service's metrics scrape.
    StatsRequest,
    /// Tag 9 — the scrape text (Prometheus exposition + slow-query
    /// log). Terminal: a `StatsRequest` gets exactly one `Stats` back.
    Stats {
        /// `QueryService::scrape` output.
        text: String,
    },
}

impl Frame {
    /// The frame's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::Query { .. } => 1,
            Frame::Schema { .. } => 2,
            Frame::Rows { .. } => 3,
            Frame::Explain { .. } => 4,
            Frame::Empty => 5,
            Frame::Error { .. } => 6,
            Frame::Summary { .. } => 7,
            Frame::StatsRequest => 8,
            Frame::Stats { .. } => 9,
        }
    }

    /// Does this frame end a response stream?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Frame::Empty | Frame::Error { .. } | Frame::Summary { .. } | Frame::Stats { .. }
        )
    }

    /// Encode to full wire form: length prefix + tag + body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(self.tag());
        match self {
            Frame::Hello { version } => w.put_u8(*version),
            Frame::Query {
                lang,
                explain,
                trace,
                text,
            } => {
                w.put_u8(lang.wire_tag());
                w.put_u8(explain.wire_tag());
                w.put_bool(*trace);
                w.put_str(text);
            }
            Frame::Schema { name, attrs, key } => {
                w.put_str(name);
                w.put_u16(u16::try_from(attrs.len()).expect("schema degree exceeds u16"));
                for a in attrs {
                    w.put_str(a);
                }
                w.put_u16(u16::try_from(key.len()).expect("key width exceeds u16"));
                for k in key {
                    w.put_u16(*k);
                }
            }
            Frame::Rows { tuples } => {
                w.put_u32(u32::try_from(tuples.len()).expect("batch exceeds u32"));
                for t in tuples {
                    w.put_tuple(t);
                }
            }
            Frame::Explain { plan } => w.put_str(plan),
            Frame::Empty => {}
            Frame::Error { code, message } => {
                w.put_u16(*code);
                w.put_str(message);
            }
            Frame::Summary { info } => {
                w.put_str(&info.canonical);
                w.put_u64(info.fingerprint);
                w.put_bool(info.plan_hit);
                w.put_bool(info.result_hit);
                w.put_bool(info.index_routed);
                w.put_u64(info.threads as u64);
                w.put_u64(info.latency_micros);
            }
            Frame::StatsRequest => {}
            Frame::Stats { text } => w.put_str(text),
        }
        prefix_frame(&w.into_bytes())
    }

    /// Decode a frame payload (tag + body, length prefix already
    /// stripped by the [`crate::codec::FrameReader`]).
    pub fn decode(payload: &[u8]) -> Result<Frame, CodecError> {
        let mut r = ByteReader::new(payload);
        let frame = match r.get_u8()? {
            0 => Frame::Hello {
                version: r.get_u8()?,
            },
            1 => {
                let lang_tag = r.get_u8()?;
                let lang = Lang::from_wire_tag(lang_tag)
                    .ok_or_else(|| CodecError::Corrupt(format!("lang tag {lang_tag}")))?;
                let explain_tag = r.get_u8()?;
                let explain = ExplainOptions::from_wire_tag(explain_tag)
                    .ok_or_else(|| CodecError::Corrupt(format!("explain tag {explain_tag}")))?;
                Frame::Query {
                    lang,
                    explain,
                    trace: r.get_bool()?,
                    text: r.get_str()?,
                }
            }
            2 => {
                let name = r.get_str()?;
                let n_attrs = r.get_u16()?;
                let attrs = (0..n_attrs)
                    .map(|_| r.get_str())
                    .collect::<Result<Vec<_>, _>>()?;
                let n_key = r.get_u16()?;
                let key = (0..n_key)
                    .map(|_| r.get_u16())
                    .collect::<Result<Vec<_>, _>>()?;
                Frame::Schema { name, attrs, key }
            }
            3 => {
                let count = r.get_u32()? as usize;
                if count > r.remaining() {
                    return Err(CodecError::Truncated);
                }
                let tuples = (0..count)
                    .map(|_| r.get_tuple())
                    .collect::<Result<Vec<_>, _>>()?;
                Frame::Rows { tuples }
            }
            4 => Frame::Explain { plan: r.get_str()? },
            5 => Frame::Empty,
            6 => Frame::Error {
                code: r.get_u16()?,
                message: r.get_str()?,
            },
            7 => Frame::Summary {
                info: ResponseInfo {
                    canonical: r.get_str()?,
                    fingerprint: r.get_u64()?,
                    plan_hit: r.get_bool()?,
                    result_hit: r.get_bool()?,
                    index_routed: r.get_bool()?,
                    threads: r.get_u64()? as usize,
                    latency_micros: r.get_u64()?,
                },
            },
            8 => Frame::StatsRequest,
            9 => Frame::Stats { text: r.get_str()? },
            tag => return Err(CodecError::Corrupt(format!("frame tag {tag}"))),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

/// The `Query` frame for a [`Request`].
pub fn request_frame(request: &Request) -> Frame {
    Frame::Query {
        lang: request.lang,
        explain: request.options.explain,
        trace: request.options.trace,
        text: request.text.clone(),
    }
}

/// Rebuild the [`Request`] a `Query` frame carries.
pub fn request_from_frame(frame: &Frame) -> Option<Request> {
    match frame {
        Frame::Query {
            lang,
            explain,
            trace,
            text,
        } => Some(Request {
            text: text.clone(),
            lang: *lang,
            options: RequestOptions {
                explain: *explain,
                trace: *trace,
            },
        }),
        _ => None,
    }
}

/// Flatten a [`Response`] into its frame stream (the server's send
/// order). Shared by the server and the differential tests, so "what
/// the wire says" has exactly one definition.
pub fn response_frames(response: &Response) -> Vec<Frame> {
    match response {
        Response::Rows { answer, info } => {
            let schema = answer.schema();
            let mut frames = vec![Frame::Schema {
                name: schema.name().to_string(),
                attrs: schema.attrs().iter().map(|a| a.to_string()).collect(),
                key: schema
                    .key()
                    .iter()
                    .map(|&k| u16::try_from(k).expect("key index exceeds u16"))
                    .collect(),
            }];
            for batch in answer.tuples().chunks(ROW_BATCH) {
                frames.push(Frame::Rows {
                    tuples: batch.to_vec(),
                });
            }
            frames.push(Frame::Summary { info: info.clone() });
            frames
        }
        Response::Explain { plan, info } => vec![
            Frame::Explain { plan: plan.clone() },
            Frame::Summary { info: info.clone() },
        ],
        Response::Empty => vec![Frame::Empty],
        Response::Error { code, message } => vec![Frame::Error {
            code: code.code(),
            message: message.clone(),
        }],
    }
}

/// Reassemble a [`Response`] from a full frame stream — the inverse of
/// [`response_frames`]. Rejects out-of-order or transport-coded streams.
pub fn response_from_frames(frames: &[Frame]) -> Result<Response, CodecError> {
    match frames {
        [Frame::Empty] => Ok(Response::Empty),
        [Frame::Error { code, message }] => {
            let code = ErrorCode::from_code(*code).ok_or_else(|| {
                CodecError::Corrupt(format!("transport or unknown error code {code}"))
            })?;
            Ok(Response::Error {
                code,
                message: message.clone(),
            })
        }
        [Frame::Explain { plan }, Frame::Summary { info }] => Ok(Response::Explain {
            plan: plan.clone(),
            info: info.clone(),
        }),
        [Frame::Schema { name, attrs, key }, middle @ .., Frame::Summary { info }] => {
            let schema = Schema::from_parts(
                name,
                attrs.iter().map(|a| Arc::from(a.as_str())).collect(),
                key.iter().map(|&k| k as usize).collect(),
            )
            .map_err(|e| CodecError::Corrupt(format!("schema frame: {e}")))?;
            let mut tuples = Vec::new();
            for frame in middle {
                match frame {
                    Frame::Rows { tuples: batch } => tuples.extend(batch.iter().cloned()),
                    other => {
                        return Err(CodecError::Corrupt(format!(
                            "frame tag {} inside a rows stream",
                            other.tag()
                        )))
                    }
                }
            }
            let answer = PolygenRelation::from_tuples(Arc::new(schema), tuples)
                .map_err(|e| CodecError::Corrupt(format!("rows frame: {e}")))?;
            Ok(Response::Rows {
                answer: Arc::new(answer),
                info: info.clone(),
            })
        }
        _ => Err(CodecError::Corrupt(
            "unrecognized response frame sequence".into(),
        )),
    }
}

/// Encode a frame stream with `Summary` frames dropped — the
/// byte-identity view differential tests compare across transports.
pub fn deterministic_bytes(frames: &[Frame]) -> Vec<u8> {
    frames
        .iter()
        .filter(|f| !matches!(f, Frame::Summary { .. }))
        .flat_map(Frame::encode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_core::cell::Cell;
    use polygen_core::source::{SourceId, SourceSet};
    use polygen_flat::value::Value;

    fn info() -> ResponseInfo {
        ResponseInfo {
            canonical: "PENTITY [CAT = c]".into(),
            fingerprint: 0xfeed,
            plan_hit: true,
            result_hit: false,
            index_routed: true,
            threads: 4,
            latency_micros: 1234,
        }
    }

    fn tagged_relation() -> PolygenRelation {
        let schema = Arc::new(
            Schema::new("R", &["A", "B"])
                .unwrap()
                .with_key(&["A"])
                .unwrap(),
        );
        let tuple = |a: i64, src: u16| {
            vec![
                Cell::new(
                    Value::int(a),
                    SourceSet::singleton(SourceId(src)),
                    SourceSet::empty(),
                ),
                Cell::new(
                    Value::str(format!("b{a}")),
                    SourceSet::from_ids([SourceId(src), SourceId(7)]),
                    SourceSet::singleton(SourceId(3)),
                ),
            ]
        };
        PolygenRelation::from_tuples(schema, vec![tuple(1, 0), tuple(2, 1)]).unwrap()
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::Query {
                lang: Lang::App,
                explain: ExplainOptions::Analyze,
                trace: true,
                text: "SELECT * FROM V".into(),
            },
            Frame::Schema {
                name: "R".into(),
                attrs: vec!["A".into(), "B".into()],
                key: vec![0],
            },
            Frame::Rows {
                tuples: tagged_relation().tuples().to_vec(),
            },
            Frame::Explain {
                plan: "Scan PENTITY\n".into(),
            },
            Frame::Empty,
            Frame::Error {
                code: 503,
                message: "overloaded".into(),
            },
            Frame::Summary { info: info() },
            Frame::StatsRequest,
            Frame::Stats {
                text: "# HELP polygen_queries_total Queries served.\n".into(),
            },
        ];
        for frame in frames {
            let wire = frame.encode();
            // Strip the length prefix the FrameReader strips.
            let back = Frame::decode(&wire[4..]).unwrap();
            assert_eq!(back, frame);
            assert_eq!(back.encode(), wire, "decode∘encode must be identity");
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        let rows = Response::Rows {
            answer: Arc::new(tagged_relation()),
            info: info(),
        };
        let explain = Response::Explain {
            plan: "Project\n  Scan R\n".into(),
            info: info(),
        };
        let error = Response::Error {
            code: ErrorCode::UnknownRelation,
            message: "unknown relation Z".into(),
        };
        for response in [rows, explain, Response::Empty, error] {
            let frames = response_frames(&response);
            assert!(frames.last().unwrap().is_terminal());
            assert_eq!(
                frames.iter().filter(|f| f.is_terminal()).count(),
                1,
                "exactly one terminal frame"
            );
            let back = response_from_frames(&frames).unwrap();
            assert_eq!(back, response, "full round trip including info");
        }
    }

    #[test]
    fn row_streams_batch_and_reassemble() {
        let schema = Arc::new(Schema::new("Big", &["N"]).unwrap());
        let tuples: Vec<PolyTuple> = (0..ROW_BATCH as i64 * 2 + 5)
            .map(|n| vec![Cell::retrieved(Value::int(n), SourceId(0))])
            .collect();
        let answer = Arc::new(PolygenRelation::from_tuples(schema, tuples).unwrap());
        let response = Response::Rows {
            answer: Arc::clone(&answer),
            info: info(),
        };
        let frames = response_frames(&response);
        // Schema + 3 batches (256, 256, 5) + summary.
        assert_eq!(frames.len(), 5);
        assert!(matches!(&frames[1], Frame::Rows { tuples } if tuples.len() == ROW_BATCH));
        assert!(matches!(&frames[3], Frame::Rows { tuples } if tuples.len() == 5));
        let back = response_from_frames(&frames).unwrap();
        assert!(back.payload_eq(&response));
    }

    #[test]
    fn summary_is_excluded_from_deterministic_bytes() {
        let answer = Arc::new(tagged_relation());
        let mut other_info = info();
        other_info.latency_micros = 999_999;
        other_info.plan_hit = false;
        other_info.threads = 1;
        let a = response_frames(&Response::Rows {
            answer: Arc::clone(&answer),
            info: info(),
        });
        let b = response_frames(&Response::Rows {
            answer,
            info: other_info,
        });
        assert_ne!(a, b, "summaries differ");
        assert_eq!(
            deterministic_bytes(&a),
            deterministic_bytes(&b),
            "deterministic view ignores the summary"
        );
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert!(response_from_frames(&[]).is_err());
        assert!(response_from_frames(&[Frame::Explain { plan: "p".into() }]).is_err());
        assert!(response_from_frames(&[
            Frame::Schema {
                name: "R".into(),
                attrs: vec!["A".into()],
                key: vec![],
            },
            Frame::Empty,
            Frame::Summary { info: info() },
        ])
        .is_err());
        // Transport codes have no serve-level Response.
        assert!(response_from_frames(&[Frame::Error {
            code: WIRE_MALFORMED,
            message: "bad".into(),
        }])
        .is_err());
        // Unknown tag.
        assert!(matches!(Frame::decode(&[99]), Err(CodecError::Corrupt(_))));
        // Trailing garbage.
        assert!(matches!(
            Frame::decode(&[5, 0]),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn query_frames_carry_requests_both_ways() {
        let variants = [
            Request::app("SELECT * FROM V").with_explain(true),
            Request::sql("SELECT A FROM R").with_explain_mode(ExplainOptions::Analyze),
            Request::algebra("R [A = 1]").with_trace(true),
        ];
        for req in variants {
            let frame = request_frame(&req);
            let back = request_from_frame(&frame).unwrap();
            assert_eq!(back, req);
        }
        assert_eq!(request_from_frame(&Frame::Empty), None);
        // An out-of-range explain tag is corrupt, not silently Off.
        let mut w = crate::codec::ByteWriter::new();
        w.put_u8(1); // Query tag
        w.put_u8(0); // Lang::Sql
        w.put_u8(9); // bogus explain mode
        w.put_bool(false);
        w.put_str("SELECT A FROM R");
        assert!(matches!(
            Frame::decode(&w.into_bytes()),
            Err(CodecError::Corrupt(_))
        ));
    }
}
