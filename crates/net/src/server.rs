//! The TCP front door: an evented poller over nonblocking sockets.
//!
//! Threading model: **one poller thread owns every connection socket**
//! (readiness via the [`crate::sys`] shim — epoll on Linux, a portable
//! scan fallback elsewhere) and a **bounded worker pool** runs queries.
//! The poller drives each connection's [`FrameReader`] incrementally on
//! read-readiness, hands decoded requests to the workers over a
//! channel, and queues the workers' encoded responses into
//! per-connection outbound buffers that drain on write-readiness. A
//! thousand idle connections therefore cost a thousand *registrations*,
//! not a thousand parked reader threads: the server runs O(workers)
//! threads total, independent of session count.
//!
//! All query work still happens inside [`QueryService::execute`], which
//! is where admission control bounds concurrency; overload surfaces as
//! a structured `Error { code: 503 }` frame on a healthy connection,
//! never a dropped socket. Each connection has at most one request in
//! flight (responses stay in request order); while a request executes,
//! the poller drops the connection's read interest, so a pipelining
//! client is throttled by kernel socket buffers, not server memory.
//!
//! Writes never block a thread. Responses land in the connection's
//! outbound buffer and flush as the socket accepts bytes. A peer that
//! stops draining its responses hits [`OUTBOUND_CAP`]: the connection
//! is closed with a best-effort [`WIRE_BACKPRESSURE`] error — a slow
//! reader costs one socket, and [`NetServer::shutdown`] can no longer
//! be hung by a stalled `write_all`.
//!
//! Accept errors are classified, not fatal by default: a peer that
//! aborts mid-handshake (`ECONNABORTED`), a signal (`EINTR`), or a
//! transient descriptor/buffer shortage (`EMFILE`/`ENFILE`/`ENOBUFS`)
//! must never kill the listener — only errors that mean the listener
//! itself is gone stop accepting.

use crate::codec::{CodecError, FramePoll, FrameReader};
use crate::protocol::{
    request_from_frame, response_frames, Frame, PROTOCOL_VERSION, WIRE_BACKPRESSURE,
    WIRE_MALFORMED, WIRE_UNEXPECTED_FRAME,
};
use crate::sys::{self, AsSockId, Event, Interest, Poller, WakeReceiver, Waker};
use polygen_obs::session::SessionStats;
use polygen_obs::trace::Trace;
use polygen_serve::request::Request;
use polygen_serve::service::QueryService;
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long one poller wait blocks before re-checking the shutdown flag
/// and re-polling for accepts. Readiness returns the moment anything
/// happens, so this bounds only shutdown/accept latency in the quiet
/// case — not query latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Backoff after a resource-exhaustion accept failure (`EMFILE` and
/// kin): retrying instantly would spin the CPU against a full table,
/// while a short sleep gives connections a chance to close.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);

/// Per-connection cap on *buffered unsent* response bytes. The check
/// runs before a new response is queued, so any single response can
/// exceed the cap transiently — what trips it is a peer that has left a
/// previous response undrained. Tripping it closes the connection with
/// [`WIRE_BACKPRESSURE`].
const OUTBOUND_CAP: usize = 4 * 1024 * 1024;

/// How long shutdown keeps flushing in-flight responses before
/// abandoning undrained connections. This is the bound that makes
/// shutdown deadline-safe against stalled peers.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(750);

/// Poller token of the listener registration.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the waker registration.
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection; tokens are never reused, so a
/// late completion for a closed connection simply finds nobody.
const TOKEN_FIRST_CONN: u64 = 2;

/// What the accept loop should do about an `accept(2)` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptDisposition {
    /// No connection pending (`EWOULDBLOCK`) — wait for readiness.
    Idle,
    /// A transient, per-connection failure (the peer aborted, a signal
    /// interrupted the call) — retry immediately; the listener is fine.
    Retry,
    /// Resource exhaustion (`EMFILE`/`ENFILE`/`ENOBUFS`/`ENOMEM`) —
    /// retry after a short backoff instead of spinning.
    Backoff,
    /// The listener itself is broken; accepting again cannot succeed.
    Fatal,
}

/// Classify an `accept(2)` error. Only errors that condemn the
/// *listener* are fatal; everything that condemns one would-be
/// *connection* (or nothing at all) is retryable.
pub(crate) fn classify_accept_error(e: &std::io::Error) -> AcceptDisposition {
    match e.kind() {
        ErrorKind::WouldBlock => AcceptDisposition::Idle,
        ErrorKind::Interrupted | ErrorKind::ConnectionAborted | ErrorKind::ConnectionReset => {
            AcceptDisposition::Retry
        }
        _ => match e.raw_os_error() {
            // EMFILE(24) / ENFILE(23): descriptor tables full;
            // ENOBUFS(105) / ENOMEM(12): kernel memory pressure.
            // All clear as connections close — back off, don't die.
            Some(12 | 23 | 24 | 105) => AcceptDisposition::Backoff,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// The poller's view of a listener — real [`TcpListener`] in
/// production, an injected fake in lifecycle tests.
pub(crate) trait Acceptor {
    /// Accept one pending connection, nonblocking semantics.
    fn poll_accept(&self) -> std::io::Result<TcpStream>;

    /// The socket to register for accept-readiness, if there is one.
    /// Fakes return `None` and are simply polled every loop tick.
    fn registration(&self) -> Option<sys::SockId> {
        None
    }
}

impl Acceptor for TcpListener {
    fn poll_accept(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(stream, _peer)| stream)
    }

    fn registration(&self) -> Option<sys::SockId> {
        Some(self.sock_id())
    }
}

/// Tuning knobs for [`NetServer::spawn_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetServerOptions {
    /// Worker threads executing queries. The floor of 2 in the default
    /// keeps admission-control shedding observable even on one core:
    /// two workers can race into `execute` and let the gate refuse one.
    pub workers: usize,
    /// Per-connection cap on buffered unsent response bytes before the
    /// peer is declared stalled and closed with [`WIRE_BACKPRESSURE`].
    pub outbound_cap: usize,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        NetServerOptions {
            workers: cores.max(2),
            outbound_cap: OUTBOUND_CAP,
        }
    }
}

/// A running TCP server; dropping it (or calling
/// [`NetServer::shutdown`]) stops the poller, joins the worker pool,
/// and closes every connection.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    waker: Waker,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `service` until shutdown, with default options.
    pub fn spawn(service: Arc<QueryService>, addr: &str) -> std::io::Result<NetServer> {
        Self::spawn_with(service, addr, NetServerOptions::default())
    }

    /// [`NetServer::spawn`] with explicit worker-pool / backpressure
    /// tuning.
    pub fn spawn_with(
        service: Arc<QueryService>,
        addr: &str,
        options: NetServerOptions,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let (waker, wake_rx) = sys::wake_pair()?;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..options.workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let job_rx = Arc::clone(&job_rx);
                let completions = Arc::clone(&completions);
                let waker = waker.try_clone()?;
                Ok(std::thread::spawn(move || {
                    worker_loop(service, stop, job_rx, completions, waker)
                }))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let poller = {
            let stop = Arc::clone(&stop);
            let open = Arc::clone(&open);
            std::thread::spawn(move || {
                let mut loop_state = PollerLoop::new(
                    listener,
                    service,
                    options,
                    stop,
                    open,
                    wake_rx,
                    job_tx,
                    completions,
                );
                loop_state.run();
            })
        };

        Ok(NetServer {
            addr,
            stop,
            open,
            waker,
            poller: Some(poller),
            workers,
        })
    }

    /// The bound address — connect clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections the poller currently tracks. Finished sessions are
    /// dropped the moment their hangup/EOF surfaces, so under
    /// connect/disconnect load this stays bounded by the number of
    /// *live* sessions — the regression guard for the old
    /// grow-without-bound handle list.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Stop accepting, flush in-flight responses (bounded by
    /// [`SHUTDOWN_GRACE`] — a stalled peer cannot hang this), join the
    /// poller and every worker.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.poller.take() {
            let _ = handle.join();
        }
        // The poller drops the job sender on exit, so workers see a
        // closed channel (or the stop flag) and unwind.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One decoded request on its way to the worker pool. The two instants
/// bracket the poller's frame decode, so a traced request's waterfall
/// starts at the wire (`net/decode`, then `net/queue` until a worker
/// picks the job up).
struct Job {
    token: u64,
    request: Request,
    /// The connection's live-session entry: the worker brackets
    /// execution with `begin_query`/`finish_query` so `sys.sessions`
    /// shows what each wire connection is running *right now*.
    stats: Arc<SessionStats>,
    decode_start: Instant,
    decode_done: Instant,
}

/// A traced request's recorder, riding the completion back to the
/// poller so the response-flush span and the slow-log observation can
/// happen where flushing actually happens.
struct InFlightTrace {
    trace: Trace,
    query: String,
    started: Instant,
}

/// One encoded response on its way back to the poller.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    trace: Option<InFlightTrace>,
}

/// Worker: pull a job, execute it (admission control happens inside
/// `execute`), hand the encoded frames back, nudge the poller. The lock
/// is held only around `recv` — never across query execution.
///
/// A request with `options.trace` set runs under an enabled recorder:
/// the worker stamps the wire-side `net/decode` and `net/queue` spans
/// (root-level, from the job's instants), the service nests its
/// parse/plan/execute waterfall under `execute_traced`, and the
/// recorder rides the completion so the poller can close the loop with
/// `net/flush` once the response drains.
fn worker_loop(
    service: Arc<QueryService>,
    stop: Arc<AtomicBool>,
    jobs: Arc<Mutex<mpsc::Receiver<Job>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
) {
    loop {
        let job = {
            let rx = jobs.lock().expect("job queue poisoned");
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let trace = if job.request.options.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        let in_flight = trace.is_enabled().then(|| {
            let picked = Instant::now();
            trace.record_closed("net/decode", job.decode_start, job.decode_done);
            trace.record_closed("net/queue", job.decode_done, picked);
            InFlightTrace {
                trace: trace.clone(),
                query: job.request.text.clone(),
                started: job.decode_start,
            }
        });
        job.stats
            .begin_query(&job.request.text, job.request.lang.label());
        let response = service.execute_traced(job.request, &trace);
        let rows = response.rows().map_or(0, |r| r.len() as u64);
        job.stats
            .finish_query(rows, response.error_code().is_some());
        let mut bytes = Vec::new();
        for frame in response_frames(&response) {
            bytes.extend_from_slice(&frame.encode());
        }
        completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion {
                token: job.token,
                bytes,
                trace: in_flight,
            });
        waker.wake();
    }
}

/// Per-connection poller state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded-but-unsent response bytes; `sent` is the cursor of what
    /// the socket has taken so far.
    out: Vec<u8>,
    sent: usize,
    /// A request is executing on a worker; reads pause until its
    /// response is queued (kernel buffers throttle a pipelining peer).
    busy: bool,
    /// Close once `out` drains (set after a protocol violation or a
    /// backpressure refusal — the error frame is the last thing sent).
    closing: bool,
    /// Interest currently registered with the poller, to skip no-op
    /// re-registrations.
    registered: Interest,
    /// A traced request whose response is draining: `flush_start` opens
    /// the `net/flush` span, closed (and the waterfall fed to the
    /// slow-query log) when the outbound buffer empties.
    in_flight: Option<FlushState>,
    /// This connection's entry in the service's live-session registry
    /// (one wire connection = one `sys.sessions` row, deregistered on
    /// close).
    stats: Arc<SessionStats>,
}

/// The tail of a traced request's waterfall, owned by the poller while
/// the response flushes.
struct FlushState {
    trace: InFlightTrace,
    flush_start: Instant,
}

impl Conn {
    fn pending(&self) -> usize {
        self.out.len() - self.sent
    }

    /// The readiness this connection wants right now.
    fn desired_interest(&self) -> Interest {
        Interest {
            read: !self.busy && !self.closing,
            write: self.pending() > 0,
        }
    }
}

/// Why a connection is being torn down (drives metrics).
enum CloseCause {
    /// Peer hangup, protocol violation, IO error, shutdown.
    Ordinary,
    /// The outbound cap tripped.
    Backpressure,
}

/// Everything the poller thread owns.
struct PollerLoop<A: Acceptor> {
    listener: A,
    service: Arc<QueryService>,
    options: NetServerOptions,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    wake_rx: WakeReceiver,
    job_tx: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Set on a fatal listener error: stop accepting, drain what's
    /// open, exit when nothing is left.
    accept_dead: bool,
}

impl<A: Acceptor> PollerLoop<A> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: A,
        service: Arc<QueryService>,
        options: NetServerOptions,
        stop: Arc<AtomicBool>,
        open: Arc<AtomicUsize>,
        wake_rx: WakeReceiver,
        job_tx: mpsc::Sender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
    ) -> Self {
        let mut poller = Poller::new().expect("readiness poller");
        if let Some(id) = listener.registration() {
            poller
                .add(id, TOKEN_LISTENER, Interest::READ)
                .expect("register listener");
        }
        #[cfg(unix)]
        poller
            .add(wake_rx.sock_id(), TOKEN_WAKER, Interest::READ)
            .expect("register waker");
        PollerLoop {
            listener,
            service,
            options,
            stop,
            open,
            wake_rx,
            job_tx,
            completions,
            poller,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            accept_dead: false,
        }
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            if self.poller.wait(&mut events, POLL_INTERVAL).is_err() {
                break;
            }
            self.wake_rx.drain();
            // Accept every tick, not only on listener readiness: the
            // scan backend and injected test acceptors have no
            // registration, and a spurious extra accept is one cheap
            // WouldBlock.
            if !self.accept_dead {
                self.drain_accepts();
            }
            self.drain_completions();
            let round: Vec<Event> = std::mem::take(&mut events);
            for event in round {
                if event.token < TOKEN_FIRST_CONN {
                    continue;
                }
                if !self.conns.contains_key(&event.token) {
                    continue;
                }
                if event.hangup {
                    self.close(event.token, CloseCause::Ordinary);
                    continue;
                }
                if event.writable {
                    self.flush(event.token);
                }
                if event.readable {
                    self.advance_reads(event.token);
                }
            }
            self.publish_open();
            if self.accept_dead && self.conns.is_empty() {
                break;
            }
        }
        self.drain_on_shutdown();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close(token, CloseCause::Ordinary);
        }
        self.publish_open();
        // Dropping self.job_tx (with the loop) closes the worker
        // channel; NetServer joins the workers after this thread.
    }

    /// Best-effort bounded flush of in-flight work at shutdown: wait
    /// for busy workers and drain outbound buffers, but never past
    /// [`SHUTDOWN_GRACE`] — a peer that won't read loses its tail.
    fn drain_on_shutdown(&mut self) {
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        let mut events: Vec<Event> = Vec::new();
        loop {
            let unfinished = self.conns.values().any(|c| c.busy || c.pending() > 0);
            if !unfinished || Instant::now() >= deadline {
                return;
            }
            events.clear();
            let _ = self.poller.wait(&mut events, Duration::from_millis(10));
            self.wake_rx.drain();
            self.drain_completions();
            let tokens: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.pending() > 0)
                .map(|(&t, _)| t)
                .collect();
            for token in tokens {
                self.flush(token);
            }
        }
    }

    fn publish_open(&self) {
        self.open.store(self.conns.len(), Ordering::Relaxed);
    }

    /// Accept until the listener runs dry (or errors out).
    fn drain_accepts(&mut self) {
        loop {
            match self.listener.poll_accept() {
                Ok(stream) => self.admit(stream),
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Idle => return,
                    AcceptDisposition::Retry => continue,
                    AcceptDisposition::Backoff => {
                        // Rare resource exhaustion: a short blocking
                        // sleep beats a 100%-CPU retry spin, even at
                        // the cost of pausing the poller briefly.
                        std::thread::sleep(ACCEPT_BACKOFF);
                        return;
                    }
                    AcceptDisposition::Fatal => {
                        self.accept_dead = true;
                        return;
                    }
                },
            }
        }
    }

    /// Register a fresh connection and greet it.
    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
        let stats = self.service.sessions().register(&peer);
        let mut conn = Conn {
            stream,
            reader: FrameReader::new(),
            out: Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
            sent: 0,
            busy: false,
            closing: false,
            registered: Interest {
                read: false,
                write: false,
            },
            in_flight: None,
            stats,
        };
        let id = conn.stream.sock_id();
        let interest = conn.desired_interest();
        if self.poller.add(id, token, interest).is_err() {
            self.service.sessions().deregister(conn.stats.id());
            return;
        }
        conn.registered = interest;
        self.service.live_metrics().record_conn_opened();
        self.conns.insert(token, conn);
        self.flush(token);
        self.publish_open();
    }

    /// Re-register a connection's interest if it changed.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired != conn.registered {
            let id = conn.stream.sock_id();
            if self.poller.modify(id, token, desired).is_ok() {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.registered = desired;
                }
            }
        }
    }

    /// Move queued responses from workers into connection buffers.
    fn drain_completions(&mut self) {
        let ready: Vec<Completion> =
            std::mem::take(&mut *self.completions.lock().expect("completion queue poisoned"));
        for done in ready {
            // A completion for a connection that hung up mid-query
            // finds nobody — tokens are never reused, so it can't be
            // misdelivered either.
            if !self.conns.contains_key(&done.token) {
                continue;
            }
            self.enqueue_response(done.token, done.bytes, done.trace);
        }
    }

    /// Queue response bytes for a connection, enforcing the
    /// backpressure cap *before* appending: leftover unsent bytes mean
    /// the peer is not draining, and it is cut off rather than buffered
    /// without bound. (Checking before the append is what allows any
    /// single response to exceed the cap.)
    fn enqueue_response(&mut self, token: u64, bytes: Vec<u8>, trace: Option<InFlightTrace>) {
        let stalled = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.busy = false;
            conn.pending() > self.options.outbound_cap
        };
        if stalled {
            self.close(token, CloseCause::Backpressure);
            return;
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            // Drop the already-sent prefix so the buffer doesn't grow
            // monotonically across a long session.
            conn.out.drain(..conn.sent);
            conn.sent = 0;
            conn.out.extend_from_slice(&bytes);
            conn.in_flight = trace.map(|trace| FlushState {
                trace,
                flush_start: Instant::now(),
            });
        }
        self.flush(token);
        // The reader may hold a complete pipelined frame that arrived
        // while this request executed; readiness won't re-announce it.
        self.advance_reads(token);
    }

    /// Write as much of the outbound buffer as the socket accepts.
    fn flush(&mut self, token: u64) {
        let mut closed = false;
        let mut drained = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.pending() > 0 {
                match conn.stream.write(&conn.out[conn.sent..]) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(n) => conn.sent += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            if conn.pending() == 0 {
                conn.out.clear();
                conn.sent = 0;
                drained = conn.in_flight.take();
                if conn.closing {
                    closed = true;
                }
            }
        }
        if let Some(state) = drained {
            // The response fully left the socket: close the waterfall
            // with the flush span and feed it to the slow-query log
            // (the worker skipped the in-service observation because
            // it passed its own enabled recorder).
            let t = state.trace;
            t.trace
                .record_closed("net/flush", state.flush_start, Instant::now());
            self.service
                .observe_slow(&t.query, t.started.elapsed(), &t.trace);
        }
        if closed {
            self.close(token, CloseCause::Ordinary);
        } else {
            self.update_interest(token);
        }
    }

    /// Drive the frame reader while the connection is idle; dispatch at
    /// most one request (per-connection response ordering), then pause
    /// reads until its completion re-enters here.
    fn advance_reads(&mut self, token: u64) {
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.closing {
                return;
            }
            // One poll either drains the socket to WouldBlock or yields
            // one complete frame (any surplus stays buffered in the
            // reader for the post-completion re-check).
            match conn.reader.poll(&mut conn.stream) {
                Ok(FramePoll::Payload(payload)) => ReadAction::Frame(payload),
                Ok(FramePoll::Idle) => ReadAction::Idle,
                Ok(FramePoll::Closed) => ReadAction::Close,
                Err(CodecError::Truncated) => ReadAction::Close,
                Err(e) => ReadAction::Refuse(WIRE_MALFORMED, e.to_string()),
            }
        };
        match action {
            ReadAction::Idle => self.update_interest(token),
            ReadAction::Close => self.close(token, CloseCause::Ordinary),
            ReadAction::Refuse(code, why) => self.refuse(token, code, &why),
            ReadAction::Frame(payload) => {
                let decode_start = Instant::now();
                let frame = match Frame::decode(&payload) {
                    Ok(frame) => frame,
                    Err(e) => {
                        self.refuse(token, WIRE_MALFORMED, &e.to_string());
                        return;
                    }
                };
                if matches!(frame, Frame::StatsRequest) {
                    // Stats are served by the poller itself — no worker
                    // dispatch, no admission — so a scrape succeeds even
                    // when the query path is saturated.
                    let bytes = Frame::Stats {
                        text: self.service.scrape(),
                    }
                    .encode();
                    self.enqueue_response(token, bytes, None);
                    return;
                }
                let Some(request) = request_from_frame(&frame) else {
                    let why = format!("expected a Query frame, got tag {}", frame.tag());
                    self.refuse(token, WIRE_UNEXPECTED_FRAME, &why);
                    return;
                };
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.busy = true;
                let job = Job {
                    token,
                    request,
                    stats: Arc::clone(&conn.stats),
                    decode_start,
                    decode_done: Instant::now(),
                };
                if self.job_tx.send(job).is_err() {
                    // Workers are gone — the server is unwinding.
                    self.close(token, CloseCause::Ordinary);
                    return;
                }
                self.update_interest(token);
            }
        }
    }

    /// Send a transport-coded error, then close once it flushes: once
    /// framing is in doubt the stream cannot be resynchronized.
    fn refuse(&mut self, token: u64, code: u16, message: &str) {
        let bytes = Frame::Error {
            code,
            message: message.to_string(),
        }
        .encode();
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.closing = true;
            conn.out.drain(..conn.sent);
            conn.sent = 0;
            conn.out.extend_from_slice(&bytes);
        }
        self.flush(token);
    }

    /// Tear a connection down and record why.
    fn close(&mut self, token: u64, cause: CloseCause) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let metrics = self.service.live_metrics();
        if let CloseCause::Backpressure = cause {
            // Best-effort parting shot: whatever fits in the socket
            // buffer of an already-stalled peer.
            metrics.record_conn_backpressure_close();
            let mut stream = &conn.stream;
            let _ = stream.write(
                &Frame::Error {
                    code: WIRE_BACKPRESSURE,
                    message: "outbound buffer cap exceeded; peer not draining responses"
                        .to_string(),
                }
                .encode(),
            );
        }
        metrics.record_conn_closed();
        self.service.sessions().deregister(conn.stats.id());
        let _ = self.poller.remove(conn.stream.sock_id());
        // conn (and its socket) drops here.
        self.publish_open();
    }
}

/// Outcome of one reader poll, decided while the connection was
/// mutably borrowed.
enum ReadAction {
    Idle,
    Close,
    Refuse(u16, String),
    Frame(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_serve::service::{QueryService, ServeOptions};
    use polygen_workload::{self as workload, WorkloadConfig};
    use std::collections::VecDeque;
    use std::io;
    use std::time::Instant;

    fn tiny_service() -> Arc<QueryService> {
        let scenario =
            workload::generate(&WorkloadConfig::default().with_sources(2).with_entities(8));
        Arc::new(QueryService::for_scenario(
            &scenario,
            ServeOptions::default(),
        ))
    }

    /// An injected listener: a scripted sequence of accept outcomes,
    /// then `WouldBlock` forever.
    struct FakeAcceptor {
        script: Mutex<VecDeque<io::Result<TcpStream>>>,
    }

    impl FakeAcceptor {
        fn new(script: Vec<io::Result<TcpStream>>) -> Self {
            FakeAcceptor {
                script: Mutex::new(script.into_iter().collect()),
            }
        }
    }

    impl Acceptor for FakeAcceptor {
        fn poll_accept(&self) -> io::Result<TcpStream> {
            self.script
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or_else(|| Err(io::Error::from(ErrorKind::WouldBlock)))
        }
    }

    /// Run a poller loop over an injected acceptor, with a real worker
    /// pool, and return the thread handle plus stop flag and waker.
    fn spawn_test_loop(
        acceptor: FakeAcceptor,
        open: Arc<AtomicUsize>,
    ) -> (JoinHandle<()>, Arc<AtomicBool>, Waker) {
        let service = tiny_service();
        let stop = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = sys::wake_pair().unwrap();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        // One worker is enough for the lifecycle tests.
        {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let completions = Arc::clone(&completions);
            let waker = waker.try_clone().unwrap();
            std::thread::spawn(move || worker_loop(service, stop, job_rx, completions, waker));
        }
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut loop_state = PollerLoop::new(
                    acceptor,
                    service,
                    NetServerOptions::default(),
                    stop,
                    open,
                    wake_rx,
                    job_tx,
                    completions,
                );
                loop_state.run();
            })
        };
        (handle, stop, waker)
    }

    #[test]
    fn accept_error_classification() {
        use AcceptDisposition::*;
        let cases = [
            (io::Error::from(ErrorKind::WouldBlock), Idle),
            (io::Error::from(ErrorKind::Interrupted), Retry),
            (io::Error::from(ErrorKind::ConnectionAborted), Retry),
            (io::Error::from(ErrorKind::ConnectionReset), Retry),
            (io::Error::from_raw_os_error(24), Backoff), // EMFILE
            (io::Error::from_raw_os_error(23), Backoff), // ENFILE
            (io::Error::from_raw_os_error(105), Backoff), // ENOBUFS
            (io::Error::from(ErrorKind::InvalidInput), Fatal),
            (io::Error::from(ErrorKind::NotConnected), Fatal),
        ];
        for (error, expected) in cases {
            assert_eq!(classify_accept_error(&error), expected, "{error:?}");
        }
    }

    /// The satellite bug: any non-WouldBlock accept error used to kill
    /// the listener for good. With an injected erroring listener, the
    /// loop must survive `ECONNABORTED`, `EINTR` and `EMFILE` and still
    /// serve the connection scripted after them.
    #[test]
    fn transient_accept_errors_do_not_kill_the_listener() {
        // A real socket pair for the post-error accept to hand out.
        let rendezvous = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = rendezvous.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _peer) = rendezvous.accept().unwrap();

        let acceptor = FakeAcceptor::new(vec![
            Err(io::Error::from(ErrorKind::ConnectionAborted)),
            Err(io::Error::from(ErrorKind::Interrupted)),
            Err(io::Error::from_raw_os_error(24)), // EMFILE
            Ok(served),
        ]);
        let open = Arc::new(AtomicUsize::new(0));
        let (loop_handle, stop, waker) = spawn_test_loop(acceptor, Arc::clone(&open));

        // The connection accepted *after* the transient errors greets —
        // proof the listener survived them.
        let mut reader = FrameReader::new();
        let mut blocking = client;
        blocking
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let payload = loop {
            match reader.poll(&mut blocking).expect("greeting decodes") {
                FramePoll::Payload(p) => break p,
                FramePoll::Idle => continue,
                FramePoll::Closed => panic!("listener died on a transient accept error"),
            }
        };
        assert_eq!(
            Frame::decode(&payload).unwrap(),
            Frame::Hello {
                version: PROTOCOL_VERSION
            }
        );

        stop.store(true, Ordering::SeqCst);
        waker.wake();
        loop_handle.join().unwrap();
    }

    /// A fatal listener error still stops the loop once nothing is left
    /// to serve (it must not spin on an unusable listener).
    #[test]
    fn fatal_accept_errors_stop_the_loop() {
        let acceptor = FakeAcceptor::new(vec![Err(io::Error::from(ErrorKind::InvalidInput))]);
        let open = Arc::new(AtomicUsize::new(0));
        let (handle, _stop, _waker) = spawn_test_loop(acceptor, open);
        let started = Instant::now();
        handle.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fatal error should end the loop promptly"
        );
    }

    /// The acceptance path for the system catalog: plain Query frames
    /// over TCP answer `sys.*` selects, the connection itself shows up
    /// in `sys.sessions` under its real peer address, and closing the
    /// socket drains its registry entry.
    #[test]
    fn sys_catalog_serves_over_the_wire() {
        use crate::client::NetClient;
        use polygen_flat::value::Value;
        use polygen_serve::request::{Request, Response};
        let service = tiny_service();
        let server = NetServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let mut client = NetClient::connect(server.addr()).expect("connect");
        let resp = client
            .execute(&Request::sql("SELECT SOURCE, VERSION FROM sys.sources"))
            .unwrap();
        let Response::Rows { answer, info } = &resp else {
            panic!("expected rows, got {resp:?}");
        };
        assert!(!answer.is_empty());
        assert!(!info.result_hit, "sys answers are never cached");
        let resp = client
            .execute(&Request::sql(
                "SELECT SESSION_ID, PEER, QUERY FROM sys.sessions",
            ))
            .unwrap();
        let Response::Rows { answer, .. } = &resp else {
            panic!("expected rows, got {resp:?}");
        };
        assert_eq!(answer.len(), 1, "one wire connection, one session row");
        let peer_seen = answer
            .tuples()
            .iter()
            .flat_map(|t| t.iter())
            .any(|c| matches!(&c.datum, Value::Str(s) if s.starts_with("127.0.0.1")));
        assert!(peer_seen, "the session row carries the peer address");
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(10);
        while !service.sessions().is_empty() {
            assert!(
                Instant::now() < deadline,
                "closed connection never left the session registry"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    /// The satellite bug: finished connections used to leak tracking
    /// state (reaping only ran in the WouldBlock arm). The poller drops
    /// a connection the moment its hangup surfaces; after a burst of
    /// short-lived sessions the tracked count must fall back to zero.
    #[test]
    fn finished_connections_are_reaped_under_connect_load() {
        let server = NetServer::spawn(tiny_service(), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        for _ in 0..32 {
            // Connect, then hang up immediately.
            let stream = TcpStream::connect(addr).expect("connect");
            drop(stream);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.open_connections() > 0 {
            assert!(
                Instant::now() < deadline,
                "{} finished connections never reaped",
                server.open_connections()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }
}
