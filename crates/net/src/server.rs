//! The TCP front door: accept loop, per-connection tasks, graceful
//! shutdown.
//!
//! Threading model: one lightweight connection task per session. The
//! connection thread only parses frames and writes responses — all
//! query work happens inside [`QueryService::execute`], which is where
//! admission control bounds concurrency and the shared thread budget
//! splits workers across active queries. A thousand idle connections
//! therefore cost a thousand parked readers, not a thousand executing
//! queries; and overload surfaces as a structured `Error { code: 503 }`
//! frame on a healthy connection, never a dropped socket.
//!
//! Both the accept loop and connection reads run under short timeouts
//! so [`NetServer::shutdown`] can set one flag and join every thread.

use crate::codec::{CodecError, FramePoll, FrameReader};
use crate::protocol::{
    request_from_frame, response_frames, Frame, PROTOCOL_VERSION, WIRE_MALFORMED,
    WIRE_UNEXPECTED_FRAME,
};
use polygen_serve::service::QueryService;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection read blocks before re-checking the shutdown
/// flag. A read returns the moment data arrives, so this bounds only
/// shutdown latency — not query latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// How long the accept loop sleeps when no connection is pending. This
/// one *is* connect latency (a fresh client waits out the remainder of
/// the current sleep), so it stays much tighter than [`POLL_INTERVAL`].
const ACCEPT_INTERVAL: Duration = Duration::from_millis(1);

/// A running TCP server; dropping it (or calling
/// [`NetServer::shutdown`]) stops the accept loop and joins every
/// connection thread.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `service` until shutdown.
    pub fn spawn(service: Arc<QueryService>, addr: &str) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, service, stop))
        };
        Ok(NetServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address — connect clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish in-flight responses, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<QueryService>, stop: Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    // A connection that dies mid-handshake is the
                    // peer's problem; the server must keep accepting.
                    let _ = serve_connection(stream, &service, &stop);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished connection threads so a long-lived
                // server does not accumulate handles.
                connections.retain(|h| !h.is_finished());
                std::thread::sleep(ACCEPT_INTERVAL);
            }
            Err(_) => break,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Drive one session: greet, then answer queries until the peer hangs
/// up, the protocol is violated, or the server shuts down.
fn serve_connection(
    mut stream: TcpStream,
    service: &QueryService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )?;
    let mut reader = FrameReader::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match reader.poll(&mut stream) {
            Ok(FramePoll::Payload(payload)) => payload,
            Ok(FramePoll::Idle) => continue,
            Ok(FramePoll::Closed) => return Ok(()),
            Err(CodecError::Truncated) => return Ok(()),
            Err(e) => return refuse(&mut stream, WIRE_MALFORMED, &e.to_string()),
        };
        let frame = match Frame::decode(&payload) {
            Ok(frame) => frame,
            Err(e) => return refuse(&mut stream, WIRE_MALFORMED, &e.to_string()),
        };
        let Some(request) = request_from_frame(&frame) else {
            let why = format!("expected a Query frame, got tag {}", frame.tag());
            return refuse(&mut stream, WIRE_UNEXPECTED_FRAME, &why);
        };
        // All admission control, shedding, caching and execution happen
        // in here; a shed query comes back as a structured Error
        // response and the connection lives on.
        let response = service.execute(request);
        for frame in response_frames(&response) {
            write_frame(&mut stream, &frame)?;
        }
    }
}

/// Send a transport-coded error, then close (by returning): once
/// framing is in doubt the stream cannot be resynchronized.
fn refuse(stream: &mut TcpStream, code: u16, message: &str) -> std::io::Result<()> {
    write_frame(
        stream,
        &Frame::Error {
            code,
            message: message.to_string(),
        },
    )
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&frame.encode())
}
