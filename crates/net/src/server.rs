//! The TCP front door: accept loop, per-connection tasks, graceful
//! shutdown.
//!
//! Threading model: one lightweight connection task per session. The
//! connection thread only parses frames and writes responses — all
//! query work happens inside [`QueryService::execute`], which is where
//! admission control bounds concurrency and the shared thread budget
//! splits workers across active queries. A thousand idle connections
//! therefore cost a thousand parked readers, not a thousand executing
//! queries; and overload surfaces as a structured `Error { code: 503 }`
//! frame on a healthy connection, never a dropped socket.
//!
//! Both the accept loop and connection reads run under short timeouts
//! so [`NetServer::shutdown`] can set one flag and join every thread.
//!
//! Accept errors are classified, not fatal by default: a peer that
//! aborts mid-handshake (`ECONNABORTED`), a signal (`EINTR`), or a
//! transient descriptor/buffer shortage (`EMFILE`/`ENFILE`/`ENOBUFS`)
//! must never kill the listener — only errors that mean the listener
//! itself is gone break the loop.

use crate::codec::{CodecError, FramePoll, FrameReader};
use crate::protocol::{
    request_from_frame, response_frames, Frame, PROTOCOL_VERSION, WIRE_MALFORMED,
    WIRE_UNEXPECTED_FRAME,
};
use polygen_serve::service::QueryService;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection read blocks before re-checking the shutdown
/// flag. A read returns the moment data arrives, so this bounds only
/// shutdown latency — not query latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// How long the accept loop sleeps when no connection is pending. This
/// one *is* connect latency (a fresh client waits out the remainder of
/// the current sleep), so it stays much tighter than [`POLL_INTERVAL`].
const ACCEPT_INTERVAL: Duration = Duration::from_millis(1);

/// Backoff after a resource-exhaustion accept failure (`EMFILE` and
/// kin): retrying instantly would spin the CPU against a full table,
/// while a short sleep gives connections a chance to close.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);

/// What the accept loop should do about an `accept(2)` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptDisposition {
    /// No connection pending (`EWOULDBLOCK`) — sleep the normal
    /// interval and poll again.
    Idle,
    /// A transient, per-connection failure (the peer aborted, a signal
    /// interrupted the call) — retry immediately; the listener is fine.
    Retry,
    /// Resource exhaustion (`EMFILE`/`ENFILE`/`ENOBUFS`/`ENOMEM`) —
    /// retry after a short backoff instead of spinning.
    Backoff,
    /// The listener itself is broken; accepting again cannot succeed.
    Fatal,
}

/// Classify an `accept(2)` error. Only errors that condemn the
/// *listener* are fatal; everything that condemns one would-be
/// *connection* (or nothing at all) is retryable.
pub(crate) fn classify_accept_error(e: &std::io::Error) -> AcceptDisposition {
    match e.kind() {
        ErrorKind::WouldBlock => AcceptDisposition::Idle,
        ErrorKind::Interrupted | ErrorKind::ConnectionAborted | ErrorKind::ConnectionReset => {
            AcceptDisposition::Retry
        }
        _ => match e.raw_os_error() {
            // EMFILE(24) / ENFILE(23): descriptor tables full;
            // ENOBUFS(105) / ENOMEM(12): kernel memory pressure.
            // All clear as connections close — back off, don't die.
            Some(12 | 23 | 24 | 105) => AcceptDisposition::Backoff,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// The accept loop's view of a listener — real [`TcpListener`] in
/// production, an injected fake in lifecycle tests.
pub(crate) trait Acceptor {
    /// Accept one pending connection, nonblocking semantics.
    fn poll_accept(&self) -> std::io::Result<TcpStream>;
}

impl Acceptor for TcpListener {
    fn poll_accept(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(stream, _peer)| stream)
    }
}

/// A running TCP server; dropping it (or calling
/// [`NetServer::shutdown`]) stops the accept loop and joins every
/// connection thread.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `service` until shutdown.
    pub fn spawn(service: Arc<QueryService>, addr: &str) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            let open = Arc::clone(&open);
            std::thread::spawn(move || accept_loop(listener, service, stop, open))
        };
        Ok(NetServer {
            addr,
            stop,
            open,
            accept: Some(accept),
        })
    }

    /// The bound address — connect clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection handles the server currently tracks. Finished
    /// sessions are reaped continuously, so under connect/disconnect
    /// load this stays bounded by the number of *live* sessions — the
    /// regression guard for the old grow-without-bound handle list.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Stop accepting, finish in-flight responses, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<A: Acceptor>(
    listener: A,
    service: Arc<QueryService>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.poll_accept() {
            Ok(stream) => {
                // Reap on the accept path too: sustained connect load
                // used to grow this vec without bound because reaping
                // only ran in the WouldBlock arm.
                reap(&mut connections, &open);
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    // A connection that dies mid-handshake is the
                    // peer's problem; the server must keep accepting.
                    let _ = serve_connection(stream, &service, &stop);
                }));
                open.store(connections.len(), Ordering::Relaxed);
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptDisposition::Idle => {
                    reap(&mut connections, &open);
                    std::thread::sleep(ACCEPT_INTERVAL);
                }
                AcceptDisposition::Retry => continue,
                AcceptDisposition::Backoff => std::thread::sleep(ACCEPT_BACKOFF),
                AcceptDisposition::Fatal => break,
            },
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    open.store(0, Ordering::Relaxed);
}

/// Drop handles of finished connection threads and publish the count of
/// the ones still tracked.
fn reap(connections: &mut Vec<JoinHandle<()>>, open: &AtomicUsize) {
    connections.retain(|h| !h.is_finished());
    open.store(connections.len(), Ordering::Relaxed);
}

/// Drive one session: greet, then answer queries until the peer hangs
/// up, the protocol is violated, or the server shuts down.
fn serve_connection(
    mut stream: TcpStream,
    service: &QueryService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )?;
    let mut reader = FrameReader::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match reader.poll(&mut stream) {
            Ok(FramePoll::Payload(payload)) => payload,
            Ok(FramePoll::Idle) => continue,
            Ok(FramePoll::Closed) => return Ok(()),
            Err(CodecError::Truncated) => return Ok(()),
            Err(e) => return refuse(&mut stream, WIRE_MALFORMED, &e.to_string()),
        };
        let frame = match Frame::decode(&payload) {
            Ok(frame) => frame,
            Err(e) => return refuse(&mut stream, WIRE_MALFORMED, &e.to_string()),
        };
        let Some(request) = request_from_frame(&frame) else {
            let why = format!("expected a Query frame, got tag {}", frame.tag());
            return refuse(&mut stream, WIRE_UNEXPECTED_FRAME, &why);
        };
        // All admission control, shedding, caching and execution happen
        // in here; a shed query comes back as a structured Error
        // response and the connection lives on.
        let response = service.execute(request);
        for frame in response_frames(&response) {
            write_frame(&mut stream, &frame)?;
        }
    }
}

/// Send a transport-coded error, then close (by returning): once
/// framing is in doubt the stream cannot be resynchronized.
fn refuse(stream: &mut TcpStream, code: u16, message: &str) -> std::io::Result<()> {
    write_frame(
        stream,
        &Frame::Error {
            code,
            message: message.to_string(),
        },
    )
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&frame.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_serve::service::{QueryService, ServeOptions};
    use polygen_workload::{self as workload, WorkloadConfig};
    use std::collections::VecDeque;
    use std::io;
    use std::sync::Mutex;
    use std::time::Instant;

    fn tiny_service() -> Arc<QueryService> {
        let scenario =
            workload::generate(&WorkloadConfig::default().with_sources(2).with_entities(8));
        Arc::new(QueryService::for_scenario(
            &scenario,
            ServeOptions::default(),
        ))
    }

    /// An injected listener: a scripted sequence of accept outcomes,
    /// then `WouldBlock` forever.
    struct FakeAcceptor {
        script: Mutex<VecDeque<io::Result<TcpStream>>>,
    }

    impl FakeAcceptor {
        fn new(script: Vec<io::Result<TcpStream>>) -> Self {
            FakeAcceptor {
                script: Mutex::new(script.into_iter().collect()),
            }
        }
    }

    impl Acceptor for FakeAcceptor {
        fn poll_accept(&self) -> io::Result<TcpStream> {
            self.script
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or_else(|| Err(io::Error::from(ErrorKind::WouldBlock)))
        }
    }

    #[test]
    fn accept_error_classification() {
        use AcceptDisposition::*;
        let cases = [
            (io::Error::from(ErrorKind::WouldBlock), Idle),
            (io::Error::from(ErrorKind::Interrupted), Retry),
            (io::Error::from(ErrorKind::ConnectionAborted), Retry),
            (io::Error::from(ErrorKind::ConnectionReset), Retry),
            (io::Error::from_raw_os_error(24), Backoff), // EMFILE
            (io::Error::from_raw_os_error(23), Backoff), // ENFILE
            (io::Error::from_raw_os_error(105), Backoff), // ENOBUFS
            (io::Error::from(ErrorKind::InvalidInput), Fatal),
            (io::Error::from(ErrorKind::NotConnected), Fatal),
        ];
        for (error, expected) in cases {
            assert_eq!(classify_accept_error(&error), expected, "{error:?}");
        }
    }

    /// The satellite bug: any non-WouldBlock accept error used to kill
    /// the listener for good. With an injected erroring listener, the
    /// loop must survive `ECONNABORTED`, `EINTR` and `EMFILE` and still
    /// serve the connection scripted after them.
    #[test]
    fn transient_accept_errors_do_not_kill_the_listener() {
        // A real socket pair for the post-error accept to hand out.
        let rendezvous = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = rendezvous.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _peer) = rendezvous.accept().unwrap();

        let acceptor = FakeAcceptor::new(vec![
            Err(io::Error::from(ErrorKind::ConnectionAborted)),
            Err(io::Error::from(ErrorKind::Interrupted)),
            Err(io::Error::from_raw_os_error(24)), // EMFILE
            Ok(served),
        ]);
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let loop_handle = {
            let service = tiny_service();
            let stop = Arc::clone(&stop);
            let open = Arc::clone(&open);
            std::thread::spawn(move || accept_loop(acceptor, service, stop, open))
        };

        // The connection accepted *after* the transient errors greets —
        // proof the listener survived them.
        let mut reader = FrameReader::new();
        let mut blocking = client;
        blocking
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let payload = loop {
            match reader.poll(&mut blocking).expect("greeting decodes") {
                FramePoll::Payload(p) => break p,
                FramePoll::Idle => continue,
                FramePoll::Closed => panic!("listener died on a transient accept error"),
            }
        };
        assert_eq!(
            Frame::decode(&payload).unwrap(),
            Frame::Hello {
                version: PROTOCOL_VERSION
            }
        );

        stop.store(true, Ordering::SeqCst);
        loop_handle.join().unwrap();
    }

    /// A fatal listener error still stops the loop (it must not spin on
    /// an unusable listener).
    #[test]
    fn fatal_accept_errors_stop_the_loop() {
        let acceptor = FakeAcceptor::new(vec![Err(io::Error::from(ErrorKind::InvalidInput))]);
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let service = tiny_service();
        let handle = std::thread::spawn(move || accept_loop(acceptor, service, stop, open));
        let started = Instant::now();
        handle.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fatal error should end the loop promptly"
        );
    }

    /// The satellite bug: finished connection handles were only reaped
    /// in the WouldBlock arm, so sustained connect load grew the handle
    /// vec without bound. Now every accept reaps; after a burst of
    /// short-lived sessions the tracked count must fall back to zero.
    #[test]
    fn finished_connections_are_reaped_under_connect_load() {
        let server = NetServer::spawn(tiny_service(), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        for _ in 0..32 {
            // Connect, read the greeting, hang up immediately.
            let stream = TcpStream::connect(addr).expect("connect");
            drop(stream);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.open_connections() > 0 {
            assert!(
                Instant::now() < deadline,
                "{} finished connections never reaped",
                server.open_connections()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }
}
