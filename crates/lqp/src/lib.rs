//! # polygen-lqp — Local Query Processors
//!
//! Figure 1's LQP ring: "The PQP … translates the polygen query into a set
//! of local queries based on the corresponding polygen schema, and routes
//! them to the Local Query Processors. … To the PQP, each LQP behaves as a
//! local relational system."
//!
//! * [`engine`] — the [`engine::Lqp`] trait, [`engine::LocalOp`]s and
//!   capability descriptions.
//! * [`memory`] — the in-memory reference LQP with shipment counters.
//! * [`adapter`] — simulations of the paper's quirky commercial
//!   interfaces (menu-driven retrieve-only feeds) and the compensating
//!   wrapper that completes rejected operations locally.
//! * [`cost`] — the latency model the optimizer estimates with.
//! * [`registry`] — name → LQP routing plus the retrieve-then-tag
//!   boundary into the polygen model.
//!
//! A helper, [`scenario_registry`], stands up the paper's three MIT
//! databases as live LQPs.

pub mod adapter;
pub mod cost;
pub mod engine;
pub mod memory;
pub mod registry;

use polygen_catalog::scenario::Scenario;
use std::sync::Arc;

/// Build a live [`registry::LqpRegistry`] serving a scenario's databases
/// through in-memory LQPs.
pub fn scenario_registry(scenario: &Scenario) -> registry::LqpRegistry {
    let reg = registry::LqpRegistry::new();
    for db in &scenario.databases {
        reg.register(Arc::new(memory::InMemoryLqp::new(
            &db.name,
            db.relations.clone(),
        )));
    }
    reg
}

/// Convenient glob import.
pub mod prelude {
    pub use crate::adapter::{CompensatingLqp, MenuDrivenLqp};
    pub use crate::cost::CostModel;
    pub use crate::engine::{Capabilities, LocalOp, Lqp, LqpError, RelStats};
    pub use crate::memory::InMemoryLqp;
    pub use crate::registry::LqpRegistry;
    pub use crate::scenario_registry;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalOp;

    #[test]
    fn scenario_registry_serves_all_three_databases() {
        let scenario = polygen_catalog::scenario::build();
        let reg = scenario_registry(&scenario);
        assert_eq!(reg.names(), vec!["AD", "CD", "PD"]);
        let tagged = reg
            .execute_tagged("AD", &LocalOp::retrieve("BUSINESS"), &scenario.dictionary)
            .unwrap();
        assert_eq!(tagged.len(), 9);
        // Table A3's state-normalized FIRM via the domain map.
        let firm = reg
            .execute_tagged("CD", &LocalOp::retrieve("FIRM"), &scenario.dictionary)
            .unwrap();
        use polygen_flat::value::Value;
        let hq = firm.cell("FNAME", &Value::str("Genentech"), "HQ").unwrap();
        assert_eq!(hq.datum, Value::str("CA"));
    }
}
