//! The LQP interface: what the PQP sees of every local system.
//!
//! §I: "The details of the mapping and communication mechanisms between an
//! LQP and its local data bases is encapsulated in the LQP. To the PQP,
//! each LQP behaves as a local relational system." The paper's prototype
//! wrapped I.P. Sharp's proprietary query language and Finsbury's
//! menu-driven interface behind the same facade; [`Capabilities`] models
//! how much of a relational interface a wrapped system really offers.

use polygen_flat::error::FlatError;
use polygen_flat::relation::Relation;
use polygen_flat::schema::Schema;
use polygen_flat::value::{Cmp, Value};
use std::fmt;
use std::sync::Arc;

/// One operation the PQP may route to an LQP. The paper's translator emits
/// two kinds (LQP-executed Select, and Retrieve = "an LQP Restrict
/// operation without any restricting condition"); Project pushdown is an
/// optimizer extension.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOp {
    /// Target local relation (LS).
    pub relation: String,
    /// Optional selection predicate `attr θ constant`.
    pub filter: Option<(String, Cmp, Value)>,
    /// Optional restrict predicate `attr θ attr` (the paper defines
    /// Retrieve as "an LQP Restrict operation without any restricting
    /// condition" — local systems can restrict).
    pub restrict: Option<(String, Cmp, String)>,
    /// Optional projection onto named attributes.
    pub projection: Option<Vec<String>>,
}

impl LocalOp {
    /// Retrieve: no condition, no projection.
    pub fn retrieve(relation: &str) -> Self {
        LocalOp {
            relation: relation.to_string(),
            filter: None,
            restrict: None,
            projection: None,
        }
    }

    /// Select `relation[attr θ value]`.
    pub fn select(relation: &str, attr: &str, cmp: Cmp, value: Value) -> Self {
        LocalOp {
            relation: relation.to_string(),
            filter: Some((attr.to_string(), cmp, value)),
            restrict: None,
            projection: None,
        }
    }

    /// Restrict `relation[x θ y]` over two local attributes.
    pub fn restrict(relation: &str, x: &str, cmp: Cmp, y: &str) -> Self {
        LocalOp {
            relation: relation.to_string(),
            filter: None,
            restrict: Some((x.to_string(), cmp, y.to_string())),
            projection: None,
        }
    }

    /// Add a projection.
    pub fn with_projection(mut self, attrs: &[&str]) -> Self {
        self.projection = Some(attrs.iter().map(|a| (*a).to_string()).collect());
        self
    }

    /// Is this a bare retrieve?
    pub fn is_retrieve(&self) -> bool {
        self.filter.is_none() && self.restrict.is_none() && self.projection.is_none()
    }
}

impl fmt::Display for LocalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        if let Some((a, c, v)) = &self.filter {
            write!(f, "[{a} {c} {v}]")?;
        }
        if let Some((x, c, y)) = &self.restrict {
            write!(f, "[{x} {c} {y}]")?;
        }
        if let Some(p) = &self.projection {
            write!(f, "[{}]", p.join(", "))?;
        }
        Ok(())
    }
}

/// What a wrapped local system can execute natively. Anything it cannot
/// do, the PQP must compensate for by retrieving more and filtering
/// locally — exactly the trade-off the paper's quirky commercial
/// interfaces forced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Can evaluate selection predicates.
    pub pushdown_select: bool,
    /// Can project columns.
    pub pushdown_project: bool,
}

impl Capabilities {
    /// A full single-site relational system.
    pub fn relational() -> Self {
        Capabilities {
            pushdown_select: true,
            pushdown_project: true,
        }
    }

    /// A retrieve-only interface (the Finsbury-style menu system).
    pub fn retrieve_only() -> Self {
        Capabilities {
            pushdown_select: false,
            pushdown_project: false,
        }
    }

    /// Does this capability set admit the operation?
    pub fn admits(&self, op: &LocalOp) -> bool {
        let predicates_ok = self.pushdown_select || (op.filter.is_none() && op.restrict.is_none());
        predicates_ok && (op.projection.is_none() || self.pushdown_project)
    }
}

/// Per-relation statistics for the optimizer's cost estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelStats {
    /// Tuple count.
    pub rows: usize,
    /// Degree.
    pub degree: usize,
}

/// Errors surfaced by LQP execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LqpError {
    /// The LQP has no such relation.
    UnknownRelation { lqp: String, relation: String },
    /// The wrapped interface cannot execute this operation shape.
    Unsupported { lqp: String, op: String },
    /// A substrate error (bad attribute, arity, …).
    Flat(FlatError),
}

impl fmt::Display for LqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LqpError::UnknownRelation { lqp, relation } => {
                write!(f, "LQP `{lqp}` has no relation `{relation}`")
            }
            LqpError::Unsupported { lqp, op } => {
                write!(f, "LQP `{lqp}` cannot execute `{op}` natively")
            }
            LqpError::Flat(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LqpError {}

impl From<FlatError> for LqpError {
    fn from(e: FlatError) -> Self {
        LqpError::Flat(e)
    }
}

/// The Local Query Processor facade of Figure 1.
pub trait Lqp: Send + Sync {
    /// The local database name (LD) this LQP serves.
    fn name(&self) -> &str;

    /// What the wrapped interface can execute natively.
    fn capabilities(&self) -> Capabilities;

    /// The latency model for reaching this LQP (plan costing). Defaults
    /// to a co-located database; remote adapters override.
    fn cost_model(&self) -> crate::cost::CostModel {
        crate::cost::CostModel::local()
    }

    /// Names of the relations this LQP exposes.
    fn relation_names(&self) -> Vec<String>;

    /// Schema of one relation.
    fn schema_of(&self, relation: &str) -> Option<Arc<Schema>>;

    /// Statistics for the optimizer.
    fn stats(&self, relation: &str) -> Option<RelStats>;

    /// Execute a local operation, returning untagged data (tagging happens
    /// at the PQP boundary: "sources are tagged after data has been
    /// retrieved from each database").
    fn execute(&self, op: &LocalOp) -> Result<Relation, LqpError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_op_constructors() {
        let r = LocalOp::retrieve("CAREER");
        assert!(r.is_retrieve());
        assert_eq!(r.to_string(), "CAREER");
        let s = LocalOp::select("ALUMNUS", "DEG", Cmp::Eq, Value::str("MBA"));
        assert!(!s.is_retrieve());
        assert_eq!(s.to_string(), "ALUMNUS[DEG = MBA]");
        let sp = s.with_projection(&["AID#", "ANAME"]);
        assert_eq!(sp.to_string(), "ALUMNUS[DEG = MBA][AID#, ANAME]");
    }

    #[test]
    fn capability_gating() {
        let full = Capabilities::relational();
        let menu = Capabilities::retrieve_only();
        let retrieve = LocalOp::retrieve("X");
        let select = LocalOp::select("X", "A", Cmp::Eq, Value::int(1));
        assert!(full.admits(&retrieve) && full.admits(&select));
        assert!(menu.admits(&retrieve));
        assert!(!menu.admits(&select));
        let project_only = LocalOp::retrieve("X").with_projection(&["A"]);
        assert!(!menu.admits(&project_only));
    }

    #[test]
    fn error_display() {
        let e = LqpError::UnknownRelation {
            lqp: "AD".into(),
            relation: "NOPE".into(),
        };
        assert!(e.to_string().contains("no relation `NOPE`"));
    }
}
