//! Adapters simulating the paper's quirky commercial interfaces.
//!
//! Footnote 6: "our prototype's LQP can handle unusual query interfaces,
//! such as I.P. Sharp's proprietary query language and Finsburg's
//! menu-driven interface." We cannot license 1990 Reuters feeds; what the
//! PQP actually observes of them is (a) which operations they accept and
//! (b) how slowly they answer. Both are simulated here:
//!
//! * [`MenuDrivenLqp`] accepts only whole-relation retrieves, so every
//!   predicate must be evaluated PQP-side after shipping the full
//!   relation (the Finsbury behaviour).
//! * [`CompensatingLqp`] wraps any LQP and *compensates*: operations the
//!   inner interface rejects are downgraded to a retrieve and finished
//!   with the flat algebra inside the adapter — the paper's "mapping and
//!   communication mechanisms … encapsulated in the LQP".

use crate::cost::CostModel;
use crate::engine::{Capabilities, LocalOp, Lqp, LqpError, RelStats};
use polygen_flat::algebra;
use polygen_flat::relation::Relation;
use polygen_flat::schema::Schema;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A retrieve-only facade over an inner LQP (menu-driven interface).
pub struct MenuDrivenLqp<L> {
    inner: L,
    cost: CostModel,
    /// Simulated microseconds "spent" talking to the slow interface
    /// (accumulated, never slept — benchmarks read it as a metric).
    simulated_us: AtomicU64,
}

impl<L: Lqp> MenuDrivenLqp<L> {
    /// Wrap an inner LQP.
    pub fn new(inner: L, cost: CostModel) -> Self {
        MenuDrivenLqp {
            inner,
            cost,
            simulated_us: AtomicU64::new(0),
        }
    }

    /// Total simulated interface time.
    pub fn simulated_us(&self) -> u64 {
        self.simulated_us.load(Ordering::Relaxed)
    }
}

impl<L: Lqp> Lqp for MenuDrivenLqp<L> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::retrieve_only()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn relation_names(&self) -> Vec<String> {
        self.inner.relation_names()
    }

    fn schema_of(&self, relation: &str) -> Option<Arc<Schema>> {
        self.inner.schema_of(relation)
    }

    fn stats(&self, relation: &str) -> Option<RelStats> {
        self.inner.stats(relation)
    }

    fn execute(&self, op: &LocalOp) -> Result<Relation, LqpError> {
        if !op.is_retrieve() {
            return Err(LqpError::Unsupported {
                lqp: self.name().to_string(),
                op: op.to_string(),
            });
        }
        let out = self.inner.execute(op)?;
        self.simulated_us
            .fetch_add(self.cost.op_cost_us(out.len()), Ordering::Relaxed);
        Ok(out)
    }
}

/// Wraps any LQP; rejected operations are compensated for by retrieving
/// the whole relation and finishing with the flat algebra locally, so the
/// PQP always sees a full relational system (Figure 1's encapsulation).
pub struct CompensatingLqp<L> {
    inner: L,
}

impl<L: Lqp> CompensatingLqp<L> {
    /// Wrap an inner LQP.
    pub fn new(inner: L) -> Self {
        CompensatingLqp { inner }
    }

    /// Borrow the wrapped LQP.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: Lqp> Lqp for CompensatingLqp<L> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost_model()
    }

    fn capabilities(&self) -> Capabilities {
        // The adapter presents full capabilities regardless of the inner
        // interface — that is its whole purpose.
        Capabilities::relational()
    }

    fn relation_names(&self) -> Vec<String> {
        self.inner.relation_names()
    }

    fn schema_of(&self, relation: &str) -> Option<Arc<Schema>> {
        self.inner.schema_of(relation)
    }

    fn stats(&self, relation: &str) -> Option<RelStats> {
        self.inner.stats(relation)
    }

    fn execute(&self, op: &LocalOp) -> Result<Relation, LqpError> {
        if self.inner.capabilities().admits(op) {
            return self.inner.execute(op);
        }
        let mut out = self.inner.execute(&LocalOp::retrieve(&op.relation))?;
        if let Some((attr, cmp, value)) = &op.filter {
            out = algebra::select(&out, attr, *cmp, value.clone())?;
        }
        if let Some((x, cmp, y)) = &op.restrict {
            out = algebra::restrict(&out, x, *cmp, y)?;
        }
        if let Some(attrs) = &op.projection {
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            out = algebra::project(&out, &refs)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryLqp;
    use polygen_flat::value::{Cmp, Value};

    fn base() -> InMemoryLqp {
        let firm = Relation::build("FIRM", &["FNAME", "CEO"])
            .row(&["IBM", "John Ackers"])
            .row(&["DEC", "Ken Olsen"])
            .finish()
            .unwrap();
        InMemoryLqp::new("CD", vec![firm])
    }

    #[test]
    fn menu_driven_rejects_predicates() {
        let m = MenuDrivenLqp::new(base(), CostModel::slow_remote());
        assert!(m.execute(&LocalOp::retrieve("FIRM")).is_ok());
        assert!(m.simulated_us() > 0);
        assert!(matches!(
            m.execute(&LocalOp::select(
                "FIRM",
                "FNAME",
                Cmp::Eq,
                Value::str("IBM")
            )),
            Err(LqpError::Unsupported { .. })
        ));
        assert_eq!(m.capabilities(), Capabilities::retrieve_only());
    }

    #[test]
    fn compensating_adapter_finishes_rejected_ops() {
        let menu = MenuDrivenLqp::new(base(), CostModel::slow_remote());
        let comp = CompensatingLqp::new(menu);
        let out = comp
            .execute(&LocalOp::select(
                "FIRM",
                "FNAME",
                Cmp::Eq,
                Value::str("IBM"),
            ))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][1], Value::str("John Ackers"));
        assert_eq!(comp.capabilities(), Capabilities::relational());
        // Projection compensation too.
        let proj = comp
            .execute(&LocalOp::retrieve("FIRM").with_projection(&["CEO"]))
            .unwrap();
        assert_eq!(proj.degree(), 1);
    }

    #[test]
    fn compensating_adapter_passes_native_ops_through() {
        let comp = CompensatingLqp::new(base());
        let out = comp
            .execute(&LocalOp::select(
                "FIRM",
                "FNAME",
                Cmp::Eq,
                Value::str("DEC"),
            ))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(comp.inner().counters().ops(), 1);
        assert_eq!(comp.relation_names(), vec!["FIRM"]);
        assert!(comp.stats("FIRM").is_some());
        assert!(comp.schema_of("FIRM").is_some());
    }
}
