//! Latency cost model for LQP access.
//!
//! The paper's LQPs ranged from co-located MIT databases to transatlantic
//! commercial feeds (Finsbury in England, I.P. Sharp in Canada). The
//! optimizer never sleeps; it *estimates* with this model, and adapters
//! accumulate simulated time as a metric. Costs are microseconds.

/// Linear cost model: `fixed + per_tuple · n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per-operation fixed cost (connection + parse + seek), µs.
    pub fixed_us: u64,
    /// Per-shipped-tuple marginal cost, µs.
    pub per_tuple_us: u64,
}

impl CostModel {
    /// A co-located relational database (the MIT internal systems).
    pub fn local() -> Self {
        CostModel {
            fixed_us: 500,
            per_tuple_us: 5,
        }
    }

    /// A remote commercial feed over a 1990 leased line (Finsbury,
    /// I.P. Sharp): high setup, expensive shipping.
    pub fn slow_remote() -> Self {
        CostModel {
            fixed_us: 250_000,
            per_tuple_us: 2_000,
        }
    }

    /// Estimated cost of one operation shipping `tuples` tuples.
    pub fn op_cost_us(&self, tuples: usize) -> u64 {
        self.fixed_us + self.per_tuple_us * tuples as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_tuples() {
        let m = CostModel::local();
        assert_eq!(m.op_cost_us(0), 500);
        assert_eq!(m.op_cost_us(100), 500 + 5 * 100);
    }

    #[test]
    fn remote_dominates_local() {
        assert!(CostModel::slow_remote().op_cost_us(10) > CostModel::local().op_cost_us(10_000));
    }

    #[test]
    fn default_is_local() {
        assert_eq!(CostModel::default(), CostModel::local());
    }
}
