//! An in-memory single-site relational LQP — the reference local system.
//!
//! Holds a local database's relations and executes [`LocalOp`]s with the
//! flat algebra. Instrumented with shipment counters so benchmarks and the
//! optimizer's pushdown ablation can measure how many tuples each strategy
//! moves out of the local system (the figure of merit the paper's
//! "cost-effective … composite information" remark points at).

use crate::engine::{Capabilities, LocalOp, Lqp, LqpError, RelStats};
use polygen_flat::algebra;
use polygen_flat::relation::Relation;
use polygen_flat::schema::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative execution counters (monotone; cheap atomics).
#[derive(Debug, Default)]
pub struct LqpCounters {
    ops: AtomicU64,
    tuples_shipped: AtomicU64,
}

impl LqpCounters {
    /// Operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Tuples returned to the PQP so far.
    pub fn tuples_shipped(&self) -> u64 {
        self.tuples_shipped.load(Ordering::Relaxed)
    }

    fn record(&self, shipped: usize) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.tuples_shipped
            .fetch_add(shipped as u64, Ordering::Relaxed);
    }
}

/// The in-memory LQP.
pub struct InMemoryLqp {
    name: String,
    relations: HashMap<String, Relation>,
    capabilities: Capabilities,
    counters: LqpCounters,
}

impl InMemoryLqp {
    /// Build over a set of relations with full relational capabilities.
    pub fn new(name: &str, relations: Vec<Relation>) -> Self {
        InMemoryLqp {
            name: name.to_string(),
            relations: relations
                .into_iter()
                .map(|r| (r.name().to_string(), r))
                .collect(),
            capabilities: Capabilities::relational(),
            counters: LqpCounters::default(),
        }
    }

    /// Restrict the native capabilities (used by the adapter layer).
    pub fn with_capabilities(mut self, capabilities: Capabilities) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// The shipment counters.
    pub fn counters(&self) -> &LqpCounters {
        &self.counters
    }

    fn relation(&self, name: &str) -> Result<&Relation, LqpError> {
        self.relations
            .get(name)
            .ok_or_else(|| LqpError::UnknownRelation {
                lqp: self.name.clone(),
                relation: name.to_string(),
            })
    }
}

impl Lqp for InMemoryLqp {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    fn schema_of(&self, relation: &str) -> Option<Arc<Schema>> {
        self.relations.get(relation).map(|r| Arc::clone(r.schema()))
    }

    fn stats(&self, relation: &str) -> Option<RelStats> {
        self.relations.get(relation).map(|r| RelStats {
            rows: r.len(),
            degree: r.degree(),
        })
    }

    fn execute(&self, op: &LocalOp) -> Result<Relation, LqpError> {
        if !self.capabilities.admits(op) {
            return Err(LqpError::Unsupported {
                lqp: self.name.clone(),
                op: op.to_string(),
            });
        }
        let base = self.relation(&op.relation)?;
        let mut out = match &op.filter {
            Some((attr, cmp, value)) => algebra::select(base, attr, *cmp, value.clone())?,
            None => base.clone(),
        };
        if let Some((x, cmp, y)) = &op.restrict {
            out = algebra::restrict(&out, x, *cmp, y)?;
        }
        if let Some(attrs) = &op.projection {
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            out = algebra::project(&out, &refs)?;
        }
        self.counters.record(out.len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_flat::value::{Cmp, Value};

    fn lqp() -> InMemoryLqp {
        let alumnus = Relation::build("ALUMNUS", &["AID#", "ANAME", "DEG"])
            .row(&["012", "John McCauley", "MBA"])
            .row(&["345", "James Yao", "BS"])
            .finish()
            .unwrap();
        InMemoryLqp::new("AD", vec![alumnus])
    }

    #[test]
    fn retrieve_returns_whole_relation() {
        let l = lqp();
        let r = l.execute(&LocalOp::retrieve("ALUMNUS")).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(l.counters().ops(), 1);
        assert_eq!(l.counters().tuples_shipped(), 2);
    }

    #[test]
    fn select_filters_locally() {
        let l = lqp();
        let r = l
            .execute(&LocalOp::select(
                "ALUMNUS",
                "DEG",
                Cmp::Eq,
                Value::str("MBA"),
            ))
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(l.counters().tuples_shipped(), 1);
    }

    #[test]
    fn projection_pushdown() {
        let l = lqp();
        let r = l
            .execute(&LocalOp::retrieve("ALUMNUS").with_projection(&["ANAME"]))
            .unwrap();
        assert_eq!(r.degree(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unknown_relation_and_attribute_errors() {
        let l = lqp();
        assert!(matches!(
            l.execute(&LocalOp::retrieve("NOPE")),
            Err(LqpError::UnknownRelation { .. })
        ));
        assert!(matches!(
            l.execute(&LocalOp::select("ALUMNUS", "NOPE", Cmp::Eq, Value::int(1))),
            Err(LqpError::Flat(_))
        ));
    }

    #[test]
    fn capability_restriction_rejects_pushdown() {
        let l = lqp().with_capabilities(Capabilities::retrieve_only());
        assert!(l.execute(&LocalOp::retrieve("ALUMNUS")).is_ok());
        assert!(matches!(
            l.execute(&LocalOp::select(
                "ALUMNUS",
                "DEG",
                Cmp::Eq,
                Value::str("MBA")
            )),
            Err(LqpError::Unsupported { .. })
        ));
    }

    #[test]
    fn introspection() {
        let l = lqp();
        assert_eq!(l.relation_names(), vec!["ALUMNUS"]);
        assert_eq!(l.stats("ALUMNUS").unwrap().rows, 2);
        assert_eq!(l.stats("ALUMNUS").unwrap().degree, 3);
        assert!(l.schema_of("ALUMNUS").unwrap().contains("DEG"));
        assert!(l.schema_of("NOPE").is_none());
    }
}
