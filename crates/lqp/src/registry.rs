//! The LQP registry: the PQP's routing table (Figure 1's fan-out).
//!
//! Maps local-database names to live LQPs and performs the *tagging
//! boundary crossing*: a retrieved flat relation has its domain rules
//! applied and is lifted into a polygen base relation whose cells all
//! originate from that LQP's source ("when the execution location is an
//! LQP … it is also used as the originating source tag for each of the
//! cells of the polygen base relation", §III).

use crate::engine::{LocalOp, Lqp, LqpError};
use polygen_catalog::dictionary::DataDictionary;
use polygen_core::relation::PolygenRelation;
use polygen_flat::schema::Schema;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A shared, thread-safe map of LD name → LQP.
#[derive(Default)]
pub struct LqpRegistry {
    lqps: RwLock<HashMap<String, Arc<dyn Lqp>>>,
}

impl LqpRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) an LQP under its own name.
    pub fn register(&self, lqp: Arc<dyn Lqp>) {
        self.lqps
            .write()
            .expect("lqp registry poisoned")
            .insert(lqp.name().to_string(), lqp);
    }

    /// Fetch an LQP by local-database name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Lqp>> {
        self.lqps
            .read()
            .expect("lqp registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered database names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .lqps
            .read()
            .expect("lqp registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered LQPs.
    pub fn len(&self) -> usize {
        self.lqps.read().expect("lqp registry poisoned").len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.lqps.read().expect("lqp registry poisoned").is_empty()
    }

    /// The schema [`execute_tagged`](Self::execute_tagged) will produce
    /// for `op`, computed without running it — the physical-plan lowerer
    /// resolves attribute names against this. Selection and restriction
    /// keep the base schema, projection narrows it, and the dictionary's
    /// domain rules rewrite values only, never attributes.
    pub fn planned_schema(&self, db: &str, op: &LocalOp) -> Result<Arc<Schema>, LqpError> {
        let unknown = || LqpError::UnknownRelation {
            lqp: db.to_string(),
            relation: op.relation.clone(),
        };
        let lqp = self.get(db).ok_or_else(unknown)?;
        let base = lqp.schema_of(&op.relation).ok_or_else(unknown)?;
        match &op.projection {
            None => Ok(base),
            Some(attrs) => {
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let idx = base.indices_of(&refs)?;
                Ok(Arc::new(base.project(&idx, base.name())?))
            }
        }
    }

    /// Execute a local operation at the named LQP, apply the dictionary's
    /// domain rules, and tag the result — the full "retrieve then tag"
    /// path producing the paper's Tables 4 and A1–A3.
    pub fn execute_tagged(
        &self,
        db: &str,
        op: &LocalOp,
        dictionary: &DataDictionary,
    ) -> Result<PolygenRelation, LqpError> {
        let lqp = self.get(db).ok_or_else(|| LqpError::UnknownRelation {
            lqp: db.to_string(),
            relation: op.relation.clone(),
        })?;
        let flat = lqp.execute(op)?;
        let mapped = dictionary.domains().apply(db, &flat)?;
        let source = dictionary
            .registry()
            .lookup(db)
            .unwrap_or_else(|| panic!("LQP `{db}` not interned in the data dictionary"));
        Ok(PolygenRelation::from_flat(&mapped, source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryLqp;
    use polygen_catalog::domain::DomainRule;
    use polygen_flat::relation::Relation;
    use polygen_flat::value::Value;

    fn setup() -> (LqpRegistry, DataDictionary) {
        let firm = Relation::build("FIRM", &["FNAME", "HQ"])
            .row(&["IBM", "Armonk, NY"])
            .finish()
            .unwrap();
        let registry = LqpRegistry::new();
        registry.register(Arc::new(InMemoryLqp::new("CD", vec![firm])));
        let mut dict = DataDictionary::new();
        dict.intern_source("CD");
        dict.domains_mut()
            .set("CD", "FIRM", "HQ", DomainRule::LastCommaToken);
        (registry, dict)
    }

    #[test]
    fn execute_tagged_applies_domain_rules_and_tags() {
        let (reg, dict) = setup();
        let p = reg
            .execute_tagged("CD", &LocalOp::retrieve("FIRM"), &dict)
            .unwrap();
        let cd = dict.registry().lookup("CD").unwrap();
        let hq = p.cell("FNAME", &Value::str("IBM"), "HQ").unwrap();
        assert_eq!(hq.datum, Value::str("NY"), "domain rule applied");
        assert!(hq.origin.contains(cd));
        assert!(hq.intermediate.is_empty());
    }

    #[test]
    fn unknown_database_errors() {
        let (reg, dict) = setup();
        assert!(matches!(
            reg.execute_tagged("XX", &LocalOp::retrieve("FIRM"), &dict),
            Err(LqpError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn planned_schema_matches_execute_tagged() {
        let (reg, dict) = setup();
        let op = LocalOp::retrieve("FIRM").with_projection(&["HQ"]);
        let planned = reg.planned_schema("CD", &op).unwrap();
        let actual = reg.execute_tagged("CD", &op, &dict).unwrap();
        assert_eq!(planned.as_ref(), actual.schema().as_ref());
        assert!(reg
            .planned_schema("XX", &LocalOp::retrieve("FIRM"))
            .is_err());
        assert!(reg
            .planned_schema("CD", &LocalOp::retrieve("NOPE"))
            .is_err());
    }

    #[test]
    fn registry_introspection() {
        let (reg, _) = setup();
        assert_eq!(reg.names(), vec!["CD"]);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert!(reg.get("CD").is_some());
        assert!(reg.get("AD").is_none());
    }
}
