//! # polygen-index — secondary indexes over source relations
//!
//! Every query in the workspace so far executes its Scan leaves as full
//! source sweeps: a selective point query over a 10k-tuple source pays
//! the same retrieve-map-tag cost as a full-federation merge. The
//! paper's workstation model assumes selections are cheap relative to
//! integration; this crate supplies the structure that makes them so.
//!
//! A [`SourceIndex`] is built over one source relation, keyed on one
//! column:
//!
//! * the **tagged base** — the relation exactly as the PQP boundary
//!   would produce it (retrieve, domain rules, source tagging) — is
//!   materialized once at build time;
//! * **postings** map each key value to the *tuple ordinals* (positions
//!   in scan order) holding it — a [`IndexKind::Hash`] map for equality
//!   probes, a [`IndexKind::Sorted`] run-length vector for range probes.
//!
//! A probe therefore returns *references into the scan a full sweep
//! would have produced*: emitting the probed ordinals in ascending
//! order reproduces the scan's tuple order, and the tuples themselves
//! are the scan's tuples (tags included) — which is what lets the
//! planner swap a probe in for a sweep with **byte-identical** results.
//!
//! ## Eligibility (why probes can honor θ-semantics)
//!
//! The engine's θ-comparisons ([`Value::satisfies`]) are three-valued:
//! `nil` never satisfies anything, and ints compare to floats
//! numerically — while the total order [`Value`] sorts and hashes by is
//! variant-first. An index probe uses the total order, so it is only
//! routed to when the two agree, which the build records:
//!
//! * [`SourceIndex::key_type`] — the column is type-homogeneous and
//!   nil-free; probes require the literal to be of the same type, on
//!   which domain `Ord`/`Eq` and θ-comparison coincide exactly.
//! * [`SourceIndex::raw_faithful`] — no domain rule rewrote the indexed
//!   column, so a predicate an LQP would evaluate on *raw* values may
//!   be probed against the (mapped) keys.
//!
//! Anything else — mixed-type columns, `nil` keys, cross-type literals,
//! rewritten columns, `<>` predicates — fails the check and the planner
//! falls back to the full scan. Correctness never depends on an index
//! existing.
//!
//! ## Maintenance
//!
//! Indexes are immutable, like the snapshots that own them
//! (`polygen-serve`): a source update derives a successor
//! [`IndexCatalog`] via [`IndexCatalog::rebuilt_for_source`], rebuilding
//! only the bumped source's indexes and re-pointing every other source's
//! by `Arc`. An index whose relation or column vanished in the update is
//! dropped rather than erroring — the planner simply stops routing to
//! it.

use polygen_catalog::dictionary::DataDictionary;
use polygen_core::batch::ColumnBatch;
use polygen_core::relation::PolygenRelation;
use polygen_flat::error::FlatError;
use polygen_flat::value::{Cmp, Value};
use polygen_lqp::engine::{LocalOp, LqpError};
use polygen_lqp::registry::LqpRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced while building or probing indexes.
#[derive(Debug)]
pub enum IndexError {
    /// The catalog has no LQP registered under this source name.
    UnknownSource(String),
    /// The local system rejected the build-time retrieve.
    Lqp(LqpError),
    /// The indexed column does not exist on the relation.
    Flat(FlatError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::UnknownSource(s) => write!(f, "no LQP registered for source `{s}`"),
            IndexError::Lqp(e) => write!(f, "{e}"),
            IndexError::Flat(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<LqpError> for IndexError {
    fn from(e: LqpError) -> Self {
        IndexError::Lqp(e)
    }
}
impl From<FlatError> for IndexError {
    fn from(e: FlatError) -> Self {
        IndexError::Flat(e)
    }
}

/// The posting-list organization of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexKind {
    /// Key → ordinals hash map: O(1) equality probes only.
    Hash,
    /// Key-sorted postings: equality *and* range probes via binary
    /// search.
    Sorted,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Hash => f.write_str("hash"),
            IndexKind::Sorted => f.write_str("sorted"),
        }
    }
}

/// A declared index: which source relation and column, organized how.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexSpec {
    /// Local database (source) name.
    pub source: String,
    /// Local relation name within the source.
    pub relation: String,
    /// Local column name the index keys on.
    pub column: String,
    /// Posting organization.
    pub kind: IndexKind,
}

impl IndexSpec {
    /// A hash index on `source.relation.column`.
    pub fn hash(source: &str, relation: &str, column: &str) -> Self {
        IndexSpec {
            source: source.to_string(),
            relation: relation.to_string(),
            column: column.to_string(),
            kind: IndexKind::Hash,
        }
    }

    /// A sorted index on `source.relation.column`.
    pub fn sorted(source: &str, relation: &str, column: &str) -> Self {
        IndexSpec {
            source: source.to_string(),
            relation: relation.to_string(),
            column: column.to_string(),
            kind: IndexKind::Sorted,
        }
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}.{}.{})",
            self.kind, self.source, self.relation, self.column
        )
    }
}

/// One end of a key range: the value plus whether it is included.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// The bounding key value.
    pub value: Value,
    /// `true` for `>=`/`<=`, `false` for `>`/`<`.
    pub inclusive: bool,
}

/// A validated index probe — what the planner bakes into an `IndexScan`
/// node. Probes are built through [`Interval`], which guarantees the
/// probed key set is exactly (for a lone predicate) or a subset of (for
/// a folded conjunction) the routed predicate's satisfying set.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// Equality on one key.
    Point(Value),
    /// A (half-)bounded key range. At least one bound is present.
    Range {
        /// Lower bound, if any.
        lo: Option<Bound>,
        /// Upper bound, if any.
        hi: Option<Bound>,
    },
}

impl Probe {
    /// Render the probe for EXPLAIN: `COL = v`, `10 <= COL <= 20`, …
    pub fn render(&self, column: &str) -> String {
        match self {
            Probe::Point(v) => format!("{column} = {v}"),
            Probe::Range { lo, hi } => {
                let mut out = String::new();
                if let Some(b) = lo {
                    out.push_str(&format!(
                        "{} {} ",
                        b.value,
                        if b.inclusive { "<=" } else { "<" }
                    ));
                }
                out.push_str(column);
                if let Some(b) = hi {
                    out.push_str(&format!(
                        " {} {}",
                        if b.inclusive { "<=" } else { "<" },
                        b.value
                    ));
                }
                out
            }
        }
    }
}

/// A conjunction of sargable predicates over one column, normalized to a
/// key interval. The pushdown pass folds `col = lit`, `col < lit`,
/// `lit <= col <= lit` conjuncts into one interval and lowers it to a
/// [`Probe`]. Intersections only ever *tighten*, so the final probe is a
/// subset of every folded predicate — residual predicates re-checking
/// their own conjunct on probed tuples therefore keep results exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    lo: Option<Bound>,
    hi: Option<Bound>,
}

impl Interval {
    /// The unbounded interval (no predicate folded yet).
    pub fn full() -> Self {
        Interval { lo: None, hi: None }
    }

    /// The interval of `col θ value`, or `None` when θ is not sargable
    /// (`<>` excludes a point rather than bounding a range).
    pub fn from_predicate(cmp: Cmp, value: &Value) -> Option<Self> {
        let b = |inclusive| {
            Some(Bound {
                value: value.clone(),
                inclusive,
            })
        };
        match cmp {
            Cmp::Eq => Some(Interval {
                lo: b(true),
                hi: b(true),
            }),
            Cmp::Lt => Some(Interval {
                lo: None,
                hi: b(false),
            }),
            Cmp::Le => Some(Interval {
                lo: None,
                hi: b(true),
            }),
            Cmp::Gt => Some(Interval {
                lo: b(false),
                hi: None,
            }),
            Cmp::Ge => Some(Interval {
                lo: b(true),
                hi: None,
            }),
            Cmp::Ne => None,
        }
    }

    /// Intersect with another interval (tightest bounds win).
    pub fn intersect(self, other: Interval) -> Interval {
        let lo = tighter(self.lo, other.lo, true);
        let hi = tighter(self.hi, other.hi, false);
        Interval { lo, hi }
    }

    /// Is this a single key (`lo == hi`, both inclusive)?
    pub fn is_point(&self) -> bool {
        matches!(
            (&self.lo, &self.hi),
            (Some(a), Some(b)) if a.inclusive && b.inclusive && a.value == b.value
        )
    }

    /// Lower to a probe: a point when the interval pinches to one key, a
    /// range when at least one bound exists, `None` when unbounded (no
    /// predicate was folded — nothing to probe).
    pub fn into_probe(self) -> Option<Probe> {
        if self.is_point() {
            return Some(Probe::Point(self.lo.expect("point has bounds").value));
        }
        match (&self.lo, &self.hi) {
            (None, None) => None,
            _ => Some(Probe::Range {
                lo: self.lo,
                hi: self.hi,
            }),
        }
    }
}

/// The tighter of two optional bounds on the same side: for lower bounds
/// the larger value wins, for upper bounds the smaller; on equal values
/// the exclusive bound is tighter.
fn tighter(a: Option<Bound>, b: Option<Bound>, lower: bool) -> Option<Bound> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(match a.value.cmp(&b.value) {
            std::cmp::Ordering::Equal => {
                if a.inclusive {
                    b
                } else {
                    a
                }
            }
            std::cmp::Ordering::Less => {
                if lower {
                    b
                } else {
                    a
                }
            }
            std::cmp::Ordering::Greater => {
                if lower {
                    a
                } else {
                    b
                }
            }
        }),
    }
}

/// Key → ascending tuple ordinals.
#[derive(Debug, Clone, PartialEq)]
enum Postings {
    Hash(HashMap<Value, Vec<u32>>),
    Sorted(Vec<(Value, Vec<u32>)>),
}

/// A secondary index over one source relation.
///
/// Holds the tagged base relation (exactly what a full scan of the
/// source would ship through the tagging boundary) plus ordinal postings
/// on one column. See the crate docs for the eligibility flags.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceIndex {
    spec: IndexSpec,
    base: PolygenRelation,
    postings: Postings,
    /// `Some(type_name)` when every key is that (non-nil) type.
    key_type: Option<&'static str>,
    /// Raw column values equal the mapped (domain-rule-applied) keys.
    raw_faithful: bool,
}

impl SourceIndex {
    /// Build an index from a *single* retrieve of the source relation:
    /// the raw rows (what an LQP predicate would see) and the tagged
    /// base derived from them (domain rules + source tagging, exactly
    /// the `execute_tagged` boundary) stay aligned by construction —
    /// one fetch feeds both, so a concurrently mutated LQP can never
    /// misalign the raw-faithfulness comparison, and a rebuild pays one
    /// source sweep, not two.
    pub fn build(
        spec: IndexSpec,
        registry: &LqpRegistry,
        dictionary: &DataDictionary,
    ) -> Result<Self, IndexError> {
        let lqp = registry
            .get(&spec.source)
            .ok_or_else(|| IndexError::UnknownSource(spec.source.clone()))?;
        let retrieve = LocalOp::retrieve(&spec.relation);
        let raw = lqp.execute(&retrieve)?;
        let mapped = dictionary
            .domains()
            .apply(&spec.source, &raw)
            .map_err(LqpError::from)?;
        let source = dictionary
            .registry()
            .lookup(&spec.source)
            .ok_or_else(|| IndexError::UnknownSource(spec.source.clone()))?;
        let base = PolygenRelation::from_flat(&mapped, source);
        let ci = base.schema().index_of(&spec.column)?.0;
        debug_assert_eq!(raw.len(), base.len(), "raw and tagged scans align");
        let mut key_type: Option<&'static str> = None;
        let mut homogeneous = true;
        let mut raw_faithful = true;
        let mut keyed: Vec<(Value, u32)> = Vec::with_capacity(base.len());
        for (ord, t) in base.tuples().iter().enumerate() {
            let key = &t[ci].datum;
            match key_type {
                None => key_type = Some(key.type_name()),
                Some(ty) if ty == key.type_name() => {}
                Some(_) => homogeneous = false,
            }
            if raw_faithful && raw.rows().get(ord).map(|r| &r[ci]) != Some(key) {
                raw_faithful = false;
            }
            keyed.push((key.clone(), ord as u32));
        }
        if key_type == Some("nil") {
            homogeneous = false;
        }
        let key_type = if homogeneous { key_type } else { None };
        let postings = match spec.kind {
            IndexKind::Hash => {
                let mut map: HashMap<Value, Vec<u32>> = HashMap::with_capacity(keyed.len());
                for (k, ord) in keyed {
                    map.entry(k).or_default().push(ord);
                }
                Postings::Hash(map)
            }
            IndexKind::Sorted => {
                keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut runs: Vec<(Value, Vec<u32>)> = Vec::new();
                for (k, ord) in keyed {
                    match runs.last_mut() {
                        Some((last, ords)) if *last == k => ords.push(ord),
                        _ => runs.push((k, vec![ord])),
                    }
                }
                Postings::Sorted(runs)
            }
        };
        Ok(SourceIndex {
            spec,
            base,
            postings,
            key_type,
            raw_faithful,
        })
    }

    /// The declaration this index was built from.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Posting organization.
    pub fn kind(&self) -> IndexKind {
        self.spec.kind
    }

    /// Tuples in the indexed base relation.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Is the base relation empty?
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Distinct key values.
    pub fn distinct_keys(&self) -> usize {
        match &self.postings {
            Postings::Hash(m) => m.len(),
            Postings::Sorted(v) => v.len(),
        }
    }

    /// The homogeneous non-nil key type, when the column has one.
    pub fn key_type(&self) -> Option<&'static str> {
        self.key_type
    }

    /// May raw-value (LQP-side) predicates be probed against this index?
    pub fn raw_faithful(&self) -> bool {
        self.raw_faithful
    }

    /// Can this organization serve a θ of this shape?
    pub fn supports(&self, cmp: Cmp) -> bool {
        match self.spec.kind {
            IndexKind::Hash => cmp == Cmp::Eq,
            IndexKind::Sorted => matches!(cmp, Cmp::Eq | Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge),
        }
    }

    /// Is a probe against this literal guaranteed to agree with
    /// θ-semantics? (Type-homogeneous non-nil keys, same-typed literal.)
    pub fn admits_literal(&self, literal: &Value) -> bool {
        self.key_type == Some(literal.type_name())
    }

    /// The ordinals matching a probe, ascending — i.e. in scan order.
    pub fn probe_ordinals(&self, probe: &Probe) -> Vec<u32> {
        match (&self.postings, probe) {
            (Postings::Hash(map), Probe::Point(v)) => map.get(v).cloned().unwrap_or_default(),
            (Postings::Hash(map), Probe::Range { lo, hi }) => {
                // Defensive: the planner never routes ranges onto hash
                // postings, but answer correctly (if slowly) if asked.
                let mut ords: Vec<u32> = map
                    .iter()
                    .filter(|(k, _)| within(k, lo, hi))
                    .flat_map(|(_, o)| o.iter().copied())
                    .collect();
                ords.sort_unstable();
                ords
            }
            (Postings::Sorted(runs), Probe::Point(v)) => runs
                .binary_search_by(|(k, _)| k.cmp(v))
                .map(|i| runs[i].1.clone())
                .unwrap_or_default(),
            (Postings::Sorted(runs), Probe::Range { lo, hi }) => {
                let start = match lo {
                    None => 0,
                    Some(b) => runs
                        .partition_point(|(k, _)| k < &b.value || (!b.inclusive && k == &b.value)),
                };
                let end = match hi {
                    None => runs.len(),
                    Some(b) => runs
                        .partition_point(|(k, _)| k < &b.value || (b.inclusive && k == &b.value)),
                };
                let mut ords: Vec<u32> = runs[start..end.max(start)]
                    .iter()
                    .flat_map(|(_, o)| o.iter().copied())
                    .collect();
                ords.sort_unstable();
                ords
            }
        }
    }

    /// Execute a probe: the base tuples at the matching ordinals, in
    /// scan order — byte-identical (data, origin tags, intermediate
    /// tags, order) to what the equivalent full scan would retain.
    pub fn probe_relation(&self, probe: &Probe) -> PolygenRelation {
        let ords = self.probe_ordinals(probe);
        let tuples = ords
            .iter()
            .map(|&o| self.base.tuples()[o as usize].clone())
            .collect();
        PolygenRelation::from_tuples(Arc::clone(self.base.schema()), tuples)
            .expect("probed tuples share the base schema")
    }

    /// Execute a probe straight into a columnar batch: the matching
    /// base tuples gathered at their scan ordinals, which the batch
    /// records in its ordinal column. Emitting the batch unchanged is
    /// byte-identical to [`SourceIndex::probe_relation`]; the executor
    /// uses this to hand probe results to the batch filter kernels
    /// without a row-stream detour.
    pub fn probe_batch(&self, probe: &Probe) -> ColumnBatch {
        ColumnBatch::gather(&self.base, &self.probe_ordinals(probe))
    }

    /// The materialized tagged base (a full-scan equivalent).
    pub fn base(&self) -> &PolygenRelation {
        &self.base
    }
}

/// Does a key fall within optional bounds? (Total-order comparison —
/// valid on the homogeneous domains eligibility enforces.)
fn within(key: &Value, lo: &Option<Bound>, hi: &Option<Bound>) -> bool {
    if let Some(b) = lo {
        if key < &b.value || (!b.inclusive && key == &b.value) {
            return false;
        }
    }
    if let Some(b) = hi {
        if key > &b.value || (!b.inclusive && key == &b.value) {
            return false;
        }
    }
    true
}

/// The set of indexes one federation state offers, keyed by
/// `(source, relation, column)`. Immutable, like the snapshots that own
/// it; see [`IndexCatalog::rebuilt_for_source`] for maintenance.
#[derive(Debug, Clone, Default)]
pub struct IndexCatalog {
    map: HashMap<(String, String, String), Arc<SourceIndex>>,
}

impl IndexCatalog {
    /// A catalog with no indexes (every lookup misses — plans scan).
    pub fn empty() -> Self {
        IndexCatalog::default()
    }

    /// Build every declared index against the current federation state.
    /// Declaring two indexes on the same column keeps the later one.
    pub fn build(
        specs: &[IndexSpec],
        registry: &LqpRegistry,
        dictionary: &DataDictionary,
    ) -> Result<Self, IndexError> {
        let mut map = HashMap::with_capacity(specs.len());
        for spec in specs {
            let key = (
                spec.source.clone(),
                spec.relation.clone(),
                spec.column.clone(),
            );
            map.insert(
                key,
                Arc::new(SourceIndex::build(spec.clone(), registry, dictionary)?),
            );
        }
        Ok(IndexCatalog { map })
    }

    /// The index on `source.relation.column`, if declared.
    pub fn lookup(&self, source: &str, relation: &str, column: &str) -> Option<&Arc<SourceIndex>> {
        self.map
            .get(&(source.to_string(), relation.to_string(), column.to_string()))
    }

    /// Every declaration, sorted for deterministic display.
    pub fn specs(&self) -> Vec<IndexSpec> {
        let mut specs: Vec<IndexSpec> = self.map.values().map(|i| i.spec.clone()).collect();
        specs.sort();
        specs
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Derive the successor catalog after `source` was updated: that
    /// source's indexes are rebuilt against the new registry state,
    /// every other source's are re-pointed by `Arc`. An index whose
    /// relation or column no longer exists is dropped (the planner
    /// falls back to scans for it) rather than failing the update.
    pub fn rebuilt_for_source(
        &self,
        source: &str,
        registry: &LqpRegistry,
        dictionary: &DataDictionary,
    ) -> IndexCatalog {
        let mut map = HashMap::with_capacity(self.map.len());
        for (key, index) in &self.map {
            if key.0 == source {
                if let Ok(rebuilt) = SourceIndex::build(index.spec.clone(), registry, dictionary) {
                    map.insert(key.clone(), Arc::new(rebuilt));
                }
            } else {
                map.insert(key.clone(), Arc::clone(index));
            }
        }
        IndexCatalog { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_catalog::scenario;
    use polygen_lqp::scenario_registry;

    fn mit() -> (LqpRegistry, DataDictionary) {
        let s = scenario::build();
        (scenario_registry(&s), s.dictionary.clone())
    }

    /// The full-scan reference a probe must reproduce: run the select at
    /// the LQP and tag the result, exactly as the executor's Scan does.
    fn scan_reference(
        registry: &LqpRegistry,
        dictionary: &DataDictionary,
        db: &str,
        rel: &str,
        col: &str,
        cmp: Cmp,
        v: Value,
    ) -> PolygenRelation {
        registry
            .execute_tagged(db, &LocalOp::select(rel, col, cmp, v), dictionary)
            .unwrap()
    }

    #[test]
    fn hash_point_probe_is_byte_identical_to_scan() {
        let (reg, dict) = mit();
        let idx = SourceIndex::build(IndexSpec::hash("AD", "ALUMNUS", "DEG"), &reg, &dict).unwrap();
        assert!(idx.raw_faithful());
        assert_eq!(idx.key_type(), Some("string"));
        for deg in ["MBA", "MS", "PhD", "NOPE"] {
            let probed = idx.probe_relation(&Probe::Point(Value::str(deg)));
            let scanned = scan_reference(
                &reg,
                &dict,
                "AD",
                "ALUMNUS",
                "DEG",
                Cmp::Eq,
                Value::str(deg),
            );
            assert_eq!(
                probed.tuples(),
                scanned.tuples(),
                "probe for {deg} must be byte-identical, order included"
            );
        }
    }

    #[test]
    fn batch_probe_is_byte_identical_to_relation_probe() {
        let (reg, dict) = mit();
        let idx = SourceIndex::build(IndexSpec::hash("AD", "ALUMNUS", "DEG"), &reg, &dict).unwrap();
        for deg in ["MBA", "MS", "PhD", "NOPE"] {
            let probe = Probe::Point(Value::str(deg));
            let batch = idx.probe_batch(&probe);
            assert_eq!(batch.ordinals(), idx.probe_ordinals(&probe).as_slice());
            assert_eq!(
                batch.into_relation().tuples(),
                idx.probe_relation(&probe).tuples(),
                "batch probe for {deg} must be byte-identical to the relation probe"
            );
        }
    }

    #[test]
    fn sorted_range_probe_matches_scan_for_every_theta() {
        let (reg, dict) = mit();
        let idx =
            SourceIndex::build(IndexSpec::sorted("AD", "CAREER", "BNAME"), &reg, &dict).unwrap();
        assert_eq!(idx.key_type(), Some("string"));
        for cmp in [Cmp::Eq, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            for name in ["Citicorp", "Genentech", "IBM", "Aaa", "Zzz"] {
                let probe = Interval::from_predicate(cmp, &Value::str(name))
                    .unwrap()
                    .into_probe()
                    .unwrap();
                let probed = idx.probe_relation(&probe);
                let scanned =
                    scan_reference(&reg, &dict, "AD", "CAREER", "BNAME", cmp, Value::str(name));
                assert_eq!(probed.tuples(), scanned.tuples(), "{cmp} {name}");
            }
        }
    }

    #[test]
    fn interval_conjunction_probes_between() {
        let (reg, dict) = mit();
        let idx =
            SourceIndex::build(IndexSpec::sorted("AD", "CAREER", "BNAME"), &reg, &dict).unwrap();
        let between = Interval::from_predicate(Cmp::Ge, &Value::str("C"))
            .unwrap()
            .intersect(Interval::from_predicate(Cmp::Le, &Value::str("M")).unwrap());
        let probe = between.into_probe().unwrap();
        let probed = idx.probe_relation(&probe);
        // Reference: scan then filter the second conjunct by hand.
        let scanned = scan_reference(
            &reg,
            &dict,
            "AD",
            "CAREER",
            "BNAME",
            Cmp::Ge,
            Value::str("C"),
        );
        let ci = scanned.schema().index_of("BNAME").unwrap().0;
        let expect: Vec<_> = scanned
            .tuples()
            .iter()
            .filter(|t| t[ci].datum.satisfies(Cmp::Le, &Value::str("M")))
            .cloned()
            .collect();
        assert!(!probed.is_empty());
        assert_eq!(probed.tuples(), expect.as_slice());
        assert_eq!(probe.render("BNAME"), "C <= BNAME <= M");
    }

    #[test]
    fn interval_point_detection_and_tightening() {
        let eq = Interval::from_predicate(Cmp::Eq, &Value::int(5)).unwrap();
        assert!(eq.is_point());
        assert_eq!(eq.clone().into_probe(), Some(Probe::Point(Value::int(5))));
        // Ge 5 ∧ Le 5 pinches to the point.
        let pinched = Interval::from_predicate(Cmp::Ge, &Value::int(5))
            .unwrap()
            .intersect(Interval::from_predicate(Cmp::Le, &Value::int(5)).unwrap());
        assert!(pinched.is_point());
        // Gt 5 ∧ Le 5: exclusive wins on the tie — not a point, empty.
        let empty = Interval::from_predicate(Cmp::Gt, &Value::int(5))
            .unwrap()
            .intersect(Interval::from_predicate(Cmp::Le, &Value::int(5)).unwrap());
        assert!(!empty.is_point());
        // Ne is not sargable; an unbounded interval has no probe.
        assert!(Interval::from_predicate(Cmp::Ne, &Value::int(5)).is_none());
        assert!(Interval::full().into_probe().is_none());
    }

    #[test]
    fn domain_rule_breaks_raw_faithfulness() {
        // CD.FIRM.HQ carries the LastCommaToken rule ("Armonk, NY" →
        // "NY"): raw predicates may not be probed against mapped keys.
        let (reg, dict) = mit();
        let hq = SourceIndex::build(IndexSpec::hash("CD", "FIRM", "HQ"), &reg, &dict).unwrap();
        assert!(!hq.raw_faithful());
        // An untouched column on the same relation stays faithful.
        let fname =
            SourceIndex::build(IndexSpec::hash("CD", "FIRM", "FNAME"), &reg, &dict).unwrap();
        assert!(fname.raw_faithful());
    }

    #[test]
    fn mixed_or_nil_columns_admit_no_literal() {
        use polygen_flat::relation::Relation;
        use polygen_lqp::memory::InMemoryLqp;
        let rel = Relation::build("T", &["K", "N"])
            .vrow(vec![Value::int(1), Value::Null])
            .vrow(vec![Value::str("two"), Value::int(2)])
            .finish()
            .unwrap();
        let registry = LqpRegistry::new();
        registry.register(Arc::new(InMemoryLqp::new("X", vec![rel])));
        let mut dict = DataDictionary::new();
        dict.intern_source("X");
        let mixed = SourceIndex::build(IndexSpec::hash("X", "T", "K"), &registry, &dict).unwrap();
        assert_eq!(mixed.key_type(), None);
        assert!(!mixed.admits_literal(&Value::int(1)));
        let nilled = SourceIndex::build(IndexSpec::hash("X", "T", "N"), &registry, &dict).unwrap();
        assert!(!nilled.admits_literal(&Value::Null));
        assert!(!nilled.admits_literal(&Value::int(2)));
    }

    #[test]
    fn catalog_rebuild_shares_untouched_sources() {
        let (reg, dict) = mit();
        let specs = vec![
            IndexSpec::hash("AD", "ALUMNUS", "DEG"),
            IndexSpec::sorted("CD", "FIRM", "FNAME"),
        ];
        let catalog = IndexCatalog::build(&specs, &reg, &dict).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.specs(), {
            let mut s = specs.clone();
            s.sort();
            s
        });
        let rebuilt = catalog.rebuilt_for_source("CD", &reg, &dict);
        let ad_before = catalog.lookup("AD", "ALUMNUS", "DEG").unwrap();
        let ad_after = rebuilt.lookup("AD", "ALUMNUS", "DEG").unwrap();
        assert!(Arc::ptr_eq(ad_before, ad_after), "AD re-pointed by Arc");
        let cd_before = catalog.lookup("CD", "FIRM", "FNAME").unwrap();
        let cd_after = rebuilt.lookup("CD", "FIRM", "FNAME").unwrap();
        assert!(!Arc::ptr_eq(cd_before, cd_after), "CD rebuilt");
    }

    #[test]
    fn rebuild_drops_vanished_relations() {
        use polygen_flat::relation::Relation;
        use polygen_lqp::memory::InMemoryLqp;
        let (reg, dict) = mit();
        let catalog =
            IndexCatalog::build(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")], &reg, &dict).unwrap();
        // AD is replaced by an LQP without ALUMNUS.
        let other = Relation::build("OTHER", &["X"])
            .vrow(vec![Value::int(1)])
            .finish()
            .unwrap();
        reg.register(Arc::new(InMemoryLqp::new("AD", vec![other])));
        let rebuilt = catalog.rebuilt_for_source("AD", &reg, &dict);
        assert!(rebuilt.is_empty(), "vanished relation drops its index");
    }

    #[test]
    fn build_errors_surface() {
        let (reg, dict) = mit();
        assert!(matches!(
            SourceIndex::build(IndexSpec::hash("XX", "T", "C"), &reg, &dict),
            Err(IndexError::UnknownSource(_))
        ));
        assert!(SourceIndex::build(IndexSpec::hash("AD", "NOPE", "C"), &reg, &dict).is_err());
        assert!(SourceIndex::build(IndexSpec::hash("AD", "ALUMNUS", "NOPE"), &reg, &dict).is_err());
        let e = IndexError::UnknownSource("XX".into());
        assert!(e.to_string().contains("XX"));
    }
}
