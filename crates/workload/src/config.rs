//! Workload configuration.
//!
//! The paper's evaluation federates three hand-sized databases; the
//! benchmark harness needs the same *shape* at arbitrary scale: K sources
//! sharing an entity pool with controllable replication, plus a detail
//! relation for join workloads. Everything is seeded — two runs with the
//! same config produce identical federations — and every aspect of
//! generation (category skew, coverage, detail rows, conflicts) draws
//! from its own [`WorkloadConfig::rng`] stream, so e.g. growing
//! `detail_rows` cannot perturb the Zipf category draws of an otherwise
//! identical config.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic sub-seed streams for the generator's independent
/// concerns (see [`WorkloadConfig::rng`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngStream {
    /// Zipf draws of canonical per-entity categories.
    Categories,
    /// Which sources cover which entity.
    Coverage,
    /// Detail-relation rows (entity references and scores).
    Detail,
    /// Deviant category assertions (`conflict_rate`).
    Conflicts,
    /// Client `i`'s query draws in the closed-loop driver (see
    /// [`crate::clients::ClientMix`]) — every client owns an independent
    /// stream, so client counts and interleavings cannot perturb what
    /// any one client asks.
    Client(u64),
}

impl RngStream {
    fn index(self) -> u64 {
        match self {
            RngStream::Categories => 1,
            RngStream::Coverage => 2,
            RngStream::Detail => 3,
            RngStream::Conflicts => 4,
            // Clients start past the fixed streams; the golden-ratio
            // multiply in `derive_rng` spreads consecutive ids apart.
            RngStream::Client(i) => 16 + i,
        }
    }
}

/// Derive the deterministic RNG for `(seed, stream)` — the one mixing
/// formula every generation concern and driver client uses.
pub fn derive_rng(seed: u64, stream: RngStream) -> StdRng {
    StdRng::seed_from_u64(seed ^ stream.index().wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Parameters of a synthetic federation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed (determinism across runs and machines).
    pub seed: u64,
    /// Number of local databases (the paper's AD/PD/CD generalized).
    pub sources: usize,
    /// Size of the shared entity pool.
    pub entities: usize,
    /// Probability that a given source knows a given entity. 1.0 means
    /// full replication (every merge key matches everywhere); lower
    /// values produce the paper's partial-overlap federations.
    pub coverage: f64,
    /// Rows in the (single-source) detail relation, keyed to random
    /// entities.
    pub detail_rows: usize,
    /// Number of distinct category values (select selectivity knob);
    /// drawn Zipf-skewed.
    pub categories: usize,
    /// Probability that a source disagrees with the canonical value of a
    /// shared attribute (exercises conflict resolution; 0.0 = the paper's
    /// conflict-free assumption).
    pub conflict_rate: f64,
    /// Zipf exponent for the detail relation's entity references (its
    /// join key against the merged scheme): `0.0` draws entities
    /// uniformly, larger values skew the key distribution — the hard
    /// case for hash-partitioned parallel joins, where the hottest key
    /// cannot split across partitions.
    pub key_skew: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x9e3779b97f4a7c15,
            sources: 3,
            entities: 1_000,
            coverage: 0.6,
            detail_rows: 2_000,
            categories: 16,
            conflict_rate: 0.0,
            key_skew: 0.0,
        }
    }
}

impl WorkloadConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style source-count override.
    pub fn with_sources(mut self, sources: usize) -> Self {
        self.sources = sources;
        self
    }

    /// Builder-style entity-pool override.
    pub fn with_entities(mut self, entities: usize) -> Self {
        self.entities = entities;
        self
    }

    /// Builder-style coverage override.
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage;
        self
    }

    /// Builder-style key-skew override.
    pub fn with_key_skew(mut self, key_skew: f64) -> Self {
        self.key_skew = key_skew;
        self
    }

    /// A deterministic RNG for one generation concern, derived from the
    /// config seed: the same `(seed, stream)` pair always produces the
    /// same sequence, and distinct streams are independent — so the new
    /// benches and the proptest corpus reproduce run-to-run, and changing
    /// one knob (say `detail_rows`) cannot shift the draws of another
    /// concern (say the category Zipf).
    pub fn rng(&self, stream: RngStream) -> StdRng {
        derive_rng(self.seed, stream)
    }

    /// Validate ranges; panics early with a clear message (configs are
    /// developer-authored bench inputs, not user data).
    pub fn validated(self) -> Self {
        assert!(self.sources >= 1, "need at least one source");
        assert!(self.entities >= 1, "need at least one entity");
        assert!(
            (0.0..=1.0).contains(&self.coverage),
            "coverage must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.conflict_rate),
            "conflict_rate must be a probability"
        );
        assert!(self.categories >= 1, "need at least one category");
        assert!(
            self.key_skew >= 0.0 && self.key_skew.is_finite(),
            "key_skew must be a finite exponent ≥ 0"
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides() {
        let c = WorkloadConfig::default()
            .with_seed(7)
            .with_sources(5)
            .with_entities(10)
            .with_coverage(1.0)
            .validated();
        assert_eq!(c.seed, 7);
        assert_eq!(c.sources, 5);
        assert_eq!(c.entities, 10);
        assert_eq!(c.coverage, 1.0);
    }

    #[test]
    fn rng_streams_are_deterministic_and_independent() {
        use rand::RngExt;
        let c = WorkloadConfig::default().with_seed(99);
        let draw = |stream: RngStream| -> Vec<u64> {
            let mut rng = c.rng(stream);
            (0..16).map(|_| rng.random::<u64>()).collect()
        };
        assert_eq!(draw(RngStream::Categories), draw(RngStream::Categories));
        assert_eq!(draw(RngStream::Detail), draw(RngStream::Detail));
        assert_ne!(draw(RngStream::Categories), draw(RngStream::Detail));
        assert_ne!(draw(RngStream::Coverage), draw(RngStream::Conflicts));
        // A different seed shifts every stream.
        let other = WorkloadConfig::default().with_seed(100);
        assert_ne!(
            draw(RngStream::Categories),
            (0..16)
                .scan(other.rng(RngStream::Categories), |rng, _| Some(
                    rng.random::<u64>()
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "key_skew")]
    fn bad_key_skew_panics() {
        let _ = WorkloadConfig::default().with_key_skew(-1.0).validated();
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn bad_coverage_panics() {
        let _ = WorkloadConfig::default().with_coverage(1.5).validated();
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_panics() {
        let _ = WorkloadConfig::default().with_sources(0).validated();
    }
}
