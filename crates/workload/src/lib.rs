//! # polygen-workload — synthetic federations for the benchmark harness
//!
//! The paper evaluated on three proprietary MIT databases and two Reuters
//! feeds; none are available, and none are needed — the polygen machinery
//! is value-agnostic. This crate generates *seeded, deterministic*
//! federations with the same shape at arbitrary scale:
//!
//! * [`config::WorkloadConfig`] — source count, entity pool, coverage
//!   (overlap), detail-relation size, category skew, conflict rate.
//! * [`generator`] — builds a full [`polygen_catalog::scenario::Scenario`]
//!   (dictionary + schema + local databases) plus raw flat/tagged
//!   relations for algebra microbenches.
//! * [`queries`] — canned and random query shapes over the generated
//!   schema.
//! * [`clients`] — the closed-loop multi-client driver: N deterministic
//!   clients issuing a weighted query mix with think time, concurrently
//!   ([`clients::drive`]) or as a sequential baseline
//!   ([`clients::replay`]).
//! * [`zipf`] — the category-skew sampler.

pub mod clients;
pub mod config;
pub mod generator;
pub mod queries;
pub mod zipf;

pub use clients::{
    drive, replay, ClientMix, ClientQuery, DriveReport, LatencySummary, MixWeights, QueryLang,
};
pub use config::{derive_rng, RngStream, WorkloadConfig};
pub use generator::{generate, random_flat_relation, random_polygen_relation};
