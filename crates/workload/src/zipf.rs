//! A small Zipf sampler for skewed category and key values.
//!
//! Real federated data is skewed (most organizations are "High Tech" in
//! the paper's toy data too); selects over a skewed category exercise the
//! interesting selectivity range, and Zipf-skewed *join keys* are the
//! hard case for hash-partitioned parallel execution (the hottest key
//! cannot split across partitions). Inverse-CDF sampling over precomputed
//! cumulative weights `1/k^s`; [`Zipf::new`] fixes the exponent at the
//! classic 1.0, [`Zipf::with_exponent`] opens it up (0.0 = uniform).

use rand::{Rng, RngExt};

/// Zipf(θ=s) distribution over `1..=n` ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with the classic exponent 1.0.
    pub fn new(n: usize) -> Self {
        Zipf::with_exponent(n, 1.0)
    }

    /// Build for `n` ranks with exponent `s ≥ 0`: weight of rank `k` is
    /// `1/k^s`, so `s = 0` is uniform and larger `s` concentrates mass on
    /// the first ranks.
    pub fn with_exponent(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and ≥ 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize to [0, 1].
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cumulative.len()
    }

    /// Sample a rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(10);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        assert!(counts.iter().sum::<usize>() == 10_000);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.ranks(), 1);
    }

    #[test]
    fn exponent_zero_is_uniform_and_larger_skews_harder() {
        let mut rng = StdRng::seed_from_u64(11);
        let uniform = Zipf::with_exponent(8, 0.0);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[uniform.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "uniform-ish: {counts:?}");
        }
        let gentle = Zipf::with_exponent(8, 1.0);
        let harsh = Zipf::with_exponent(8, 2.0);
        let mut top = [0usize; 2];
        for _ in 0..16_000 {
            if gentle.sample(&mut rng) == 0 {
                top[0] += 1;
            }
            if harsh.sample(&mut rng) == 0 {
                top[1] += 1;
            }
        }
        assert!(top[1] > top[0], "higher exponent concentrates rank 0");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
