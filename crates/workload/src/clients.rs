//! Closed-loop multi-client driver.
//!
//! Models the traffic a serving layer actually sees: `N` clients, each
//! issuing queries back-to-back (closed loop — a client waits for its
//! answer, thinks for [`ClientMix::think`], then asks again), drawing
//! query shapes from a weighted mix. Determinism is the whole point:
//!
//! * every client owns its own RNG stream
//!   ([`RngStream::Client`]), so the *script* — the exact query
//!   sequence client `i` issues — depends only on `(seed, i, mix)`,
//!   never on thread scheduling, client count, or who else is running;
//! * [`drive`] (concurrent, one OS thread per client) and [`replay`]
//!   (the same scripts, sequentially, client by client) therefore issue
//!   *identical* query streams — which is what lets the service test
//!   assert that concurrent, cached execution returns byte-identical
//!   tagged answers to a sequential, cache-off baseline.

use crate::config::{derive_rng, RngStream};
use crate::queries::{
    join_query, paper_shaped_sql, point_lookup, range_scan, select_query, sys_sessions_query,
    sys_stats_query,
};
use crate::zipf::Zipf;
use rand::RngExt;
use std::time::{Duration, Instant};

/// Which front end a generated query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLang {
    /// Polygen-level SQL.
    Sql,
    /// Algebra bracket notation.
    Algebra,
}

/// One query of a client's script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientQuery {
    /// The query text.
    pub text: String,
    /// Which parser it is for.
    pub lang: QueryLang,
}

/// Relative weights of the query shapes in the mix. Weights are
/// relative, not percentages — `(3, 1, 1)` means 3 selects per join and
/// per paper-shaped query on average.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// Category selects over the merged scheme (algebra, cheap, highly
    /// cacheable — few distinct categories).
    pub select: u32,
    /// Detail→entity joins with a score filter (algebra, heavier).
    pub join: u32,
    /// The paper-shaped SQL (IN-subquery feeding join feeding project).
    pub paper: u32,
    /// Detail point lookups (`PDETAIL [ENAME = …]`) with Zipf-skewed
    /// key choice — the class a hash index serves. Default 0: existing
    /// mixes (and their deterministic scripts) are unchanged.
    pub point: u32,
    /// Detail score range scans (`PDETAIL [SCORE >= a] [SCORE <= b]`) —
    /// the class a sorted index serves. Default 0.
    pub range: u32,
    /// System-catalog reads (`SELECT … FROM sys.stats` /
    /// `sys.sessions`) — the mediator inspecting itself through the
    /// same front door as user queries. Default 0: existing mixes (and
    /// their deterministic scripts) are unchanged.
    pub sys: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            select: 6,
            join: 3,
            paper: 1,
            point: 0,
            range: 0,
            sys: 0,
        }
    }
}

impl MixWeights {
    /// The default mix plus index-friendly traffic: point lookups and
    /// range scans at the given weights.
    pub fn with_index_lookups(point: u32, range: u32) -> Self {
        MixWeights {
            point,
            range,
            ..MixWeights::default()
        }
    }

    /// The default mix plus system-catalog reads at the given weight —
    /// observability traffic interleaved with user queries.
    pub fn with_catalog_reads(sys: u32) -> Self {
        MixWeights {
            sys,
            ..MixWeights::default()
        }
    }

    fn total(&self) -> u32 {
        self.select + self.join + self.paper + self.point + self.range + self.sys
    }
}

/// A closed-loop client population over the synthetic federation's
/// schema (`PENTITY`/`PDETAIL`, see [`crate::generator`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientMix {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Queries each client issues before finishing.
    pub queries_per_client: usize,
    /// Shape weights.
    pub weights: MixWeights,
    /// Think time between a client's answer and its next query.
    pub think: Duration,
    /// Base seed; client `i` draws from stream `Client(i)`.
    pub seed: u64,
    /// Category draw space — keep equal to the generated federation's
    /// [`crate::config::WorkloadConfig::categories`] so selects hit
    /// existing values.
    pub categories: usize,
    /// Entity draw space for point lookups — keep equal to the
    /// federation's [`crate::config::WorkloadConfig::entities`] so
    /// lookups target existing keys.
    pub entities: usize,
    /// Zipf exponent for point-lookup key choice: `0.0` draws entities
    /// uniformly, larger values concentrate traffic on hot keys (the
    /// realistic shape — and the one that makes result caching and
    /// index probes interact).
    pub key_skew: f64,
}

impl Default for ClientMix {
    fn default() -> Self {
        ClientMix {
            clients: 4,
            queries_per_client: 25,
            weights: MixWeights::default(),
            think: Duration::ZERO,
            seed: 0x0ddc0ffee,
            categories: 16,
            entities: 1_000,
            key_skew: 1.0,
        }
    }
}

impl ClientMix {
    /// Builder-style client-count override.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Builder-style per-client query-count override.
    pub fn with_queries_per_client(mut self, queries: usize) -> Self {
        self.queries_per_client = queries;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style think-time override.
    pub fn with_think(mut self, think: Duration) -> Self {
        self.think = think;
        self
    }

    /// Builder-style weight override.
    pub fn with_weights(mut self, weights: MixWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Builder-style entity-space override (match the federation's
    /// entity pool).
    pub fn with_entities(mut self, entities: usize) -> Self {
        self.entities = entities;
        self
    }

    /// Builder-style key-skew override.
    pub fn with_key_skew(mut self, key_skew: f64) -> Self {
        self.key_skew = key_skew;
        self
    }

    /// Total queries the whole population issues.
    pub fn total_queries(&self) -> usize {
        self.clients * self.queries_per_client
    }

    /// Client `i`'s deterministic script. Depends only on
    /// `(seed, i, weights, queries_per_client, categories, entities,
    /// key_skew)` — and the draw sequence for the original three shapes
    /// is unchanged when the point/range/sys weights are 0, so existing
    /// mixes replay bit-identical scripts.
    pub fn script(&self, client: usize) -> Vec<ClientQuery> {
        assert!(self.weights.total() > 0, "mix weights must not all be 0");
        assert!(self.categories >= 1, "need at least one category");
        assert!(self.entities >= 1, "need at least one entity");
        let w = &self.weights;
        let key_zipf =
            (w.point > 0).then(|| Zipf::with_exponent(self.entities, self.key_skew.max(0.0)));
        let mut rng = derive_rng(self.seed, RngStream::Client(client as u64));
        (0..self.queries_per_client)
            .map(|_| {
                let draw = rng.random_range(0..w.total());
                if draw < w.select {
                    ClientQuery {
                        text: select_query(rng.random_range(0..self.categories)),
                        lang: QueryLang::Algebra,
                    }
                } else if draw < w.select + w.join {
                    ClientQuery {
                        text: join_query(rng.random_range(0..100)),
                        lang: QueryLang::Algebra,
                    }
                } else if draw < w.select + w.join + w.paper {
                    ClientQuery {
                        text: paper_shaped_sql(rng.random_range(0..self.categories)),
                        lang: QueryLang::Sql,
                    }
                } else if draw < w.select + w.join + w.paper + w.point {
                    // Zipf-skewed key choice: hot entities dominate, the
                    // realistic shape for point traffic.
                    let entity = key_zipf
                        .as_ref()
                        .expect("point weight > 0 builds the sampler")
                        .sample(&mut rng);
                    ClientQuery {
                        text: point_lookup(entity),
                        lang: QueryLang::Algebra,
                    }
                } else if draw < w.select + w.join + w.paper + w.point + w.range {
                    let lo = rng.random_range(0..90);
                    ClientQuery {
                        text: range_scan(lo, lo + 9),
                        lang: QueryLang::Algebra,
                    }
                } else {
                    // Catalog reads alternate between the windowed
                    // rollups and the live-session registry.
                    let text = if rng.random_range(0..2u32) == 0 {
                        sys_stats_query()
                    } else {
                        sys_sessions_query()
                    };
                    ClientQuery {
                        text,
                        lang: QueryLang::Sql,
                    }
                }
            })
            .collect()
    }
}

/// Order statistics over a population's per-query latencies — the
/// closed-loop driver's measured-client view. The one nearest-rank
/// implementation now lives in `polygen-obs` (shared with the TCP load
/// generator, the benches, and the serving histograms' property tests);
/// this re-export keeps the historical `workload::LatencySummary` path.
pub use polygen_obs::summary::LatencySummary;

/// What one driver run produced: every client's per-query results in
/// script order, plus wall-clock figures.
#[derive(Debug)]
pub struct DriveReport<R> {
    /// `per_client[i][q]` = what `serve` returned for client `i`'s
    /// `q`-th query, in script order regardless of scheduling.
    pub per_client: Vec<Vec<R>>,
    /// Queries issued in total.
    pub queries: usize,
    /// Wall-clock time for the whole population to finish.
    pub elapsed: Duration,
    /// Per-query service latencies (think time excluded) across the
    /// whole population.
    pub latency: LatencySummary,
}

impl<R> DriveReport<R> {
    /// Throughput in queries per second.
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }
}

/// Run the population *concurrently*: one OS thread per client, each
/// executing its script closed-loop against `serve` (any `Sync` query
/// sink — a `polygen-serve` service, a bare PQP, a mock). Results come
/// back in deterministic script order even though execution interleaves.
pub fn drive<R, F>(mix: &ClientMix, serve: F) -> DriveReport<R>
where
    F: Fn(usize, &ClientQuery) -> R + Sync,
    R: Send,
{
    let start = Instant::now();
    let serve = &serve;
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..mix.clients)
            .map(|client| {
                let script = mix.script(client);
                let think = mix.think;
                scope.spawn(move || {
                    let last = script.len().saturating_sub(1);
                    script
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let issued = Instant::now();
                            let r = serve(client, q);
                            let latency = issued.elapsed();
                            // Think *between* queries only — no trailing
                            // sleep after the final answer, which would
                            // pad the population's wall clock.
                            if !think.is_zero() && i < last {
                                std::thread::sleep(think);
                            }
                            (r, latency)
                        })
                        .collect::<Vec<(R, Duration)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    report_from(outcomes, start.elapsed())
}

/// Split `(result, latency)` pairs into a [`DriveReport`].
fn report_from<R>(outcomes: Vec<Vec<(R, Duration)>>, elapsed: Duration) -> DriveReport<R> {
    let latency = LatencySummary::from_durations(
        outcomes
            .iter()
            .flat_map(|client| client.iter().map(|(_, d)| *d)),
    );
    let per_client: Vec<Vec<R>> = outcomes
        .into_iter()
        .map(|client| client.into_iter().map(|(r, _)| r).collect())
        .collect();
    DriveReport {
        queries: per_client.iter().map(Vec::len).sum(),
        per_client,
        elapsed,
        latency,
    }
}

/// Run the *same* scripts sequentially, client by client, query by
/// query — the single-client baseline a concurrent run is differenced
/// against. No threads, no think time.
pub fn replay<R, F>(mix: &ClientMix, mut serve: F) -> DriveReport<R>
where
    F: FnMut(usize, &ClientQuery) -> R,
{
    let start = Instant::now();
    let outcomes: Vec<Vec<(R, Duration)>> = (0..mix.clients)
        .map(|client| {
            mix.script(client)
                .iter()
                .map(|q| {
                    let issued = Instant::now();
                    let r = serve(client, q);
                    (r, issued.elapsed())
                })
                .collect()
        })
        .collect();
    report_from(outcomes, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_sql::parse_algebra;

    #[test]
    fn scripts_are_deterministic_and_per_client_independent() {
        let mix = ClientMix::default().with_clients(3);
        for c in 0..3 {
            assert_eq!(mix.script(c), mix.script(c));
        }
        assert_ne!(mix.script(0), mix.script(1));
        // Adding clients never changes existing scripts.
        let more = mix.with_clients(8);
        assert_eq!(mix.script(2), more.script(2));
        // A different seed shifts every script.
        assert_ne!(mix.script(0), mix.with_seed(7).script(0));
    }

    #[test]
    fn scripts_respect_the_language_split_and_parse() {
        let mix = ClientMix::default().with_queries_per_client(64);
        let script = mix.script(0);
        assert_eq!(script.len(), 64);
        let mut saw = (false, false);
        for q in &script {
            match q.lang {
                QueryLang::Algebra => {
                    saw.0 = true;
                    assert!(parse_algebra(&q.text).is_ok(), "{}", q.text);
                }
                QueryLang::Sql => {
                    saw.1 = true;
                    assert!(q.text.starts_with("SELECT"), "{}", q.text);
                }
            }
        }
        assert!(saw.0 && saw.1, "default weights exercise both languages");
    }

    #[test]
    fn drive_and_replay_issue_identical_streams() {
        let mix = ClientMix::default()
            .with_clients(4)
            .with_queries_per_client(10);
        // A pure sink: echo the query text back.
        let concurrent = drive(&mix, |c, q| (c, q.text.clone()));
        let sequential = replay(&mix, |c, q| (c, q.text.clone()));
        assert_eq!(concurrent.per_client, sequential.per_client);
        assert_eq!(concurrent.queries, mix.total_queries());
        assert!(concurrent.qps() > 0.0);
        assert_eq!(concurrent.latency.count(), mix.total_queries());
        assert!(concurrent.latency.p50_micros() <= concurrent.latency.p99_micros());
    }

    #[test]
    fn latency_summary_order_statistics() {
        // 1..=100 µs: nearest-rank percentiles are exact.
        let s = LatencySummary::from_micros((1..=100).rev().collect());
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50_micros(), 50);
        assert_eq!(s.p95_micros(), 95);
        assert_eq!(s.p99_micros(), 99);
        assert_eq!(s.percentile_micros(1.0), 100);
        assert_eq!(s.percentile_micros(0.0), 1);
        assert_eq!(s.max_micros(), 100);
        assert!((s.mean_micros() - 50.5).abs() < 1e-9);
        let empty = LatencySummary::from_micros(Vec::new());
        assert_eq!(empty.p99_micros(), 0);
        assert_eq!(empty.mean_micros(), 0.0);
        let d =
            LatencySummary::from_durations([Duration::from_micros(3), Duration::from_micros(1)]);
        assert_eq!(d.p50_micros(), 1);
        assert_eq!(d.max_micros(), 3);
    }

    #[test]
    fn index_classes_appear_with_weights_and_skew_keys() {
        let mix = ClientMix::default()
            .with_queries_per_client(200)
            .with_entities(500)
            .with_weights(MixWeights::with_index_lookups(4, 2));
        let script = mix.script(0);
        let points: Vec<&ClientQuery> = script
            .iter()
            .filter(|q| q.text.starts_with("PDETAIL [ENAME"))
            .collect();
        let ranges: Vec<&ClientQuery> = script
            .iter()
            .filter(|q| q.text.starts_with("PDETAIL [SCORE"))
            .collect();
        assert!(!points.is_empty() && !ranges.is_empty());
        assert!(points.len() > ranges.len(), "weights skew toward points");
        for q in script.iter() {
            if q.lang == QueryLang::Algebra {
                assert!(parse_algebra(&q.text).is_ok(), "{}", q.text);
            }
        }
        // Zipf key choice concentrates on hot entities: the most
        // frequent key dominates a uniform draw's expectation.
        let mut counts = std::collections::HashMap::new();
        for q in &points {
            *counts.entry(q.text.clone()).or_insert(0usize) += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(
            hottest * 20 > points.len(),
            "Zipf(1.0) should concentrate: hottest {hottest} of {}",
            points.len()
        );
        // Scripts stay deterministic, and zero index weights leave the
        // legacy mix's draws untouched.
        assert_eq!(mix.script(1), mix.script(1));
        let legacy = ClientMix::default();
        let relabeled = ClientMix::default().with_entities(9999).with_key_skew(0.0);
        assert_eq!(legacy.script(0), relabeled.script(0));
    }

    #[test]
    fn catalog_reads_appear_with_weight_and_stay_out_of_legacy_mixes() {
        let mix = ClientMix::default()
            .with_queries_per_client(200)
            .with_weights(MixWeights::with_catalog_reads(3));
        let script = mix.script(0);
        let sys: Vec<&ClientQuery> = script
            .iter()
            .filter(|q| q.text.contains("FROM sys."))
            .collect();
        assert!(!sys.is_empty(), "weight 3 of 13 must surface catalog reads");
        assert!(sys.len() < script.len(), "user shapes still dominate");
        let mut saw = (false, false);
        for q in &sys {
            assert_eq!(q.lang, QueryLang::Sql);
            saw.0 |= q.text.contains("sys.stats");
            saw.1 |= q.text.contains("sys.sessions");
        }
        assert!(saw.0 && saw.1, "both catalog shapes drawn");
        // Weight 0 keeps legacy scripts bit-identical — the sys branch
        // is appended strictly after every existing draw.
        let legacy = ClientMix::default();
        let zeroed = ClientMix::default().with_weights(MixWeights::with_catalog_reads(0));
        assert_eq!(legacy.script(0), zeroed.script(0));
        assert!(legacy.script(0).iter().all(|q| !q.text.contains("sys.")));
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn zero_weights_panic() {
        let mix = ClientMix {
            weights: MixWeights {
                select: 0,
                join: 0,
                paper: 0,
                point: 0,
                range: 0,
                sys: 0,
            },
            ..ClientMix::default()
        };
        let _ = mix.script(0);
    }
}
