//! Synthetic-federation generation.
//!
//! Produces a [`Scenario`] shaped like the paper's (a multi-source
//! "entity" scheme merged from every source + a single-source "detail"
//! scheme for joins) at any scale. Used as the substitute for the
//! paper's proprietary MIT/Reuters databases (see DESIGN.md,
//! "Substitutions").
//!
//! Layout for `K` sources over an entity pool `E`:
//!
//! * source `S<i>` holds `ENTITY_<i>(NAME_<i>, CAT_<i>, VAL_<i>)` — the
//!   entities it covers (Bernoulli `coverage` per entity, but every
//!   entity is kept by at least one source so the pool size is exact);
//! * source `S0` additionally holds `DETAIL(DID, DNAME, DSCORE)` with
//!   `detail_rows` rows referencing random entities;
//! * the polygen schema has `PENTITY(ENAME*, CATEGORY, VALUE_<i>…)`
//!   (ENAME and CATEGORY multi-source, one VALUE per source) and
//!   `PDETAIL(DID*, ENAME, SCORE)`;
//! * category values are Zipf-skewed; with `conflict_rate > 0` a source
//!   sometimes asserts a deviant category, exercising conflict policies.

use crate::config::{RngStream, WorkloadConfig};
use crate::zipf::Zipf;
use polygen_catalog::dictionary::DataDictionary;
use polygen_catalog::domain::DomainMap;
use polygen_catalog::mapping::AttributeMapping;
use polygen_catalog::scenario::{LocalDatabase, Scenario};
use polygen_catalog::schema::PolygenSchema;
use polygen_catalog::scheme::PolygenScheme;
use polygen_core::relation::PolygenRelation;
use polygen_core::source::SourceId;
use polygen_flat::relation::Relation;
use polygen_flat::value::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Name of source `i`.
pub fn source_name(i: usize) -> String {
    format!("S{i}")
}

/// Name of source `i`'s entity relation.
pub fn entity_relation(i: usize) -> String {
    format!("ENTITY_{i}")
}

/// Canonical name of entity `e` — the value space `PDETAIL.ENAME`
/// point lookups draw keys from.
pub fn entity_name(e: usize) -> String {
    format!("E{e:06}")
}

fn category_name(c: usize) -> String {
    format!("C{c}")
}

/// Build the polygen schema for `sources` local databases.
pub fn build_schema(sources: usize) -> PolygenSchema {
    let ename: Vec<(String, String, String)> = (0..sources)
        .map(|i| (source_name(i), entity_relation(i), format!("NAME_{i}")))
        .collect();
    let cat: Vec<(String, String, String)> = (0..sources)
        .map(|i| (source_name(i), entity_relation(i), format!("CAT_{i}")))
        .collect();
    let mut attrs: Vec<(String, AttributeMapping)> = vec![
        (
            "ENAME".to_string(),
            AttributeMapping::of(
                &ename
                    .iter()
                    .map(|(d, r, a)| (d.as_str(), r.as_str(), a.as_str()))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "CATEGORY".to_string(),
            AttributeMapping::of(
                &cat.iter()
                    .map(|(d, r, a)| (d.as_str(), r.as_str(), a.as_str()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ];
    for i in 0..sources {
        attrs.push((
            format!("VALUE_{i}"),
            AttributeMapping::of(&[(
                source_name(i).as_str(),
                entity_relation(i).as_str(),
                format!("VAL_{i}").as_str(),
            )]),
        ));
    }
    let pentity = PolygenScheme::new(
        "PENTITY",
        attrs.iter().map(|(a, m)| (a.as_str(), m.clone())).collect(),
    );
    let pdetail = PolygenScheme::new(
        "PDETAIL",
        vec![
            ("DID", AttributeMapping::of(&[("S0", "DETAIL", "DID")])),
            ("ENAME", AttributeMapping::of(&[("S0", "DETAIL", "DNAME")])),
            ("SCORE", AttributeMapping::of(&[("S0", "DETAIL", "DSCORE")])),
        ],
    );
    PolygenSchema::new(vec![pentity, pdetail])
}

/// Generate the full synthetic federation.
#[allow(clippy::needless_range_loop)] // `s` names the source *and* indexes coverage
pub fn generate(config: &WorkloadConfig) -> Scenario {
    let config = config.validated();
    // Every concern draws from its own deterministic stream: growing the
    // detail relation or raising the conflict rate leaves the category
    // draws (and therefore the entity relations) of an otherwise equal
    // config bit-identical — benches and proptest corpora reproduce.
    let mut cat_rng = config.rng(RngStream::Categories);
    let mut cov_rng = config.rng(RngStream::Coverage);
    let mut conflict_rng = config.rng(RngStream::Conflicts);
    let mut detail_rng = config.rng(RngStream::Detail);
    let zipf = Zipf::new(config.categories);
    // Canonical category per entity (sources agree unless conflicted).
    let canon_cat: Vec<usize> = (0..config.entities)
        .map(|_| zipf.sample(&mut cat_rng))
        .collect();
    // Which sources cover which entity: Bernoulli(coverage), with a
    // guaranteed owner so the pool size is exact.
    let mut coverage: Vec<Vec<bool>> = Vec::with_capacity(config.entities);
    for _ in 0..config.entities {
        let mut row: Vec<bool> = (0..config.sources)
            .map(|_| cov_rng.random::<f64>() < config.coverage)
            .collect();
        if !row.iter().any(|&b| b) {
            let owner = cov_rng.random_range(0..config.sources);
            row[owner] = true;
        }
        coverage.push(row);
    }
    // Detail→entity references: uniform by default, Zipf-skewed when the
    // config asks for hot join keys.
    let key_zipf =
        (config.key_skew > 0.0).then(|| Zipf::with_exponent(config.entities, config.key_skew));
    let mut databases = Vec::with_capacity(config.sources);
    for s in 0..config.sources {
        let rel_name = entity_relation(s);
        let mut builder = Relation::build(
            &rel_name,
            &[
                &format!("NAME_{s}"),
                &format!("CAT_{s}"),
                &format!("VAL_{s}"),
            ],
        )
        .key(&[&format!("NAME_{s}")]);
        for e in 0..config.entities {
            if !coverage[e][s] {
                continue;
            }
            let cat = if config.conflict_rate > 0.0
                && conflict_rng.random::<f64>() < config.conflict_rate
            {
                // Deviant assertion: a different category.
                (canon_cat[e] + 1 + conflict_rng.random_range(0..config.categories.max(2) - 1))
                    % config.categories
            } else {
                canon_cat[e]
            };
            builder = builder.vrow(vec![
                Value::str(entity_name(e)),
                Value::str(category_name(cat)),
                // Per-source private value: deterministic in (entity, source).
                Value::Int((e * 31 + s * 7) as i64),
            ]);
        }
        let mut relations = vec![builder.finish().expect("entity relation")];
        if s == 0 {
            let mut detail = Relation::build("DETAIL", &["DID", "DNAME", "DSCORE"]).key(&["DID"]);
            for d in 0..config.detail_rows {
                let e = match &key_zipf {
                    Some(z) => z.sample(&mut detail_rng),
                    None => detail_rng.random_range(0..config.entities),
                };
                detail = detail.vrow(vec![
                    Value::Int(d as i64),
                    Value::str(entity_name(e)),
                    Value::Int(detail_rng.random_range(0..100)),
                ]);
            }
            relations.push(detail.finish().expect("detail relation"));
        }
        databases.push(LocalDatabase {
            name: source_name(s),
            relations,
        });
    }
    let mut dictionary = DataDictionary::with_parts(
        Default::default(),
        build_schema(config.sources),
        DomainMap::new(),
    );
    for s in 0..config.sources {
        let id = dictionary.intern_source(&source_name(s));
        // Descending credibility by index: S0 most trusted.
        dictionary.set_credibility(id, 1.0 - s as f64 / (config.sources + 1) as f64);
    }
    Scenario {
        dictionary,
        databases,
    }
}

/// A random flat relation for core-algebra microbenches: `rows` rows of
/// `cols` integer columns drawn from `0..cardinality`.
pub fn random_flat_relation(
    seed: u64,
    name: &str,
    rows: usize,
    cols: usize,
    cardinality: i64,
) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..cols).map(|c| format!("A{c}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = Relation::build(name, &refs);
    for r in 0..rows {
        let mut row = Vec::with_capacity(cols);
        // First column unique-ish (key-like), rest random.
        row.push(Value::Int(r as i64));
        for _ in 1..cols {
            row.push(Value::Int(rng.random_range(0..cardinality)));
        }
        b = b.vrow(row);
    }
    b.finish().expect("random relation")
}

/// The same, lifted into a tagged polygen relation whose cells carry
/// `tag_width` origin sources (for tag-overhead microbenches).
pub fn random_polygen_relation(
    seed: u64,
    name: &str,
    rows: usize,
    cols: usize,
    cardinality: i64,
    tag_width: usize,
) -> PolygenRelation {
    let flat = random_flat_relation(seed, name, rows, cols, cardinality);
    let mut rel = PolygenRelation::from_flat(&flat, SourceId(0));
    if tag_width > 1 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        for t in rel.tuples_mut() {
            for c in t.iter_mut() {
                for _ in 1..tag_width {
                    c.origin.insert(SourceId(rng.random_range(0..256) as u16));
                }
            }
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let c = WorkloadConfig::default().with_entities(50);
        let a = generate(&c);
        let b = generate(&c);
        for (da, db) in a.databases.iter().zip(&b.databases) {
            assert_eq!(da.name, db.name);
            for (ra, rb) in da.relations.iter().zip(&db.relations) {
                assert!(ra.set_eq(rb));
            }
        }
    }

    #[test]
    fn detail_rows_do_not_perturb_entity_generation() {
        // Streams are independent: a config differing only in detail_rows
        // (or conflict draws) produces bit-identical entity relations —
        // the reproducibility fix the bench corpus relies on.
        let small = WorkloadConfig {
            detail_rows: 10,
            ..WorkloadConfig::default().with_entities(80)
        };
        let big = WorkloadConfig {
            detail_rows: 5_000,
            ..small
        };
        let a = generate(&small);
        let b = generate(&big);
        for (da, db) in a.databases.iter().zip(&b.databases) {
            let ea = da
                .relations
                .iter()
                .find(|r| r.name().starts_with("ENTITY"))
                .unwrap();
            let eb = db
                .relations
                .iter()
                .find(|r| r.name().starts_with("ENTITY"))
                .unwrap();
            assert!(ea.set_eq(eb), "{} drifted with detail_rows", da.name);
        }
    }

    #[test]
    fn key_skew_concentrates_detail_references() {
        let refs_to_top_entity = |key_skew: f64| -> usize {
            let c = WorkloadConfig {
                detail_rows: 2_000,
                key_skew,
                ..WorkloadConfig::default().with_entities(500)
            };
            let s = generate(&c);
            let detail = s.databases[0].relation("DETAIL").unwrap();
            let mut counts = std::collections::HashMap::new();
            for row in detail.rows() {
                *counts.entry(row[1].clone()).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        let uniform = refs_to_top_entity(0.0);
        let skewed = refs_to_top_entity(1.0);
        assert!(
            skewed > uniform * 5,
            "Zipf keys must concentrate: uniform max {uniform}, skewed max {skewed}"
        );
        // Skewed generation is deterministic too.
        let c = WorkloadConfig {
            detail_rows: 200,
            key_skew: 1.0,
            ..WorkloadConfig::default().with_entities(100)
        };
        let a = generate(&c);
        let b = generate(&c);
        assert!(a.databases[0]
            .relation("DETAIL")
            .unwrap()
            .set_eq(b.databases[0].relation("DETAIL").unwrap()));
    }

    #[test]
    fn every_entity_covered_at_least_once() {
        let c = WorkloadConfig::default()
            .with_entities(200)
            .with_coverage(0.1);
        let s = generate(&c);
        let mut seen = std::collections::HashSet::new();
        for db in &s.databases {
            for rel in &db.relations {
                if rel.name().starts_with("ENTITY") {
                    for row in rel.rows() {
                        seen.insert(row[0].clone());
                    }
                }
            }
        }
        assert_eq!(seen.len(), 200);
    }

    #[test]
    fn full_coverage_replicates_everywhere() {
        let c = WorkloadConfig::default()
            .with_entities(40)
            .with_coverage(1.0);
        let s = generate(&c);
        for db in &s.databases {
            let ent = db
                .relations
                .iter()
                .find(|r| r.name().starts_with("ENTITY"))
                .unwrap();
            assert_eq!(ent.len(), 40);
        }
    }

    #[test]
    fn schema_matches_generated_data() {
        let c = WorkloadConfig::default().with_sources(4).with_entities(10);
        let s = generate(&c);
        let pent = s.dictionary.schema().scheme("PENTITY").unwrap();
        assert_eq!(pent.local_relations().len(), 4);
        assert_eq!(pent.key(), "ENAME");
        assert!(s.dictionary.schema().contains("PDETAIL"));
        assert_eq!(s.databases.len(), 4);
        // S0 has the detail relation.
        assert!(s.databases[0].relation("DETAIL").is_some());
        assert!(s.databases[1].relation("DETAIL").is_none());
    }

    #[test]
    fn conflicts_appear_at_positive_rate() {
        let c = WorkloadConfig {
            conflict_rate: 1.0,
            coverage: 1.0,
            entities: 30,
            categories: 8,
            ..WorkloadConfig::default()
        };
        let s = generate(&c);
        // With conflict_rate 1.0 every source deviates from canon, so two
        // sources rarely agree; check at least one disagreement exists.
        let a = s.databases[0].relation("ENTITY_0").unwrap();
        let b = s.databases[1].relation("ENTITY_1").unwrap();
        let cat_a: std::collections::HashMap<_, _> = a
            .rows()
            .iter()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        let disagreements = b
            .rows()
            .iter()
            .filter(|r| cat_a.get(&r[0]).is_some_and(|c| c != &r[1]))
            .count();
        assert!(disagreements > 0);
    }

    #[test]
    fn random_relations_are_deterministic_and_sized() {
        let a = random_flat_relation(9, "R", 100, 3, 10);
        let b = random_flat_relation(9, "R", 100, 3, 10);
        assert!(a.set_eq(&b));
        assert_eq!(a.len(), 100);
        assert_eq!(a.degree(), 3);
        let p = random_polygen_relation(9, "R", 50, 2, 10, 4);
        assert_eq!(p.len(), 50);
        assert!(!p.tuples()[0][0].origin.is_empty());
    }
}
