//! Query generation over the synthetic federation.
//!
//! Produces polygen algebra expressions (and SQL) of controlled shape for
//! the translator and end-to-end benches: select-only, select+join, and
//! deep chains mixing restricts, joins and projections.

use crate::config::WorkloadConfig;
use polygen_sql::algebra_expr::{parse_algebra, AlgebraExpr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A category-select over the merged multi-source scheme:
/// `PENTITY [CATEGORY = "C<k>"]`.
pub fn select_query(category: usize) -> String {
    format!("PENTITY [CATEGORY = \"C{category}\"]")
}

/// The detail→entity join with a score filter, projected:
/// `((PDETAIL [SCORE >= s]) [ENAME = ENAME] PENTITY) [ENAME, CATEGORY]`.
pub fn join_query(min_score: i64) -> String {
    format!("((PDETAIL [SCORE >= {min_score}]) [ENAME = ENAME] PENTITY) [ENAME, CATEGORY]")
}

/// A point lookup on the single-source detail relation:
/// `PDETAIL [ENAME = "E<k>"]`. Lowers to an LQP select over
/// `S0.DETAIL.DNAME` — the shape a hash index serves in O(1) instead of
/// a full source sweep.
pub fn point_lookup(entity: usize) -> String {
    format!(
        "PDETAIL [ENAME = \"{}\"]",
        crate::generator::entity_name(entity)
    )
}

/// A bounded range scan on the detail score:
/// `PDETAIL [SCORE >= lo] [SCORE <= hi]`. The first conjunct ships to
/// the LQP, the second becomes a pipeline stage — the between shape a
/// sorted index folds into one range probe with a residual re-check.
pub fn range_scan(lo: i64, hi: i64) -> String {
    format!("PDETAIL [SCORE >= {lo}] [SCORE <= {hi}]")
}

/// A catalog read over the mediator's own windowed metric rollups:
/// ordinary SQL against the `sys` source, materialized from live
/// service state at admission (never served from the result cache).
pub fn sys_stats_query() -> String {
    "SELECT BUCKET, QUERIES, ERRORS, RESULT_HITS, P95_US FROM sys.stats".to_string()
}

/// A catalog read over the live-session registry — what every peer is
/// running *right now*, the issuing session included.
pub fn sys_sessions_query() -> String {
    "SELECT SESSION_ID, PEER, QUERIES, ROWS, LANG FROM sys.sessions".to_string()
}

/// The paper-query shape in SQL over the synthetic schema (an IN-subquery
/// feeding a join feeding a restrict feeding a project).
pub fn paper_shaped_sql(category: usize) -> String {
    format!(
        "SELECT ENAME, CATEGORY FROM PENTITY WHERE ENAME IN \
         (SELECT ENAME FROM PDETAIL WHERE SCORE >= 50) \
         AND CATEGORY = \"C{category}\""
    )
}

/// A random expression of `depth` chained operations starting from a
/// select on PENTITY; deterministic in `seed`.
pub fn random_expression(config: &WorkloadConfig, seed: u64, depth: usize) -> AlgebraExpr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = select_query(rng.random_range(0..config.categories));
    let mut joined_detail = false;
    for _ in 0..depth {
        match rng.random_range(0..3u32) {
            0 if !joined_detail => {
                text = format!(
                    "(PDETAIL [SCORE >= {}]) [ENAME = ENAME] ({text})",
                    rng.random_range(0..100)
                );
                joined_detail = true;
            }
            1 => {
                text = format!(
                    "({text}) [CATEGORY <> \"C{}\"]",
                    rng.random_range(0..config.categories)
                );
            }
            _ => {
                text = format!("({text}) [ENAME, CATEGORY]");
                // After a projection only these two attrs remain; stop
                // growing shapes that would reference dropped attrs.
                break;
            }
        }
    }
    parse_algebra(&text).expect("generated expression parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use polygen_pqp::pqp::Pqp;

    #[test]
    fn canned_queries_parse() {
        assert!(parse_algebra(&select_query(3)).is_ok());
        assert!(parse_algebra(&join_query(50)).is_ok());
        assert!(parse_algebra(&point_lookup(42)).is_ok());
        assert!(parse_algebra(&range_scan(10, 19)).is_ok());
    }

    #[test]
    fn index_classes_run_end_to_end() {
        let config = WorkloadConfig::default().with_entities(100).with_sources(3);
        let scenario = generate(&config);
        let pqp = Pqp::for_scenario(&scenario);
        let point = pqp.query_algebra(&point_lookup(0)).unwrap();
        assert_eq!(point.answer.schema().attrs().len(), 3);
        let range = pqp.query_algebra(&range_scan(0, 99)).unwrap();
        assert_eq!(range.answer.len(), config.detail_rows, "full score range");
        assert!(pqp.query_algebra(&range_scan(40, 49)).unwrap().answer.len() < config.detail_rows);
    }

    #[test]
    fn generated_queries_run_end_to_end() {
        let config = WorkloadConfig::default().with_entities(100).with_sources(3);
        let scenario = generate(&config);
        let pqp = Pqp::for_scenario(&scenario);
        let out = pqp.query_algebra(&select_query(0)).unwrap();
        assert!(!out.answer.is_empty(), "C0 is the most frequent category");
        let out = pqp.query_algebra(&join_query(90)).unwrap();
        assert_eq!(out.answer.schema().attrs().len(), 2);
        let out = pqp.query(&paper_shaped_sql(0)).unwrap();
        assert_eq!(out.answer.schema().attrs().len(), 2);
    }

    #[test]
    fn random_expressions_are_deterministic_and_executable() {
        let config = WorkloadConfig::default().with_entities(60);
        let scenario = generate(&config);
        let pqp = Pqp::for_scenario(&scenario);
        for seed in 0..8 {
            let a = random_expression(&config, seed, 4);
            let b = random_expression(&config, seed, 4);
            assert_eq!(a, b);
            let out = pqp.query_algebra(&a.to_string());
            assert!(out.is_ok(), "seed {seed}: {a} failed: {:?}", out.err());
        }
    }
}
