//! Plan costing — the estimation half of Figure 2's Query Optimizer.
//!
//! The paper's prototype federated co-located MIT databases with
//! transatlantic commercial feeds, so the dominant cost is *where* an
//! operation runs and *how many tuples it ships*, not CPU. This module
//! estimates both: per-relation statistics come from the LQPs, execution
//! locations from the IOM, latency from each LQP's
//! [`CostModel`](polygen_lqp::cost::CostModel). Estimates are deliberately
//! coarse (fixed selectivities, no histograms) — enough to compare plans
//! and to surface "this plan ships the whole Finsbury feed twice".

use crate::iom::{ExecLoc, Iom, IomRow};
use crate::plan::{Partitioning, PhysOp, PhysicalPlan, StageKind};
use crate::pom::{Op, RelRef};
use polygen_index::Probe;
use polygen_lqp::registry::LqpRegistry;
use std::collections::BTreeMap;
use std::fmt;

/// Assumed fraction of rows surviving a selection predicate.
const SELECT_SELECTIVITY: f64 = 0.1;
/// Assumed fraction of row pairs surviving a restrict/θ-join predicate.
const RESTRICT_SELECTIVITY: f64 = 0.3;
/// Assumed join fan-out: |L ⋈ R| ≈ max(|L|, |R|) × this.
const JOIN_FANOUT: f64 = 1.0;
/// PQP-side per-input-tuple CPU cost, µs.
const PQP_TUPLE_US: f64 = 1.0;
/// Per-input-tuple CPU cost of a batch-eligible pipeline, µs: the
/// columnar kernels compare one typed column per predicate and only
/// shrink a selection vector — no per-row dispatch, no cell clones, no
/// per-stage retagging — so they are charged well under the row rate.
const BATCH_TUPLE_US: f64 = 0.2;
/// Per-tuple overhead of partition-parallel execution, µs: the
/// repartition pass over the input plus the order-restoring merge over
/// the output (both pointer traffic, far cheaper than the kernel work).
const PARTITION_US: f64 = 0.1;
/// Flat cost of one index probe, µs (a hash lookup or binary search
/// into snapshot-materialized postings — no LQP round trip).
const INDEX_PROBE_US: f64 = 2.0;
/// Assumed fraction of base rows matching an equality (point) probe —
/// tighter than a generic selection: point probes target key-like
/// columns.
const INDEX_POINT_SELECTIVITY: f64 = 0.01;

/// CPU cost of a PQP-side operator under its partitioning annotation: a
/// serial operator inspects every tuple on one worker; a partitioned one
/// splits the inspection across its partitions but pays the repartition
/// and order-restoring merge overhead on top.
fn partitioned_cpu_cost(
    inspected: f64,
    out_rows: f64,
    partitioning: &Partitioning,
    tuple_us: f64,
) -> f64 {
    match partitioning {
        Partitioning::Serial => inspected * tuple_us,
        Partitioning::Chunked { partitions } | Partitioning::Hash { partitions, .. } => {
            inspected * tuple_us / (*partitions).max(1) as f64
                + (inspected + out_rows) * PARTITION_US
        }
    }
}

/// Cost estimate for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// Total estimated microseconds.
    pub total_us: f64,
    /// Estimated tuples shipped out of LQPs.
    pub tuples_shipped: f64,
    /// Per-row `(R(n), estimated µs, estimated output rows)`.
    pub rows: Vec<(usize, f64, f64)>,
}

impl fmt::Display for PlanCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "estimated cost: {:.0} µs, {:.0} tuples shipped from LQPs",
            self.total_us, self.tuples_shipped
        )?;
        for (pr, us, rows) in &self.rows {
            writeln!(f, "  R({pr}): {us:.0} µs, ~{rows:.0} rows")?;
        }
        Ok(())
    }
}

fn input_rows(r: &RelRef, est: &BTreeMap<usize, f64>) -> f64 {
    match r {
        RelRef::Derived(i) => est.get(i).copied().unwrap_or(0.0),
        RelRef::DerivedList(ids) => ids.iter().map(|i| est.get(i).copied().unwrap_or(0.0)).sum(),
        _ => 0.0,
    }
}

/// Estimate the cost of executing an IOM against a registry.
pub fn estimate(iom: &Iom, registry: &LqpRegistry) -> PlanCost {
    let mut est_rows: BTreeMap<usize, f64> = BTreeMap::new();
    let mut rows = Vec::with_capacity(iom.rows.len());
    let mut total = 0.0;
    let mut shipped = 0.0;
    for row in &iom.rows {
        let (cost, out_rows) = estimate_row(row, registry, &est_rows);
        if matches!(row.el, ExecLoc::Lqp(_)) {
            shipped += out_rows;
        }
        est_rows.insert(row.pr, out_rows);
        rows.push((row.pr, cost, out_rows));
        total += cost;
    }
    PlanCost {
        total_us: total,
        tuples_shipped: shipped,
        rows,
    }
}

/// Estimate the cost of a lowered physical plan. Unlike the IOM-level
/// [`estimate`], this sees the physical strategies: a fused pipeline
/// inspects its input once regardless of stage count, a hash join
/// inspects `|L| + |R|`, and the nested-loop θ-join inspects `|L| × |R|`.
pub fn estimate_physical(plan: &PhysicalPlan, registry: &LqpRegistry) -> PlanCost {
    let mut est: Vec<f64> = Vec::with_capacity(plan.nodes.len());
    let mut rows = Vec::with_capacity(plan.nodes.len());
    let mut total = 0.0;
    let mut shipped = 0.0;
    for (i, node) in plan.nodes.iter().enumerate() {
        let (inspected, out_rows) = match &node.op {
            PhysOp::Scan { db, op } => {
                // LQP-shipped work is priced by the LQP's cost model,
                // not the PQP's per-tuple CPU rate — account for it
                // here and move on to the next node.
                let (cost, out) = scan_estimate(
                    registry,
                    db,
                    Some(&op.relation),
                    op.filter.is_some(),
                    op.restrict.is_some(),
                );
                shipped += out;
                est.push(out);
                rows.push((node.row, cost, out));
                total += cost;
                continue;
            }
            PhysOp::IndexScan {
                db,
                relation,
                probe,
                ..
            } => {
                // A probe reads snapshot-materialized postings: no LQP
                // latency, no tuples shipped — the charge is the probe
                // itself plus emitting the matches. This is what lets
                // EXPLAIN justify the route against the full scan.
                let base_rows = registry
                    .get(db)
                    .and_then(|lqp| lqp.stats(relation))
                    .map(|s| s.rows as f64)
                    .unwrap_or(100.0);
                let out = match probe {
                    Probe::Point(_) => base_rows * INDEX_POINT_SELECTIVITY,
                    Probe::Range { .. } => base_rows * SELECT_SELECTIVITY,
                };
                let cost = INDEX_PROBE_US + out * PQP_TUPLE_US;
                est.push(out);
                rows.push((node.row, cost, out));
                total += cost;
                continue;
            }
            PhysOp::Pipeline { input, stages } => {
                let inspected = est[*input];
                let mut out = inspected;
                for stage in stages {
                    out = match stage.kind {
                        StageKind::Select { .. } => out * SELECT_SELECTIVITY,
                        StageKind::Restrict { .. } => out * RESTRICT_SELECTIVITY,
                        StageKind::Project { .. } => out,
                    };
                }
                // One pass over the input, however many stages fused.
                (inspected, out)
            }
            PhysOp::HashJoin { left, right, .. } => {
                let (l, r) = (est[*left], est[*right]);
                (l + r, l.max(r) * JOIN_FANOUT)
            }
            PhysOp::ThetaJoin { left, right, .. } => {
                let (l, r) = (est[*left], est[*right]);
                (l * r, l.max(r) * JOIN_FANOUT)
            }
            PhysOp::HashMerge { inputs, .. } => {
                let sum: f64 = inputs.iter().map(|i| est[*i]).sum();
                (sum, sum)
            }
            PhysOp::AntiJoin { left, right, .. } => {
                let (l, r) = (est[*left], est[*right]);
                (l + r, l * 0.5)
            }
            PhysOp::Union { left, right } => {
                let (l, r) = (est[*left], est[*right]);
                (l + r, l + r)
            }
            PhysOp::Difference { left, right } => {
                let (l, r) = (est[*left], est[*right]);
                (l + r, l * 0.5)
            }
            PhysOp::Intersect { left, right } => {
                let (l, r) = (est[*left], est[*right]);
                (l + r, l.min(r))
            }
            PhysOp::Product { left, right } => {
                let (l, r) = (est[*left], est[*right]);
                (l * r, l * r)
            }
        };
        // Batch-eligible pipelines run the columnar kernels; everything
        // else pays the row engine's per-tuple rate.
        let tuple_us = if plan.is_batch_pipeline(i) {
            BATCH_TUPLE_US
        } else {
            PQP_TUPLE_US
        };
        let cost = partitioned_cpu_cost(inspected, out_rows, &node.partitioning, tuple_us);
        est.push(out_rows);
        rows.push((node.row, cost, out_rows));
        total += cost;
    }
    PlanCost {
        total_us: total,
        tuples_shipped: shipped,
        rows,
    }
}

/// Estimated (µs, output rows) of one operation shipped to an LQP —
/// shared by the IOM and physical estimators so the two can never drift
/// on base-scan cardinality or latency.
fn scan_estimate(
    registry: &LqpRegistry,
    db: &str,
    relation: Option<&str>,
    has_filter: bool,
    has_restrict: bool,
) -> (f64, f64) {
    let (base_rows, model) = match registry.get(db) {
        Some(lqp) => (
            relation
                .and_then(|rel| lqp.stats(rel))
                .map(|s| s.rows as f64)
                .unwrap_or(100.0),
            lqp.cost_model(),
        ),
        None => (100.0, polygen_lqp::cost::CostModel::local()),
    };
    let out_rows = if has_filter {
        base_rows * SELECT_SELECTIVITY
    } else if has_restrict {
        base_rows * RESTRICT_SELECTIVITY
    } else {
        base_rows
    };
    (model.op_cost_us(out_rows.ceil() as usize) as f64, out_rows)
}

fn estimate_row(row: &IomRow, registry: &LqpRegistry, est: &BTreeMap<usize, f64>) -> (f64, f64) {
    match &row.el {
        ExecLoc::Lqp(db) => {
            let relation = match &row.lhr {
                RelRef::Named(rel) => Some(rel.as_str()),
                _ => None,
            };
            scan_estimate(
                registry,
                db,
                relation,
                row.op == Op::Select,
                row.op == Op::Restrict,
            )
        }
        ExecLoc::Pqp => {
            let left = input_rows(&row.lhr, est);
            let right = input_rows(&row.rhr, est);
            let out_rows = match row.op {
                Op::Select => left * SELECT_SELECTIVITY,
                Op::Restrict => left * RESTRICT_SELECTIVITY,
                Op::Project => left,
                Op::Join => left.max(right) * JOIN_FANOUT,
                Op::AntiJoin => left * 0.5,
                Op::Union => left + right,
                Op::Difference => left * 0.5,
                Op::Intersect => left.min(right),
                Op::Product => left * right,
                Op::Merge => left, // union of key spaces ≤ sum of inputs
                Op::Retrieve => left,
            };
            // CPU cost proportional to the work the operator inspects.
            let inspected = match row.op {
                Op::Join | Op::AntiJoin | Op::Intersect => left + right,
                Op::Product => left * right,
                Op::Union | Op::Difference => left + right,
                _ => left,
            };
            (inspected * PQP_TUPLE_US, out_rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::interpreter::interpret;
    use polygen_catalog::scenario;
    use polygen_lqp::adapter::MenuDrivenLqp;
    use polygen_lqp::cost::CostModel;
    use polygen_lqp::memory::InMemoryLqp;
    use polygen_lqp::registry::LqpRegistry;
    use polygen_lqp::scenario_registry;
    use polygen_sql::algebra_expr::{parse_algebra, PAPER_EXPRESSION};
    use std::sync::Arc;

    fn paper_iom() -> Iom {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra(PAPER_EXPRESSION).unwrap()).unwrap();
        interpret(&pom, &schema).unwrap().1
    }

    #[test]
    fn estimates_cover_every_row() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let cost = estimate(&paper_iom(), &registry);
        assert_eq!(cost.rows.len(), 10);
        assert!(cost.total_us > 0.0);
        assert!(cost.tuples_shipped > 0.0);
        // Five LQP rows ship tuples: the MBA select (~0.8 rows est) plus
        // four full retrieves (9 + 9 + 7 + 10 actual rows).
        assert!(cost.tuples_shipped > 30.0, "{}", cost.tuples_shipped);
        let shown = cost.to_string();
        assert!(shown.contains("tuples shipped"));
    }

    #[test]
    fn physical_estimate_sees_fusion() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let iom = paper_iom();
        let fused = crate::plan::lower(
            &iom,
            &registry,
            &s.dictionary,
            crate::plan::LowerOptions::default(),
        )
        .unwrap();
        let unfused = crate::plan::lower(
            &iom,
            &registry,
            &s.dictionary,
            crate::plan::LowerOptions {
                fuse: false,
                ..crate::plan::LowerOptions::default()
            },
        )
        .unwrap();
        let cf = estimate_physical(&fused, &registry);
        let cu = estimate_physical(&unfused, &registry);
        assert!(cf.rows.len() < cu.rows.len(), "fusion shrinks the plan");
        assert!(
            cf.total_us < cu.total_us,
            "a fused pipeline inspects its input once: {} vs {}",
            cf.total_us,
            cu.total_us
        );
        assert_eq!(cf.tuples_shipped, cu.tuples_shipped, "shipping unchanged");
    }

    #[test]
    fn partitioned_plan_estimates_cheaper_cpu_but_charges_overhead() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let iom = paper_iom();
        let serial = crate::plan::lower(
            &iom,
            &registry,
            &s.dictionary,
            crate::plan::LowerOptions::default(),
        )
        .unwrap();
        let partitioned = crate::plan::lower(
            &iom,
            &registry,
            &s.dictionary,
            crate::plan::LowerOptions {
                fuse: true,
                partitions: 4,
            },
        )
        .unwrap();
        let cs = estimate_physical(&serial, &registry);
        let cp = estimate_physical(&partitioned, &registry);
        assert!(
            cp.total_us < cs.total_us,
            "4-way split must win at PQP_TUPLE_US/partitions + overhead: {} vs {}",
            cp.total_us,
            cs.total_us
        );
        assert_eq!(cs.tuples_shipped, cp.tuples_shipped, "shipping unchanged");
        // The overhead term is real: a partitioned node never costs a
        // full 1/partitions of its serial estimate.
        let serial_pqp: f64 = cs
            .rows
            .iter()
            .zip(&cp.rows)
            .filter(|((_, a, _), (_, b, _))| a != b)
            .map(|((_, a, _), _)| a)
            .sum();
        let parallel_pqp: f64 = cs
            .rows
            .iter()
            .zip(&cp.rows)
            .filter(|((_, a, _), (_, b, _))| a != b)
            .map(|(_, (_, b, _))| b)
            .sum();
        assert!(parallel_pqp > serial_pqp / 4.0);
    }

    #[test]
    fn remote_feed_dominates_plan_cost() {
        let s = scenario::build();
        let local = scenario_registry(&s);
        let remote = LqpRegistry::new();
        for db in &s.databases {
            let inner = InMemoryLqp::new(&db.name, db.relations.clone());
            if db.name == "CD" {
                remote.register(Arc::new(MenuDrivenLqp::new(
                    inner,
                    CostModel::slow_remote(),
                )));
            } else {
                remote.register(Arc::new(inner));
            }
        }
        let iom = paper_iom();
        let cheap = estimate(&iom, &local);
        let pricey = estimate(&iom, &remote);
        assert!(
            pricey.total_us > cheap.total_us * 10.0,
            "remote feed must dominate: {} vs {}",
            pricey.total_us,
            cheap.total_us
        );
    }

    #[test]
    fn dedup_lowers_estimated_cost() {
        // A self-join ships CAREER twice naive, once optimized.
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra("PCAREER [AID# = AID#] PCAREER").unwrap()).unwrap();
        let (_, iom) = interpret(&pom, &schema).unwrap();
        let (opt, _) = crate::optimizer::optimize(&iom, &registry, &s.dictionary).unwrap();
        let naive_cost = estimate(&iom, &registry);
        let opt_cost = estimate(&opt, &registry);
        assert!(opt_cost.tuples_shipped < naive_cost.tuples_shipped);
        assert!(opt_cost.total_us < naive_cost.total_us);
    }
}
