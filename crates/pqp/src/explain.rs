//! EXPLAIN output: the full translation pipeline and answer provenance in
//! human-readable form — the paper's Tables 1–3 followed by §IV's
//! source-tagging observations.

use crate::costing;
use crate::iom::render_iom;
use crate::plan::{render_plan, PhysicalPlan};
use crate::pom::render_pom;
use crate::pqp::QueryOutcome;
use polygen_catalog::dictionary::DataDictionary;
use polygen_core::lineage;
use polygen_core::render::render_relation;
use polygen_lqp::registry::LqpRegistry;
use polygen_obs::trace::TraceReport;
use std::fmt::Write as _;

/// Render a full explain report for an executed query.
pub fn explain(outcome: &QueryOutcome, dictionary: &DataDictionary) -> String {
    let mut out = String::new();
    let reg = dictionary.registry();
    let _ = writeln!(out, "== Polygen algebraic expression ==");
    let _ = writeln!(out, "{}", outcome.compiled.expr);
    let _ = writeln!(out, "\n== Polygen Operation Matrix (Table 1 form) ==");
    out.push_str(&render_pom(&outcome.compiled.pom));
    let _ = writeln!(
        out,
        "\n== Half-processed IOM after pass one (Table 2 form) =="
    );
    out.push_str(&render_iom(&outcome.compiled.half));
    let _ = writeln!(out, "\n== Intermediate Operation Matrix (Table 3 form) ==");
    out.push_str(&render_iom(&outcome.compiled.iom));
    if outcome.compiled.plan != outcome.compiled.iom {
        let _ = writeln!(out, "\n== Optimized plan ==");
        out.push_str(&render_iom(&outcome.compiled.plan));
        let r = outcome.compiled.optimizer_report;
        let _ = writeln!(
            out,
            "(deduped {} retrieves + {} merges, pushed {} selects, eliminated {} rows)",
            r.retrieves_deduped, r.merges_deduped, r.selects_pushed, r.rows_eliminated
        );
    }
    let _ = writeln!(out, "\n== Physical plan ==");
    out.push_str(&render_plan(&outcome.compiled.physical));
    let fused = outcome.compiled.physical.fused_rows();
    if fused > 0 {
        let _ = writeln!(out, "({fused} row(s) fused into pipeline stages)");
    }
    let _ = writeln!(out, "\n== Answer ==");
    out.push_str(&render_relation(&outcome.answer, reg));
    let _ = writeln!(out, "\n== Provenance by attribute ==");
    for col in lineage::column_provenance(&outcome.answer) {
        let _ = writeln!(
            out,
            "{}: origins {} | intermediates {}",
            col.attribute,
            reg.render_set(&col.origins),
            reg.render_set(&col.intermediates)
        );
    }
    let purely = lineage::purely_intermediate_sources(&outcome.answer);
    if !purely.is_empty() {
        let names: Vec<&str> = purely.iter().map(|id| reg.name(*id)).collect();
        let _ = writeln!(
            out,
            "purely intermediate sources (consulted, no data in answer): {}",
            names.join(", ")
        );
    }
    out
}

/// [`explain`] plus the plan-cost estimate against a concrete LQP
/// registry (which LQPs dominate, how many tuples ship), estimated over
/// the physical operator tree.
pub fn explain_with_cost(
    outcome: &QueryOutcome,
    dictionary: &DataDictionary,
    registry: &LqpRegistry,
) -> String {
    let mut out = explain(outcome, dictionary);
    let _ = writeln!(out, "\n== Plan cost estimate (physical) ==");
    out.push_str(&costing::estimate_physical(&outcome.compiled.physical, registry).to_string());
    out
}

/// EXPLAIN ANALYZE rendering: the physical plan in `render_plan` form,
/// each node line extended with the cost model's estimate
/// (`est=(µs, ~rows)`) and the measured actuals from a traced run
/// (`act=(µs, rows)`). `report` must come from a traced execution of
/// this same `plan` — the executor records one span per node, annotated
/// with its node index and output row count, and those spans are what
/// the `act=` side reads. Nodes with no matching span (a plan that
/// failed mid-walk) render `act=(not executed)`.
pub fn render_analyzed_plan(
    plan: &PhysicalPlan,
    registry: &LqpRegistry,
    report: &TraceReport,
) -> String {
    let cost = costing::estimate_physical(plan, registry);
    // One executor span per node, keyed by its `node` annotation.
    let mut act: Vec<Option<(u64, u64)>> = vec![None; plan.nodes.len()];
    for s in &report.spans {
        if let (Some(node), Some(rows)) = (s.note_uint("node"), s.note_uint("rows")) {
            if let Some(slot) = act.get_mut(usize::try_from(node).unwrap_or(usize::MAX)) {
                *slot = Some((s.duration_micros(), rows));
            }
        }
    }
    let mut out = String::new();
    let mut total_act = 0u64;
    for (i, line) in render_plan(plan).lines().enumerate() {
        // `estimate_physical` pushes exactly one entry per node, in node
        // order, so entry `i` is this line's node.
        let est = cost.rows.get(i).map_or_else(String::new, |(_, us, rows)| {
            format!("  est=({us:.0} µs, ~{rows:.0} rows)")
        });
        let shown_act = act.get(i).copied().flatten().map_or_else(
            || "  act=(not executed)".to_string(),
            |(us, rows)| {
                total_act += us;
                format!("  act=({us} µs, {rows} rows)")
            },
        );
        let _ = writeln!(out, "{line}{est}{shown_act}");
    }
    let _ = writeln!(
        out,
        "(estimated {:.0} µs total, executed in {} µs)",
        cost.total_us, total_act
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::pqp::Pqp;
    use polygen_catalog::scenario;
    use polygen_sql::algebra_expr::PAPER_EXPRESSION;

    #[test]
    fn explain_with_cost_appends_estimate() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        let report = super::explain_with_cost(&out, pqp.dictionary(), pqp.registry());
        assert!(report.contains("Plan cost estimate"));
        assert!(report.contains("tuples shipped"));
    }

    #[test]
    fn explain_covers_all_stages() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        let report = super::explain(&out, pqp.dictionary());
        assert!(report.contains("Polygen Operation Matrix"));
        assert!(report.contains("pass one"));
        assert!(report.contains("Intermediate Operation Matrix"));
        assert!(report.contains("Merge"));
        assert!(report.contains("== Physical plan =="));
        assert!(report.contains("HashJoin"), "join strategy annotated");
        assert!(report.contains("HashMerge"), "merge strategy annotated");
        assert!(report.contains("fused"), "fusion annotated");
        assert!(report.contains("== Answer =="));
        assert!(report.contains("Genentech"));
        assert!(report.contains("Provenance by attribute"));
        // PD contributed to selection of Citicorp's tuple but the final
        // relation's CEO/ONAME data include PD origins for Citicorp; AD
        // appears as origin too, so no purely-intermediate line is
        // guaranteed — just check the report renders tags.
        assert!(report.contains("{AD, CD}"));
    }
}
