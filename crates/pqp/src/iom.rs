//! The Intermediate Operation Matrix (IOM) — Tables 2 and 3.
//!
//! "Next the Polygen Operation Interpreter expands the Polygen Operation
//! Matrix and generates an Intermediate Operation Matrix. … The execution
//! location (EL) of an operation depends on where the data resides. Note
//! that when the execution location is an LQP … it is also used as the
//! originating source tag for each of the cells of the polygen base
//! relation" (§III).

use crate::pom::{render_table, Op, RelRef, Rha};
use polygen_flat::value::Cmp;
use std::fmt;

/// Where a row executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecLoc {
    /// At a Local Query Processor (named by local database).
    Lqp(String),
    /// At the Polygen Query Processor.
    Pqp,
}

impl fmt::Display for ExecLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecLoc::Lqp(db) => write!(f, "{db}"),
            ExecLoc::Pqp => write!(f, "PQP"),
        }
    }
}

/// One row of an Intermediate Operation Matrix (also used for the
/// half-processed matrix `H` between the two interpreter passes).
#[derive(Debug, Clone, PartialEq)]
pub struct IomRow {
    /// Result id `R(pr)`.
    pub pr: usize,
    /// The operator.
    pub op: Op,
    /// Left-hand relation. `Named` means a *local* scheme when `el` is an
    /// LQP, and a not-yet-expanded polygen scheme inside `H`.
    pub lhr: RelRef,
    /// Left-hand attribute(s).
    pub lha: Vec<String>,
    /// θ.
    pub theta: Option<Cmp>,
    /// Right-hand attribute or constant.
    pub rha: Rha,
    /// Right-hand relation.
    pub rhr: RelRef,
    /// Execution location.
    pub el: ExecLoc,
    /// For Merge rows: the multi-source polygen scheme whose attribute
    /// mappings drive column relabeling and whose primary key is the
    /// merge key.
    pub scheme_ctx: Option<String>,
}

/// An Intermediate Operation Matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Iom {
    /// Rows in execution order; row `i` defines `R(i+1)`.
    pub rows: Vec<IomRow>,
}

impl Iom {
    /// Number of rows (the paper's `Cardinality`).
    pub fn cardinality(&self) -> usize {
        self.rows.len()
    }

    /// The result id of the final row — the query answer.
    pub fn final_result(&self) -> Option<usize> {
        self.rows.last().map(|r| r.pr)
    }

    /// Count rows routed to LQPs vs the PQP — the routing statistic the
    /// optimizer ablation reports.
    pub fn routing_counts(&self) -> (usize, usize) {
        let lqp = self
            .rows
            .iter()
            .filter(|r| matches!(r.el, ExecLoc::Lqp(_)))
            .count();
        (lqp, self.rows.len() - lqp)
    }
}

/// Render Table-2/3 style: `PR | OP | LHR | LHA | θ | RHA | RHR | EL`.
pub fn render_iom(iom: &Iom) -> String {
    let headers = ["PR", "OP", "LHR", "LHA", "θ", "RHA", "RHR", "EL"];
    let body: Vec<[String; 8]> = iom
        .rows
        .iter()
        .map(|r| {
            [
                format!("R({})", r.pr),
                r.op.to_string(),
                r.lhr.to_string(),
                if r.lha.is_empty() {
                    "nil".to_string()
                } else {
                    r.lha.join(", ")
                },
                r.theta.map_or("nil".to_string(), |c| c.to_string()),
                r.rha.to_string(),
                r.rhr.to_string(),
                r.el.to_string(),
            ]
        })
        .collect();
    render_table(&headers, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retrieve_row(pr: usize, rel: &str, db: &str) -> IomRow {
        IomRow {
            pr,
            op: Op::Retrieve,
            lhr: RelRef::Named(rel.into()),
            lha: Vec::new(),
            theta: None,
            rha: Rha::Nil,
            rhr: RelRef::Nil,
            el: ExecLoc::Lqp(db.into()),
            scheme_ctx: None,
        }
    }

    #[test]
    fn routing_counts_split_lqp_pqp() {
        let iom = Iom {
            rows: vec![
                retrieve_row(1, "BUSINESS", "AD"),
                IomRow {
                    pr: 2,
                    op: Op::Merge,
                    lhr: RelRef::DerivedList(vec![1]),
                    lha: Vec::new(),
                    theta: None,
                    rha: Rha::Nil,
                    rhr: RelRef::Nil,
                    el: ExecLoc::Pqp,
                    scheme_ctx: Some("PORGANIZATION".into()),
                },
            ],
        };
        assert_eq!(iom.routing_counts(), (1, 1));
        assert_eq!(iom.final_result(), Some(2));
        assert_eq!(iom.cardinality(), 2);
    }

    #[test]
    fn render_contains_el_column() {
        let iom = Iom {
            rows: vec![retrieve_row(1, "CAREER", "AD")],
        };
        let shown = render_iom(&iom);
        assert!(shown.contains("EL"));
        assert!(shown.contains("AD"));
        assert!(shown.contains("Retrieve"));
    }

    #[test]
    fn execloc_display() {
        assert_eq!(ExecLoc::Lqp("AD".into()).to_string(), "AD");
        assert_eq!(ExecLoc::Pqp.to_string(), "PQP");
    }
}
