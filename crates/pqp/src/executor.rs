//! The plan executor.
//!
//! [`execute`] lowers the IOM through the physical-plan layer
//! ([`crate::plan`]) and walks the resulting operator DAG: scans run at
//! the LQPs (tagged at the boundary), fused Select/Restrict/Project
//! stages stream `Arc`-shared tuples in place, equi-joins run as
//! single-pass hash joins with the join-column coalesce fused into the
//! emit, and Merge runs as the k-way single-pass hash merge. Only
//! pipeline breakers (joins, merges, set operations) materialize
//! relations; nothing else is retained unless
//! [`ExecOptions::retain_intermediates`] asks for the full `R(n)` trace
//! (the golden-table reproduction of §IV's Tables 4–9 does).
//!
//! The paper-faithful row-by-row interpreter survives as
//! [`execute_eager`]: it materializes every `R(n)` eagerly with the
//! reference algebra, and the physical engine is differential-tested
//! against it (`tests/properties_executor.rs`).
//!
//! ## Attribute-name resolution
//!
//! The paper freely mixes polygen and local attribute namespaces: Table
//! 3's row 8 joins `R(3)` — whose physical column is `BNAME` from the raw
//! CAREER retrieve — "on ONAME". Resolution happens once, at lowering
//! time, against planned schemas (see [`crate::plan::resolve_in_schema`]);
//! the eager interpreter resolves identically at run time.

use crate::error::PqpError;
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::plan::{self, LowerOptions, PhysOp, PhysicalPlan, StageKind};
use crate::pom::{Op, RelRef, Rha};
use polygen_catalog::dictionary::DataDictionary;
use polygen_core::algebra::{self, coalesce::ConflictPolicy};
use polygen_core::batch::{default_batch_enabled, ColumnBatch};
use polygen_core::relation::PolygenRelation;
use polygen_core::stream::{
    concat_streams, restrict_tuples, scoped_map, select_tuples, ParallelOptions, Partitioner,
    TupleStream,
};
use polygen_core::tuple::PolyTuple;
use polygen_flat::schema::Schema;
use polygen_flat::value::{Cmp, Value};
use polygen_index::IndexCatalog;
use polygen_lqp::engine::LocalOp;
use polygen_lqp::registry::LqpRegistry;
use polygen_obs::trace::{Note, Trace};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Inputs smaller than this stay on the sequential path even when the
/// options ask for parallelism: below a few dozen tuples the scoped
/// thread spawns cost more than the work they split. Correctness never
/// depends on the threshold — the parallel kernels are byte-identical to
/// the sequential ones.
const PARALLEL_MIN_TUPLES: usize = 32;

/// Execution knobs.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// What Merge does when two sources disagree on a non-key attribute.
    pub conflict_policy: ConflictPolicy,
    /// Retain every `R(n)` in the [`ExecutionTrace`]. Off (the default),
    /// production pipelines keep only the final relation and the lowerer
    /// fuses stages freely; on, every IOM row materializes into the trace
    /// (fused pipeline stages are captured stage by stage, and the
    /// [`execute`] entry point additionally lowers without fusion so the
    /// plan maps 1:1 onto IOM rows) — the golden-table tests read Tables
    /// 4–9 this way.
    pub retain_intermediates: bool,
    /// Worker threads for partition-parallel operators (fused stage
    /// chains, hash joins, hash merges). `0` = auto: the
    /// `POLYGEN_THREADS` environment variable when set, otherwise
    /// [`std::thread::available_parallelism`]. `1` = exactly the
    /// sequential code path. Results are identical on every setting.
    pub threads: usize,
    /// Hash/chunk partition count for parallel operators. `0` = same as
    /// the thread count; larger values over-partition, which rebalances
    /// key-skewed loads across the workers.
    pub partitions: usize,
    /// Columnar batch execution for eligible pipelines (fused
    /// Select/Restrict/Project chains over single-consumer leaves).
    /// `None` = auto: the `POLYGEN_BATCH` environment variable, on
    /// unless set to `0`/`false`/`off`/`no`. `Some(_)` forces the batch
    /// or row engine. Results are byte-identical on every setting.
    pub batch: Option<bool>,
    /// Span recorder. Disabled (the default) every span site is one
    /// branch; enabled, the executor records one span per physical
    /// node — operator kind, output rows, partition count, and which
    /// kernel (batch vs row) a pipeline took. Spans observe, never
    /// steer: results are byte-identical with tracing on or off.
    pub trace: Trace,
}

impl ExecOptions {
    /// Options running `threads` workers, everything else default.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// The resolved parallelism (0-valued knobs filled in).
    pub fn parallelism(&self) -> ParallelOptions {
        ParallelOptions::resolved(self.threads, self.partitions)
    }

    /// Is the columnar batch path enabled under these options?
    pub fn batch_enabled(&self) -> bool {
        self.batch.unwrap_or_else(default_batch_enabled)
    }
}

/// The per-row results of one execution — the golden tests read Tables
/// 4–9 out of this (with [`ExecOptions::retain_intermediates`] set).
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// `R(n)` → materialized relation: every row when retention is on,
    /// only the final row otherwise.
    pub results: BTreeMap<usize, PolygenRelation>,
}

impl ExecutionTrace {
    /// The relation computed by row `n`.
    pub fn result(&self, n: usize) -> Option<&PolygenRelation> {
        self.results.get(&n)
    }
}

/// Resolve an IOM attribute name against a relation's actual columns.
/// Delegates to the planner's schema-level resolver so the eager and
/// physical engines can never disagree on resolution.
pub fn resolve_attr(
    rel: &PolygenRelation,
    attr: &str,
    dictionary: &DataDictionary,
) -> Result<String, PqpError> {
    plan::resolve_in_schema(rel.schema(), attr, dictionary)
}

/// Execute an IOM on the physical-plan engine; returns the final
/// relation and the trace (see [`ExecOptions::retain_intermediates`]).
pub fn execute(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    options: ExecOptions,
) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
    let plan = plan::lower(
        iom,
        registry,
        dictionary,
        LowerOptions {
            fuse: !options.retain_intermediates,
            partitions: options.parallelism().partitions,
        },
    )?;
    execute_plan(&plan, registry, dictionary, options)
}

/// Run one fused pipeline stage in place.
fn apply_stage(s: &mut TupleStream, kind: &StageKind) -> Result<(), PqpError> {
    match kind {
        StageKind::Select { attr, cmp, value } => s.select(attr, *cmp, value)?,
        StageKind::Restrict { x, cmp, y } => s.restrict(x, *cmp, y)?,
        StageKind::Project { cols, output } => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            s.project(&refs)?;
            if output != cols {
                let names: Vec<&str> = output.iter().map(String::as_str).collect();
                s.rename(&names)?;
            }
        }
    }
    Ok(())
}

/// A tuple-local (Select/Restrict) stage over *owned* tuples — the lazy
/// scan→first-stage handoff: survivors are the only tuples that will
/// ever be `Arc`-wrapped. Callers cut the stage chain at the first
/// Project, so only tuple-local stages reach here.
fn apply_stage_owned(
    schema: &Schema,
    tuples: &mut Vec<PolyTuple>,
    kind: &StageKind,
) -> Result<(), PqpError> {
    match kind {
        StageKind::Select { attr, cmp, value } => select_tuples(schema, tuples, attr, *cmp, value)?,
        StageKind::Restrict { x, cmp, y } => restrict_tuples(schema, tuples, x, *cmp, y)?,
        StageKind::Project { .. } => unreachable!("stage prefixes are cut at the first Project"),
    }
    Ok(())
}

/// What a node hands its consumers. Leaves (Scan/IndexScan) with a
/// single consumer stay un-lifted [`Slot::Rel`]ations: a consuming
/// pipeline filters the owned tuples *before* `Arc`-wrapping survivors
/// (dropped tuples are never wrapped), and joins/merges take the
/// relation without a stream round trip. Everything shared between
/// consumers — and every interior node — flows as a [`Slot::Stream`] of
/// `Arc`-shared tuples, exactly as before. Single-consumer index probes
/// under the columnar engine hand over a [`Slot::Batch`] so a consuming
/// pipeline runs the batch kernels with no relation round trip.
enum Slot {
    Stream(TupleStream),
    Rel(PolygenRelation),
    Batch(ColumnBatch),
}

impl Slot {
    fn schema(&self) -> &Arc<Schema> {
        match self {
            Slot::Stream(s) => s.schema(),
            Slot::Rel(r) => r.schema(),
            Slot::Batch(b) => b.schema(),
        }
    }

    /// Surviving tuples in the slot (what the node emitted).
    fn len(&self) -> usize {
        match self {
            Slot::Stream(s) => s.len(),
            Slot::Rel(r) => r.len(),
            Slot::Batch(b) => b.len(),
        }
    }

    fn into_relation(self) -> PolygenRelation {
        match self {
            Slot::Stream(s) => s.into_relation(),
            Slot::Rel(r) => r,
            Slot::Batch(b) => b.into_relation(),
        }
    }

    fn to_relation(&self) -> PolygenRelation {
        match self {
            Slot::Stream(s) => s.to_relation(),
            Slot::Rel(r) => r.clone(),
            Slot::Batch(b) => b.clone().into_relation(),
        }
    }
}

/// Run a batch-eligible stage chain on the columnar kernels. Returns
/// whether a Project ran, in which case emission must collapse
/// duplicates (the batch defers that to [`emit_batch`] so chunked runs
/// collapse once, globally).
fn run_batch_stages(batch: &mut ColumnBatch, stages: &[plan::Stage]) -> Result<bool, PqpError> {
    let mut projected = false;
    for stage in stages {
        match &stage.kind {
            StageKind::Select { attr, cmp, value } => batch.select(attr, *cmp, value)?,
            StageKind::Restrict { x, cmp, y } => batch.restrict(x, *cmp, y)?,
            StageKind::Project { cols, output } => {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                batch.project(&refs)?;
                if output != cols {
                    let names: Vec<&str> = output.iter().map(String::as_str).collect();
                    batch.rename(&names)?;
                }
                projected = true;
            }
        }
    }
    Ok(projected)
}

/// Emit a filtered batch as a stream: the late tags materialize once
/// per surviving row, then the projection's duplicate collapse (if one
/// ran) applies — exactly the row engine's Project semantics.
fn emit_batch(batch: ColumnBatch, projected: bool) -> TupleStream {
    let mut rel = batch.into_relation();
    if projected {
        rel.merge_duplicates();
    }
    TupleStream::from_relation(rel)
}

/// The columnar pipeline over an un-lifted leaf relation. Parallel runs
/// chunk the tuples contiguously, run the batch kernels per chunk on
/// scoped workers, and splice the emissions back in chunk order before
/// a single global duplicate collapse — byte-identical to the
/// sequential batch (and row) walk.
fn batch_pipeline(
    rel: PolygenRelation,
    stages: &[plan::Stage],
    par: &ParallelOptions,
) -> Result<TupleStream, PqpError> {
    if !par.is_parallel() || rel.len() < PARALLEL_MIN_TUPLES {
        let mut batch = ColumnBatch::from_relation(rel);
        let projected = run_batch_stages(&mut batch, stages)?;
        return Ok(emit_batch(batch, projected));
    }
    let schema = Arc::clone(rel.schema());
    let chunks = Partitioner::new(par.partitions).chunk_vec(rel.into_tuples());
    let processed = scoped_map(chunks, par.threads, |_, chunk| {
        let mut batch = ColumnBatch::from_parts(Arc::clone(&schema), chunk);
        let projected = run_batch_stages(&mut batch, stages)?;
        Ok::<_, PqpError>((batch.into_relation(), projected))
    });
    let mut out_schema = None;
    let mut tuples: Vec<PolyTuple> = Vec::new();
    let mut projected = false;
    for p in processed {
        let (chunk_rel, chunk_projected) = p?;
        projected = chunk_projected;
        if out_schema.is_none() {
            out_schema = Some(Arc::clone(chunk_rel.schema()));
        }
        tuples.extend(chunk_rel.into_tuples());
    }
    let mut out = PolygenRelation::from_tuples(
        out_schema.expect("chunk_vec yields at least one chunk"),
        tuples,
    )?;
    if projected {
        out.merge_duplicates();
    }
    Ok(TupleStream::from_relation(out))
}

/// Lift a leaf relation into a stream, applying the tuple-local stage
/// `prefix` over owned tuples first (chunk-parallel above the small
///-input threshold). Byte-identical to lifting then streaming the same
/// stages: the kernels share predicate and tag-update code.
fn lift_filtered(
    rel: PolygenRelation,
    prefix: &[plan::Stage],
    par: &ParallelOptions,
) -> Result<TupleStream, PqpError> {
    let schema = Arc::clone(rel.schema());
    let mut tuples = rel.into_tuples();
    if prefix.is_empty() {
        return Ok(TupleStream::from_parts(
            schema,
            tuples.into_iter().map(Arc::new).collect(),
        ));
    }
    if par.is_parallel() && tuples.len() >= PARALLEL_MIN_TUPLES {
        let chunks = Partitioner::new(par.partitions).chunk_vec(tuples);
        let processed = scoped_map(chunks, par.threads, |_, mut chunk| {
            for stage in prefix {
                apply_stage_owned(&schema, &mut chunk, &stage.kind)?;
            }
            Ok::<_, PqpError>(chunk)
        });
        let mut survivors: Vec<PolyTuple> = Vec::new();
        for p in processed {
            survivors.extend(p?);
        }
        return Ok(TupleStream::from_parts(
            schema,
            survivors.into_iter().map(Arc::new).collect(),
        ));
    }
    for stage in prefix {
        apply_stage_owned(&schema, &mut tuples, &stage.kind)?;
    }
    Ok(TupleStream::from_parts(
        schema,
        tuples.into_iter().map(Arc::new).collect(),
    ))
}

/// The span-site name of one physical operator (static: a disabled
/// trace must not pay for name formatting).
fn op_span_name(op: &PhysOp) -> &'static str {
    match op {
        PhysOp::Scan { .. } => "exec/Scan",
        PhysOp::IndexScan { .. } => "exec/IndexScan",
        PhysOp::Pipeline { .. } => "exec/Pipeline",
        PhysOp::HashJoin { .. } => "exec/HashJoin",
        PhysOp::ThetaJoin { .. } => "exec/ThetaJoin",
        PhysOp::HashMerge { .. } => "exec/HashMerge",
        PhysOp::AntiJoin { .. } => "exec/AntiJoin",
        PhysOp::Union { .. } => "exec/Union",
        PhysOp::Difference { .. } => "exec/Difference",
        PhysOp::Intersect { .. } => "exec/Intersect",
        PhysOp::Product { .. } => "exec/Product",
    }
}

/// Walk a lowered physical plan with no index catalog (plans containing
/// `IndexScan` nodes need [`execute_plan_indexed`]).
pub fn execute_plan(
    plan: &PhysicalPlan,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    options: ExecOptions,
) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
    execute_plan_indexed(plan, registry, dictionary, None, options)
}

/// Walk a lowered physical plan, probing `indexes` for the plan's
/// [`PhysOp::IndexScan`] leaves. The catalog must be the one the plan
/// was routed against (in the serving layer, the owning snapshot's):
/// executing a routed plan without it fails loudly rather than
/// silently re-scanning.
pub fn execute_plan_indexed(
    plan: &PhysicalPlan,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    indexes: Option<&IndexCatalog>,
    options: ExecOptions,
) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
    let n = plan.nodes.len();
    let par = options.parallelism();
    // Remaining consumers per node; the last consumer takes the slot,
    // earlier ones clone the stream (Arc bumps — the tuples stay shared
    // and the stage kernels copy-on-write).
    let mut remaining = vec![0usize; n];
    for node in &plan.nodes {
        for i in node.op.inputs() {
            remaining[i] += 1;
        }
    }
    remaining[plan.root] += 1;
    // Leaves stay un-lifted relations only for a lone consumer (shared
    // leaves must clone as streams) and outside retention mode (the
    // golden-table path records leaves stream-wise).
    let lazy_leaf = |rel: PolygenRelation, consumers: usize| {
        if consumers == 1 && !options.retain_intermediates {
            Slot::Rel(rel)
        } else {
            Slot::Stream(TupleStream::from_relation(rel))
        }
    };
    let mut slots: Vec<Option<Slot>> = (0..n).map(|_| None).collect();
    let mut results: BTreeMap<usize, PolygenRelation> = BTreeMap::new();
    let take = |slots: &mut Vec<Option<Slot>>, remaining: &mut Vec<usize>, i: usize| {
        remaining[i] -= 1;
        if remaining[i] == 0 {
            slots[i].take().expect("plan is topologically ordered")
        } else {
            match slots[i].as_ref().expect("plan is topologically ordered") {
                Slot::Stream(s) => Slot::Stream(s.clone()),
                Slot::Rel(_) => unreachable!("un-lifted leaves have exactly one consumer"),
                Slot::Batch(_) => unreachable!("batch probes have exactly one consumer"),
            }
        }
    };
    for (i, node) in plan.nodes.iter().enumerate() {
        let span = options.trace.begin(op_span_name(&node.op));
        let slot = match &node.op {
            PhysOp::Scan { db, op } => {
                lazy_leaf(registry.execute_tagged(db, op, dictionary)?, remaining[i])
            }
            PhysOp::IndexScan {
                db,
                relation,
                column,
                probe,
                ..
            } => {
                let catalog = indexes.ok_or_else(|| PqpError::MalformedRow {
                    row: node.row,
                    reason: format!(
                        "plan probes an index on {db}.{relation}.{column} but no index \
                         catalog was supplied; execute with the catalog the plan was \
                         routed against, or recompile without indexes"
                    ),
                })?;
                let index =
                    catalog
                        .lookup(db, relation, column)
                        .ok_or_else(|| PqpError::MalformedRow {
                            row: node.row,
                            reason: format!(
                                "stale routed plan: the catalog no longer indexes \
                             {db}.{relation}.{column}; recompile against the current catalog"
                            ),
                        })?;
                // A single-consumer probe under the columnar engine
                // hands its ordinals over in batch form; a consuming
                // pipeline runs the batch kernels directly, and any
                // other consumer materializes the probe relation
                // byte-identically. Shared or retained probes stay row
                // streams.
                if options.batch_enabled() && !options.retain_intermediates && remaining[i] == 1 {
                    Slot::Batch(index.probe_batch(probe))
                } else {
                    lazy_leaf(index.probe_relation(probe), remaining[i])
                }
            }
            PhysOp::Pipeline { input, stages } => {
                // Columnar fast path: a batch-eligible stage chain over
                // an un-lifted leaf (or an index probe already in batch
                // form) runs on the ColumnBatch kernels with late tag
                // materialization. Shared/interior inputs and retention
                // mode (which records per-stage tables) keep the row
                // walk below.
                let batch_ok = options.batch_enabled()
                    && !options.retain_intermediates
                    && plan::batch_eligible_stages(stages);
                match take(&mut slots, &mut remaining, *input) {
                    Slot::Rel(rel) if batch_ok => {
                        if !span.is_none() {
                            options.trace.annotate(span, "kernel", Note::str("batch"));
                        }
                        Slot::Stream(batch_pipeline(rel, stages, &par)?)
                    }
                    Slot::Batch(mut batch) if batch_ok => {
                        if !span.is_none() {
                            options.trace.annotate(span, "kernel", Note::str("batch"));
                        }
                        let projected = run_batch_stages(&mut batch, stages)?;
                        Slot::Stream(emit_batch(batch, projected))
                    }
                    input_slot => {
                        if !span.is_none() {
                            options.trace.annotate(span, "kernel", Note::str("row"));
                        }
                        // Tuple-local prefix (cut at the first Project, whose
                        // duplicate collapse is a whole-stream operation), then
                        // the rest on the much smaller stream. Retention mode
                        // records every stage, so it keeps the all-stream walk.
                        let cut = if options.retain_intermediates {
                            0
                        } else {
                            stages
                                .iter()
                                .position(|st| matches!(st.kind, StageKind::Project { .. }))
                                .unwrap_or(stages.len())
                        };
                        let (prefix, rest) = stages.split_at(cut);
                        let mut s = match input_slot {
                            // Lazy handoff: the leaf's owned tuples filter
                            // before any Arc-wrapping (IndexScan and Scan share
                            // this entry path).
                            Slot::Rel(rel) => lift_filtered(rel, prefix, &par)?,
                            // A batch probe whose stage chain turned out row-only
                            // re-materializes first (byte-identical to probing
                            // the relation directly).
                            Slot::Batch(b) => lift_filtered(b.into_relation(), prefix, &par)?,
                            Slot::Stream(mut s) => {
                                if par.is_parallel()
                                    && !prefix.is_empty()
                                    && s.len() >= PARALLEL_MIN_TUPLES
                                {
                                    // Chunk-parallel prefix over shared tuples:
                                    // contiguous chunks run on scoped workers and
                                    // concatenate back in input order —
                                    // byte-identical to the sequential walk.
                                    let chunks = Partitioner::new(par.partitions).chunk_stream(s);
                                    let processed =
                                        scoped_map(chunks, par.threads, |_, mut chunk| {
                                            for stage in prefix {
                                                apply_stage(&mut chunk, &stage.kind)?;
                                            }
                                            Ok::<_, PqpError>(chunk)
                                        });
                                    let mut parts = Vec::with_capacity(processed.len());
                                    for p in processed {
                                        parts.push(p?);
                                    }
                                    s = concat_streams(parts).expect("at least one chunk");
                                } else {
                                    for stage in prefix {
                                        apply_stage(&mut s, &stage.kind)?;
                                    }
                                }
                                s
                            }
                        };
                        for stage in rest {
                            apply_stage(&mut s, &stage.kind)?;
                            // Per-stage retention keeps the trace complete even
                            // when the caller hands us a *fused* plan.
                            if options.retain_intermediates {
                                results.insert(stage.row, s.to_relation());
                            }
                        }
                        Slot::Stream(s)
                    }
                }
            }
            PhysOp::HashJoin {
                left,
                right,
                x,
                y,
                out,
            } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                let joined = if par.is_parallel() && l.len() + r.len() >= PARALLEL_MIN_TUPLES {
                    algebra::hash_equi_join_coalesced_partitioned(&l, &r, x, y, out, par)?
                } else {
                    algebra::hash_equi_join_coalesced(&l, &r, x, y, out)?
                };
                Slot::Stream(TupleStream::from_relation(joined))
            }
            PhysOp::ThetaJoin {
                left,
                right,
                x,
                cmp,
                y,
            } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::theta_join(
                    &l, &r, x, *cmp, y,
                )?))
            }
            PhysOp::HashMerge {
                inputs,
                key,
                relabels,
                ..
            } => {
                let mut rels = Vec::with_capacity(inputs.len());
                for (idx, names) in inputs.iter().zip(relabels) {
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    // Relabeling is a schema swap on either carrier — no
                    // cell copies.
                    let relabeled = match take(&mut slots, &mut remaining, *idx) {
                        Slot::Rel(rel) => rel.into_renamed_attrs(&refs)?,
                        Slot::Batch(b) => b.into_relation().into_renamed_attrs(&refs)?,
                        Slot::Stream(mut s) => {
                            s.rename(&refs)?;
                            s.into_relation()
                        }
                    };
                    rels.push(relabeled);
                }
                let total: usize = rels.iter().map(PolygenRelation::len).sum();
                let (merged, _conflicts) = if par.is_parallel() && total >= PARALLEL_MIN_TUPLES {
                    algebra::hash_merge_partitioned(&rels, key, options.conflict_policy, par)?
                } else {
                    algebra::hash_merge(&rels, key, options.conflict_policy)?
                };
                Slot::Stream(TupleStream::from_relation(merged))
            }
            PhysOp::AntiJoin { left, right, x, y } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::anti_join(
                    &l, &r, x, y,
                )?))
            }
            PhysOp::Union { left, right } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::union(&l, &r)?))
            }
            PhysOp::Difference { left, right } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::difference(&l, &r)?))
            }
            PhysOp::Intersect { left, right } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::intersect(&l, &r)?))
            }
            PhysOp::Product { left, right } => {
                let l = take(&mut slots, &mut remaining, *left).into_relation();
                let r = take(&mut slots, &mut remaining, *right).into_relation();
                Slot::Stream(TupleStream::from_relation(algebra::product(&l, &r)?))
            }
        };
        if !span.is_none() {
            options.trace.annotate(span, "node", Note::Uint(i as u64));
            options
                .trace
                .annotate(span, "row", Note::Uint(node.row as u64));
            options
                .trace
                .annotate(span, "rows", Note::Uint(slot.len() as u64));
            match node.partitioning {
                plan::Partitioning::Serial => {}
                plan::Partitioning::Chunked { partitions }
                | plan::Partitioning::Hash { partitions, .. } => {
                    options
                        .trace
                        .annotate(span, "partitions", Note::Uint(partitions as u64));
                }
            }
            options.trace.end(span);
        }
        // Planned and runtime schemas are identical by construction, but
        // the LQP registry has interior mutability: re-registering an LQP
        // between compile and run would make the baked plan stale. Fail
        // loudly instead of applying resolved columns to the wrong shape.
        if slot.schema().as_ref() != node.schema.as_ref() {
            return Err(PqpError::MalformedRow {
                row: node.row,
                reason: format!(
                    "stale physical plan at node #{i}: planned schema {:?} diverges from \
                     runtime schema {:?}; recompile after registry changes",
                    node.schema.attrs(),
                    slot.schema().attrs()
                ),
            });
        }
        // Pipelines already recorded themselves stage by stage (the last
        // stage's row IS node.row) — don't materialize a second copy.
        if options.retain_intermediates && !matches!(node.op, PhysOp::Pipeline { .. }) {
            results.insert(node.row, slot.to_relation());
        }
        slots[i] = Some(slot);
    }
    let root = &plan.nodes[plan.root];
    let answer = slots[plan.root]
        .take()
        .expect("root evaluated")
        .into_relation();
    results.entry(root.row).or_insert_with(|| answer.clone());
    Ok((answer, ExecutionTrace { results }))
}

// ---------------------------------------------------------------------
// The eager reference interpreter — the paper's row-by-row execution,
// kept as the semantics the physical engine is differential-tested
// against.
// ---------------------------------------------------------------------

struct Executor<'a> {
    registry: &'a LqpRegistry,
    dictionary: &'a DataDictionary,
    options: ExecOptions,
    /// R(n) → relation.
    env: BTreeMap<usize, PolygenRelation>,
    /// R(n) → (db, local relation) for base retrieves (Merge relabeling).
    base_meta: BTreeMap<usize, (String, String)>,
    /// R(n) → coalesced-name aliases. An equi-join coalesces its two join
    /// columns into one named after the *right* attribute (the paper's
    /// Table 5/7 presentation); the left attribute's name would otherwise
    /// become unreferenceable, so each result records `old name → current
    /// column` for downstream rows.
    aliases: BTreeMap<usize, std::collections::HashMap<String, String>>,
}

type AliasMap = std::collections::HashMap<String, String>;

impl Executor<'_> {
    fn rel(&self, r: &RelRef, row: usize) -> Result<&PolygenRelation, PqpError> {
        match r {
            RelRef::Derived(i) => self.env.get(i).ok_or(PqpError::DanglingReference(*i)),
            _ => Err(PqpError::MalformedRow {
                row,
                reason: format!("expected a derived relation, found `{r}`"),
            }),
        }
    }

    /// The alias map of an input relation (empty for non-derived inputs).
    fn alias_map(&self, r: &RelRef) -> AliasMap {
        match r {
            RelRef::Derived(i) => self.aliases.get(i).cloned().unwrap_or_default(),
            _ => AliasMap::new(),
        }
    }

    /// Resolve an attribute against a relation: exact column, then the
    /// input's coalesced-name aliases, then the schema candidates.
    fn resolve(&self, src: &RelRef, rel: &PolygenRelation, attr: &str) -> Result<String, PqpError> {
        if rel.schema().contains(attr) {
            return Ok(attr.to_string());
        }
        if let RelRef::Derived(i) = src {
            if let Some(m) = self.aliases.get(i) {
                if let Some(col) = m.get(attr) {
                    if rel.schema().contains(col) {
                        return Ok(col.clone());
                    }
                }
            }
        }
        resolve_attr(rel, attr, self.dictionary)
    }

    /// Keep only alias entries whose target column still exists.
    fn retain_valid(mut aliases: AliasMap, rel: &PolygenRelation) -> AliasMap {
        aliases.retain(|_, col| rel.schema().contains(col));
        aliases
    }

    fn single_attr<'b>(&self, row: &'b IomRow) -> Result<&'b str, PqpError> {
        row.lha
            .first()
            .map(String::as_str)
            .ok_or(PqpError::MalformedRow {
                row: row.pr,
                reason: "operation requires a left-hand attribute".into(),
            })
    }

    fn theta(&self, row: &IomRow) -> Cmp {
        row.theta.unwrap_or(Cmp::Eq)
    }

    fn execute_lqp_row(&mut self, row: &IomRow, db: &str) -> Result<PolygenRelation, PqpError> {
        let RelRef::Named(local_rel) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "LQP row requires a named local relation".into(),
            });
        };
        let op = match row.op {
            Op::Retrieve => LocalOp::retrieve(local_rel),
            Op::Select => {
                let attr = self.single_attr(row)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                LocalOp::select(local_rel, attr, self.theta(row), v.clone())
            }
            Op::Restrict => {
                let x = self.single_attr(row)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                LocalOp::restrict(local_rel, x, self.theta(row), y)
            }
            Op::Project => {
                let attrs: Vec<&str> = row.lha.iter().map(String::as_str).collect();
                LocalOp::retrieve(local_rel).with_projection(&attrs)
            }
            other => {
                return Err(PqpError::MalformedRow {
                    row: row.pr,
                    reason: format!("operation `{other}` cannot execute at an LQP"),
                })
            }
        };
        let tagged = self.registry.execute_tagged(db, &op, self.dictionary)?;
        self.base_meta
            .insert(row.pr, (db.to_string(), local_rel.clone()));
        Ok(tagged)
    }

    fn execute_merge(&mut self, row: &IomRow) -> Result<PolygenRelation, PqpError> {
        let RelRef::DerivedList(inputs) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Merge requires a derived-list LHR".into(),
            });
        };
        let scheme_name = row.scheme_ctx.as_deref().ok_or(PqpError::MalformedRow {
            row: row.pr,
            reason: "Merge requires a scheme context".into(),
        })?;
        let scheme = self
            .dictionary
            .schema()
            .scheme(scheme_name)
            .ok_or_else(|| PqpError::UnknownRelation(scheme_name.to_string()))?;
        let mut relabeled = Vec::with_capacity(inputs.len());
        for rid in inputs {
            let rel = self.env.get(rid).ok_or(PqpError::DanglingReference(*rid))?;
            let (db, local_rel) =
                self.base_meta
                    .get(rid)
                    .cloned()
                    .ok_or(PqpError::MalformedRow {
                        row: row.pr,
                        reason: format!("Merge input R({rid}) is not a base retrieve"),
                    })?;
            let cols: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let new_names = scheme.relabel_columns(&db, &local_rel, &cols);
            let refs: Vec<&str> = new_names.iter().map(String::as_str).collect();
            relabeled.push(rel.rename_attrs(&refs)?);
        }
        let (merged, _conflicts) =
            algebra::merge(&relabeled, scheme.key(), self.options.conflict_policy)?;
        Ok(merged)
    }

    fn execute_pqp_row(&mut self, row: &IomRow) -> Result<(PolygenRelation, AliasMap), PqpError> {
        match row.op {
            Op::Merge => Ok((self.execute_merge(row)?, AliasMap::new())),
            Op::Select => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let attr = self.resolve(&row.lhr, &rel, self.single_attr(row)?)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                let out = algebra::select(&rel, &attr, self.theta(row), v.clone())?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Restrict => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let x = self.resolve(&row.lhr, &rel, self.single_attr(row)?)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.lhr, &rel, y)?;
                let out = algebra::restrict(&rel, &x, self.theta(row), &y)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Project => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let attrs = row
                    .lha
                    .iter()
                    .map(|a| self.resolve(&row.lhr, &rel, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let projected = algebra::project(&rel, &refs)?;
                // Present the columns under the names the query asked for
                // (an alias-resolved `CEO` should not surface as `ANAME`).
                let requested: Vec<&str> = row.lha.iter().map(String::as_str).collect();
                let out = if requested != refs {
                    projected.rename_attrs(&requested)?
                } else {
                    projected
                };
                Ok((out, AliasMap::new()))
            }
            Op::Join => {
                let left = self.rel(&row.lhr, row.pr)?.clone();
                let right = self.rel(&row.rhr, row.pr)?.clone();
                let x_raw = self.single_attr(row)?.to_string();
                let x = self.resolve(&row.lhr, &left, &x_raw)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Join requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.rhr, &right, y_raw)?;
                if self.theta(row) == Cmp::Eq {
                    // Equi-joins coalesce the two join columns into one
                    // named after the right side — how Tables 5 and 7 are
                    // printed. The left name lives on as an alias.
                    let out = algebra::equi_join_coalesced(&left, &right, &x, &y, &y)?;
                    let mut aliases = self.alias_map(&row.lhr);
                    aliases.extend(self.alias_map(&row.rhr));
                    let aliases = plan::equi_join_aliases(aliases, &x, x_raw, &y, y_raw);
                    let aliases = Self::retain_valid(aliases, &out);
                    Ok((out, aliases))
                } else {
                    let out = algebra::theta_join(&left, &right, &x, self.theta(row), &y)?;
                    let mut aliases = self.alias_map(&row.lhr);
                    aliases.extend(self.alias_map(&row.rhr));
                    let aliases = Self::retain_valid(aliases, &out);
                    Ok((out, aliases))
                }
            }
            Op::AntiJoin => {
                let left = self.rel(&row.lhr, row.pr)?.clone();
                let right = self.rel(&row.rhr, row.pr)?.clone();
                let x = self.resolve(&row.lhr, &left, self.single_attr(row)?)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "AntiJoin requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.rhr, &right, y_raw)?;
                let out = algebra::anti_join(&left, &right, &x, &y)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Union => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::union(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Difference => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::difference(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Intersect => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::intersect(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Product => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::product(left, right)?;
                let mut aliases = self.alias_map(&row.lhr);
                aliases.extend(self.alias_map(&row.rhr));
                let aliases = Self::retain_valid(aliases, &out);
                Ok((out, aliases))
            }
            Op::Retrieve => Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Retrieve cannot execute at the PQP".into(),
            }),
        }
    }
}

/// Execute an IOM row by row with the eager reference algebra; returns
/// the final relation and the full per-row trace (always retained).
pub fn execute_eager(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    options: ExecOptions,
) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
    let mut ex = Executor {
        registry,
        dictionary,
        options,
        env: BTreeMap::new(),
        base_meta: BTreeMap::new(),
        aliases: BTreeMap::new(),
    };
    for row in &iom.rows {
        let result = match &row.el {
            ExecLoc::Lqp(db) => {
                let db = db.clone();
                ex.execute_lqp_row(row, &db)?
            }
            ExecLoc::Pqp => {
                let (result, aliases) = ex.execute_pqp_row(row)?;
                if !aliases.is_empty() {
                    ex.aliases.insert(row.pr, aliases);
                }
                result
            }
        };
        ex.env.insert(row.pr, result);
    }
    let final_rid = iom.final_result().ok_or(PqpError::MalformedRow {
        row: 0,
        reason: "empty IOM".into(),
    })?;
    let final_rel = ex
        .env
        .get(&final_rid)
        .cloned()
        .ok_or(PqpError::DanglingReference(final_rid))?;
    Ok((final_rel, ExecutionTrace { results: ex.env }))
}

/// Convenience: keep `Value` reachable for doc examples in this module.
#[doc(hidden)]
pub fn _doc_value(v: Value) -> Value {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::interpreter::interpret;
    use polygen_catalog::scenario;
    use polygen_lqp::scenario_registry;
    use polygen_sql::algebra_expr::parse_algebra;

    fn retained() -> ExecOptions {
        ExecOptions {
            retain_intermediates: true,
            ..ExecOptions::default()
        }
    }

    fn run(expr: &str) -> (PolygenRelation, ExecutionTrace) {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        execute(&iom, &registry, &s.dictionary, retained()).unwrap()
    }

    #[test]
    fn lqp_select_produces_table4_shape() {
        let (rel, _) = run("PALUMNUS [DEGREE = \"MBA\"] [AID#, ANAME]");
        assert_eq!(rel.len(), 5);
        // Raw local names survive single-source execution.
        assert!(rel.schema().contains("AID#"));
        assert!(rel.schema().contains("ANAME"));
    }

    #[test]
    fn merge_then_select_on_polygen_names() {
        let (rel, _) = run("PORGANIZATION [INDUSTRY = \"Banking\"]");
        assert_eq!(rel.len(), 1);
        let row = &rel.tuples()[0];
        assert_eq!(row[0].datum, Value::str("Citicorp"));
    }

    #[test]
    fn final_answer_matches_table9_data() {
        let (rel, _) = run(polygen_sql::algebra_expr::PAPER_EXPRESSION);
        assert_eq!(rel.len(), 3);
        let strip = rel.strip();
        assert!(strip.contains(&[Value::str("Genentech"), Value::str("Bob Swanson")]));
        assert!(strip.contains(&[Value::str("Langley Castle"), Value::str("Stu Madnick")]));
        assert!(strip.contains(&[Value::str("Citicorp"), Value::str("John Reed")]));
    }

    #[test]
    fn trace_exposes_intermediate_tables_when_retained() {
        let (_, trace) = run(polygen_sql::algebra_expr::PAPER_EXPRESSION);
        assert_eq!(trace.results.len(), 10);
        // R(1) = Table 4 (5 MBA alumni), R(7) = Table 6 (12 organizations).
        assert_eq!(trace.result(1).unwrap().len(), 5);
        assert_eq!(trace.result(7).unwrap().len(), 12);
        assert_eq!(trace.result(10).unwrap().len(), 3);
    }

    #[test]
    fn fused_plan_retention_still_traces_every_row() {
        // A caller can hand execute_plan a *fused* plan and still ask for
        // retention: fused stages are captured stage by stage.
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom =
            analyze(&parse_algebra(polygen_sql::algebra_expr::PAPER_EXPRESSION).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let fused = crate::plan::lower(
            &iom,
            &registry,
            &s.dictionary,
            crate::plan::LowerOptions::default(),
        )
        .unwrap();
        assert!(fused.fused_rows() > 0);
        let (_, trace) = execute_plan(&fused, &registry, &s.dictionary, retained()).unwrap();
        assert_eq!(
            trace.results.len(),
            10,
            "R(9) captured from inside the pipeline"
        );
        assert_eq!(trace.result(9).unwrap().len(), 3);
    }

    #[test]
    fn production_trace_keeps_only_the_final_relation() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom =
            analyze(&parse_algebra(polygen_sql::algebra_expr::PAPER_EXPRESSION).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let (rel, trace) = execute(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        assert_eq!(trace.results.len(), 1);
        assert!(trace.result(10).unwrap().tagged_set_eq(&rel));
    }

    #[test]
    fn physical_engine_matches_eager_reference() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        for expr in [
            polygen_sql::algebra_expr::PAPER_EXPRESSION,
            "PORGANIZATION [INDUSTRY = \"Banking\"]",
            "(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])",
            "PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])",
            "(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]",
            "PCAREER [AID# < AID#] PCAREER",
        ] {
            let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
            let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
            let (eager, eager_trace) =
                execute_eager(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap();
            let (fast, fast_trace) = execute(&iom, &registry, &s.dictionary, retained()).unwrap();
            assert!(eager.tagged_set_eq(&fast), "answers diverge for {expr}");
            assert_eq!(
                eager_trace.results.len(),
                fast_trace.results.len(),
                "trace shape diverges for {expr}"
            );
            for (pr, rel) in &eager_trace.results {
                assert!(
                    rel.tagged_set_eq(fast_trace.result(*pr).unwrap()),
                    "R({pr}) diverges for {expr}"
                );
            }
        }
    }

    #[test]
    fn threaded_options_produce_identical_results() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom =
            analyze(&parse_algebra(polygen_sql::algebra_expr::PAPER_EXPRESSION).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let (seq, _) =
            execute(&iom, &registry, &s.dictionary, ExecOptions::with_threads(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let (parl, _) = execute(
                &iom,
                &registry,
                &s.dictionary,
                ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert!(seq.tagged_set_eq(&parl), "threads = {threads}");
        }
        // Knob resolution: explicit values pass through, 0 resolves.
        let o = ExecOptions::with_threads(4);
        assert_eq!(o.parallelism().partitions, 4);
        let auto = ExecOptions::default().parallelism();
        assert!(auto.threads >= 1);
    }

    #[test]
    fn union_and_difference_execute() {
        let (rel, _) = run("(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])");
        assert_eq!(rel.len(), 6);
        let (diff, _) = run("PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])");
        assert_eq!(diff.len(), 3);
    }

    #[test]
    fn antijoin_executes() {
        // Organizations with no finance record: only MIT and BP.
        let (rel, _) = run("(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]");
        let names = rel.strip();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&[Value::str("MIT")]));
        assert!(names.contains(&[Value::str("BP")]));
    }
}
