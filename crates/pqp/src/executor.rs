//! The plan executor: runs an IOM row by row, routing LQP rows to their
//! local systems (tagging results at the boundary) and evaluating PQP
//! rows with the polygen algebra — the machinery behind §IV's Tables 4–9.
//!
//! ## Attribute-name resolution
//!
//! The paper freely mixes polygen and local attribute namespaces: Table
//! 3's row 8 joins `R(3)` — whose physical column is `BNAME` from the raw
//! CAREER retrieve — "on ONAME". The executor resolves an IOM attribute
//! against a relation by (1) exact column match, then (2) the polygen
//! schema's local candidates for a polygen name, then (3) the reverse
//! mapping for a local name against a merged relation; a resolution must
//! be unique or the row is rejected.

use crate::error::PqpError;
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::pom::{Op, RelRef, Rha};
use polygen_catalog::dictionary::DataDictionary;
use polygen_core::algebra::{self, coalesce::ConflictPolicy};
use polygen_core::relation::PolygenRelation;
use polygen_flat::value::{Cmp, Value};
use polygen_lqp::engine::LocalOp;
use polygen_lqp::registry::LqpRegistry;
use std::collections::BTreeMap;

/// Execution knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// What Merge does when two sources disagree on a non-key attribute.
    pub conflict_policy: ConflictPolicy,
}

/// The per-row results of one execution — the golden tests read Tables
/// 4–9 out of this.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// `R(n)` → materialized relation, for every row.
    pub results: BTreeMap<usize, PolygenRelation>,
}

impl ExecutionTrace {
    /// The relation computed by row `n`.
    pub fn result(&self, n: usize) -> Option<&PolygenRelation> {
        self.results.get(&n)
    }
}

/// Resolve an IOM attribute name against a relation's actual columns.
pub fn resolve_attr(
    rel: &PolygenRelation,
    attr: &str,
    dictionary: &DataDictionary,
) -> Result<String, PqpError> {
    if rel.schema().contains(attr) {
        return Ok(attr.to_string());
    }
    let schema = dictionary.schema();
    let mut found: Vec<String> = schema
        .local_candidates(attr)
        .into_iter()
        .filter(|c| rel.schema().contains(c))
        .collect();
    if found.is_empty() {
        // Reverse: `attr` may be a local name while the relation carries
        // polygen names (a merged relation).
        for s in schema.schemes() {
            for (pa, m) in s.attrs() {
                if m.entries().iter().any(|e| e.attribute.as_ref() == attr)
                    && rel.schema().contains(pa)
                    && !found.iter().any(|f| f == pa.as_ref())
                {
                    found.push(pa.to_string());
                }
            }
        }
    }
    found.dedup();
    match found.as_slice() {
        [one] => Ok(one.clone()),
        [] => Err(PqpError::UnresolvedAttribute {
            relation: rel.name().to_string(),
            attribute: attr.to_string(),
        }),
        _ => Err(PqpError::AmbiguousAttribute {
            relation: rel.name().to_string(),
            attribute: attr.to_string(),
            candidates: found,
        }),
    }
}

struct Executor<'a> {
    registry: &'a LqpRegistry,
    dictionary: &'a DataDictionary,
    options: ExecOptions,
    /// R(n) → relation.
    env: BTreeMap<usize, PolygenRelation>,
    /// R(n) → (db, local relation) for base retrieves (Merge relabeling).
    base_meta: BTreeMap<usize, (String, String)>,
    /// R(n) → coalesced-name aliases. An equi-join coalesces its two join
    /// columns into one named after the *right* attribute (the paper's
    /// Table 5/7 presentation); the left attribute's name would otherwise
    /// become unreferenceable, so each result records `old name → current
    /// column` for downstream rows.
    aliases: BTreeMap<usize, std::collections::HashMap<String, String>>,
}

type AliasMap = std::collections::HashMap<String, String>;

impl Executor<'_> {
    fn rel(&self, r: &RelRef, row: usize) -> Result<&PolygenRelation, PqpError> {
        match r {
            RelRef::Derived(i) => self.env.get(i).ok_or(PqpError::DanglingReference(*i)),
            _ => Err(PqpError::MalformedRow {
                row,
                reason: format!("expected a derived relation, found `{r}`"),
            }),
        }
    }

    /// The alias map of an input relation (empty for non-derived inputs).
    fn alias_map(&self, r: &RelRef) -> AliasMap {
        match r {
            RelRef::Derived(i) => self.aliases.get(i).cloned().unwrap_or_default(),
            _ => AliasMap::new(),
        }
    }

    /// Resolve an attribute against a relation: exact column, then the
    /// input's coalesced-name aliases, then the schema candidates.
    fn resolve(&self, src: &RelRef, rel: &PolygenRelation, attr: &str) -> Result<String, PqpError> {
        if rel.schema().contains(attr) {
            return Ok(attr.to_string());
        }
        if let RelRef::Derived(i) = src {
            if let Some(m) = self.aliases.get(i) {
                if let Some(col) = m.get(attr) {
                    if rel.schema().contains(col) {
                        return Ok(col.clone());
                    }
                }
            }
        }
        resolve_attr(rel, attr, self.dictionary)
    }

    /// Keep only alias entries whose target column still exists.
    fn retain_valid(mut aliases: AliasMap, rel: &PolygenRelation) -> AliasMap {
        aliases.retain(|_, col| rel.schema().contains(col));
        aliases
    }

    fn single_attr<'b>(&self, row: &'b IomRow) -> Result<&'b str, PqpError> {
        row.lha
            .first()
            .map(String::as_str)
            .ok_or(PqpError::MalformedRow {
                row: row.pr,
                reason: "operation requires a left-hand attribute".into(),
            })
    }

    fn theta(&self, row: &IomRow) -> Cmp {
        row.theta.unwrap_or(Cmp::Eq)
    }

    fn execute_lqp_row(&mut self, row: &IomRow, db: &str) -> Result<PolygenRelation, PqpError> {
        let RelRef::Named(local_rel) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "LQP row requires a named local relation".into(),
            });
        };
        let op = match row.op {
            Op::Retrieve => LocalOp::retrieve(local_rel),
            Op::Select => {
                let attr = self.single_attr(row)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                LocalOp::select(local_rel, attr, self.theta(row), v.clone())
            }
            Op::Restrict => {
                let x = self.single_attr(row)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                LocalOp::restrict(local_rel, x, self.theta(row), y)
            }
            Op::Project => {
                let attrs: Vec<&str> = row.lha.iter().map(String::as_str).collect();
                LocalOp::retrieve(local_rel).with_projection(&attrs)
            }
            other => {
                return Err(PqpError::MalformedRow {
                    row: row.pr,
                    reason: format!("operation `{other}` cannot execute at an LQP"),
                })
            }
        };
        let tagged = self.registry.execute_tagged(db, &op, self.dictionary)?;
        self.base_meta
            .insert(row.pr, (db.to_string(), local_rel.clone()));
        Ok(tagged)
    }

    fn execute_merge(&mut self, row: &IomRow) -> Result<PolygenRelation, PqpError> {
        let RelRef::DerivedList(inputs) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Merge requires a derived-list LHR".into(),
            });
        };
        let scheme_name = row.scheme_ctx.as_deref().ok_or(PqpError::MalformedRow {
            row: row.pr,
            reason: "Merge requires a scheme context".into(),
        })?;
        let scheme = self
            .dictionary
            .schema()
            .scheme(scheme_name)
            .ok_or_else(|| PqpError::UnknownRelation(scheme_name.to_string()))?;
        let mut relabeled = Vec::with_capacity(inputs.len());
        for rid in inputs {
            let rel = self.env.get(rid).ok_or(PqpError::DanglingReference(*rid))?;
            let (db, local_rel) =
                self.base_meta
                    .get(rid)
                    .cloned()
                    .ok_or(PqpError::MalformedRow {
                        row: row.pr,
                        reason: format!("Merge input R({rid}) is not a base retrieve"),
                    })?;
            let cols: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
            let new_names = scheme.relabel_columns(&db, &local_rel, &cols);
            let refs: Vec<&str> = new_names.iter().map(String::as_str).collect();
            relabeled.push(rel.rename_attrs(&refs)?);
        }
        let (merged, _conflicts) =
            algebra::merge(&relabeled, scheme.key(), self.options.conflict_policy)?;
        Ok(merged)
    }

    fn execute_pqp_row(&mut self, row: &IomRow) -> Result<(PolygenRelation, AliasMap), PqpError> {
        match row.op {
            Op::Merge => Ok((self.execute_merge(row)?, AliasMap::new())),
            Op::Select => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let attr = self.resolve(&row.lhr, &rel, self.single_attr(row)?)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                let out = algebra::select(&rel, &attr, self.theta(row), v.clone())?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Restrict => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let x = self.resolve(&row.lhr, &rel, self.single_attr(row)?)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.lhr, &rel, y)?;
                let out = algebra::restrict(&rel, &x, self.theta(row), &y)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Project => {
                let rel = self.rel(&row.lhr, row.pr)?.clone();
                let attrs = row
                    .lha
                    .iter()
                    .map(|a| self.resolve(&row.lhr, &rel, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let projected = algebra::project(&rel, &refs)?;
                // Present the columns under the names the query asked for
                // (an alias-resolved `CEO` should not surface as `ANAME`).
                let requested: Vec<&str> = row.lha.iter().map(String::as_str).collect();
                let out = if requested != refs {
                    projected.rename_attrs(&requested)?
                } else {
                    projected
                };
                Ok((out, AliasMap::new()))
            }
            Op::Join => {
                let left = self.rel(&row.lhr, row.pr)?.clone();
                let right = self.rel(&row.rhr, row.pr)?.clone();
                let x_raw = self.single_attr(row)?.to_string();
                let x = self.resolve(&row.lhr, &left, &x_raw)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Join requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.rhr, &right, y_raw)?;
                if self.theta(row) == Cmp::Eq {
                    // Equi-joins coalesce the two join columns into one
                    // named after the right side — how Tables 5 and 7 are
                    // printed. The left name lives on as an alias.
                    let out = algebra::equi_join_coalesced(&left, &right, &x, &y, &y)?;
                    let mut aliases = self.alias_map(&row.lhr);
                    aliases.extend(self.alias_map(&row.rhr));
                    // The left join column was renamed: repoint anything
                    // that referenced it, then alias the old names.
                    for col in aliases.values_mut() {
                        if *col == x {
                            *col = y.clone();
                        }
                    }
                    if x != y {
                        aliases.insert(x.clone(), y.clone());
                    }
                    if x_raw != y {
                        aliases.insert(x_raw, y.clone());
                    }
                    if y_raw != &y {
                        aliases.insert(y_raw.clone(), y.clone());
                    }
                    let aliases = Self::retain_valid(aliases, &out);
                    Ok((out, aliases))
                } else {
                    let out = algebra::theta_join(&left, &right, &x, self.theta(row), &y)?;
                    let mut aliases = self.alias_map(&row.lhr);
                    aliases.extend(self.alias_map(&row.rhr));
                    let aliases = Self::retain_valid(aliases, &out);
                    Ok((out, aliases))
                }
            }
            Op::AntiJoin => {
                let left = self.rel(&row.lhr, row.pr)?.clone();
                let right = self.rel(&row.rhr, row.pr)?.clone();
                let x = self.resolve(&row.lhr, &left, self.single_attr(row)?)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "AntiJoin requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&row.rhr, &right, y_raw)?;
                let out = algebra::anti_join(&left, &right, &x, &y)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Union => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::union(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Difference => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::difference(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Intersect => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::intersect(left, right)?;
                let aliases = Self::retain_valid(self.alias_map(&row.lhr), &out);
                Ok((out, aliases))
            }
            Op::Product => {
                let left = self.rel(&row.lhr, row.pr)?;
                let right = self.rel(&row.rhr, row.pr)?;
                let out = algebra::product(left, right)?;
                let mut aliases = self.alias_map(&row.lhr);
                aliases.extend(self.alias_map(&row.rhr));
                let aliases = Self::retain_valid(aliases, &out);
                Ok((out, aliases))
            }
            Op::Retrieve => Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Retrieve cannot execute at the PQP".into(),
            }),
        }
    }
}

/// Execute an IOM; returns the final relation and the full per-row trace.
pub fn execute(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    options: ExecOptions,
) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
    let mut ex = Executor {
        registry,
        dictionary,
        options,
        env: BTreeMap::new(),
        base_meta: BTreeMap::new(),
        aliases: BTreeMap::new(),
    };
    for row in &iom.rows {
        let result = match &row.el {
            ExecLoc::Lqp(db) => {
                let db = db.clone();
                ex.execute_lqp_row(row, &db)?
            }
            ExecLoc::Pqp => {
                let (result, aliases) = ex.execute_pqp_row(row)?;
                if !aliases.is_empty() {
                    ex.aliases.insert(row.pr, aliases);
                }
                result
            }
        };
        ex.env.insert(row.pr, result);
    }
    let final_rid = iom.final_result().ok_or(PqpError::MalformedRow {
        row: 0,
        reason: "empty IOM".into(),
    })?;
    let final_rel = ex
        .env
        .get(&final_rid)
        .cloned()
        .ok_or(PqpError::DanglingReference(final_rid))?;
    Ok((final_rel, ExecutionTrace { results: ex.env }))
}

/// Convenience: keep `Value` reachable for doc examples in this module.
#[doc(hidden)]
pub fn _doc_value(v: Value) -> Value {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::interpreter::interpret;
    use polygen_catalog::scenario;
    use polygen_lqp::scenario_registry;
    use polygen_sql::algebra_expr::parse_algebra;

    fn run(expr: &str) -> (PolygenRelation, ExecutionTrace) {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        execute(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap()
    }

    #[test]
    fn lqp_select_produces_table4_shape() {
        let (rel, _) = run("PALUMNUS [DEGREE = \"MBA\"] [AID#, ANAME]");
        assert_eq!(rel.len(), 5);
        // Raw local names survive single-source execution.
        assert!(rel.schema().contains("AID#"));
        assert!(rel.schema().contains("ANAME"));
    }

    #[test]
    fn merge_then_select_on_polygen_names() {
        let (rel, _) = run("PORGANIZATION [INDUSTRY = \"Banking\"]");
        assert_eq!(rel.len(), 1);
        let row = &rel.tuples()[0];
        assert_eq!(row[0].datum, Value::str("Citicorp"));
    }

    #[test]
    fn final_answer_matches_table9_data() {
        let (rel, _) = run(polygen_sql::algebra_expr::PAPER_EXPRESSION);
        assert_eq!(rel.len(), 3);
        let strip = rel.strip();
        assert!(strip.contains(&[Value::str("Genentech"), Value::str("Bob Swanson")]));
        assert!(strip.contains(&[Value::str("Langley Castle"), Value::str("Stu Madnick")]));
        assert!(strip.contains(&[Value::str("Citicorp"), Value::str("John Reed")]));
    }

    #[test]
    fn trace_exposes_intermediate_tables() {
        let (_, trace) = run(polygen_sql::algebra_expr::PAPER_EXPRESSION);
        assert_eq!(trace.results.len(), 10);
        // R(1) = Table 4 (5 MBA alumni), R(7) = Table 6 (12 organizations).
        assert_eq!(trace.result(1).unwrap().len(), 5);
        assert_eq!(trace.result(7).unwrap().len(), 12);
        assert_eq!(trace.result(10).unwrap().len(), 3);
    }

    #[test]
    fn union_and_difference_execute() {
        let (rel, _) = run("(PALUMNUS [DEGREE = \"MBA\"]) UNION (PALUMNUS [DEGREE = \"MS\"])");
        assert_eq!(rel.len(), 6);
        let (diff, _) = run("PALUMNUS MINUS (PALUMNUS [DEGREE = \"MBA\"])");
        assert_eq!(diff.len(), 3);
    }

    #[test]
    fn antijoin_executes() {
        // Organizations with no finance record: only MIT and BP.
        let (rel, _) = run("(PORGANIZATION ANTIJOIN [ONAME = ONAME] PFINANCE) [ONAME]");
        let names = rel.strip();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&[Value::str("MIT")]));
        assert!(names.contains(&[Value::str("BP")]));
    }
}
