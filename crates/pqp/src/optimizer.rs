//! The Query Optimizer (Figure 2, third stage).
//!
//! "Finally, the Query Optimizer examines the Intermediate Operation
//! Matrix and generates a query execution plan. Details of the Query
//! Optimizer is also beyond the scope of this paper" — so, as with the
//! Syntax Analyzer, this is our design. Three rewrites, all
//! result-preserving (property-tested against naive execution):
//!
//! 1. **Retrieve deduplication** — a query touching the same local
//!    relation several times (self-joins; several multi-source schemes
//!    sharing a local relation) ships it once — and **Merge
//!    deduplication**: identical merges of the now-shared retrieves
//!    collapse too.
//! 2. **Select pushdown** — a PQP-side Select whose input is a raw
//!    single-use Retrieve folds into the Retrieve as an LQP Select when
//!    the LQP's interface can evaluate predicates (menu-driven feeds
//!    cannot — the optimizer consults [`Capabilities`](polygen_lqp::engine::Capabilities)).
//! 3. **Dead-row elimination** — rows whose results nothing references
//!    are dropped and the matrix renumbered.

use crate::error::PqpError;
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::pom::{Op, RelRef, Rha};
use polygen_catalog::dictionary::DataDictionary;
use polygen_lqp::registry::LqpRegistry;
use std::collections::HashMap;

/// What the optimizer did — reported by `EXPLAIN` and the ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    /// Retrieves removed by deduplication.
    pub retrieves_deduped: usize,
    /// Selects folded into LQP retrieves.
    pub selects_pushed: usize,
    /// Rows removed as dead.
    pub rows_eliminated: usize,
    /// Duplicate Merge rows collapsed.
    pub merges_deduped: usize,
}

/// Optimize an IOM. The result is a valid IOM computing the same final
/// relation.
pub fn optimize(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
) -> Result<(Iom, OptimizerReport), PqpError> {
    let mut report = OptimizerReport::default();
    let deduped = dedup_retrieves(iom, &mut report);
    let merged = dedup_merges(&deduped, &mut report);
    let pushed = push_selects(&merged, registry, dictionary, &mut report);
    let cleaned = eliminate_dead_rows(&pushed, &mut report)?;
    Ok((cleaned, report))
}

/// Rewrite 1b: after retrieve dedup, two Merge rows of the same scheme
/// over the same inputs are the same relation — a query touching a
/// multi-source scheme twice (self-joins on PORGANIZATION) merges once.
fn dedup_merges(iom: &Iom, report: &mut OptimizerReport) -> Iom {
    let mut seen: HashMap<(Vec<usize>, Option<String>), usize> = HashMap::new();
    let mut alias: HashMap<usize, usize> = HashMap::new();
    let mut rows = Vec::with_capacity(iom.rows.len());
    for row in &iom.rows {
        let mut row = row.clone();
        row.lhr = remap_ref(&row.lhr, &alias);
        row.rhr = remap_ref(&row.rhr, &alias);
        if row.op == Op::Merge {
            if let RelRef::DerivedList(inputs) = &row.lhr {
                let key = (inputs.clone(), row.scheme_ctx.clone());
                if let Some(&first) = seen.get(&key) {
                    alias.insert(row.pr, first);
                    report.merges_deduped += 1;
                    continue;
                }
                seen.insert(key, row.pr);
            }
        }
        rows.push(row);
    }
    Iom { rows }
}

fn remap_ref(r: &RelRef, map: &HashMap<usize, usize>) -> RelRef {
    match r {
        RelRef::Derived(i) => RelRef::Derived(*map.get(i).unwrap_or(i)),
        RelRef::DerivedList(ids) => {
            RelRef::DerivedList(ids.iter().map(|i| *map.get(i).unwrap_or(i)).collect())
        }
        other => other.clone(),
    }
}

/// Rewrite 1: identical bare retrieves collapse onto the first.
fn dedup_retrieves(iom: &Iom, report: &mut OptimizerReport) -> Iom {
    let mut seen: HashMap<(String, String), usize> = HashMap::new();
    let mut alias: HashMap<usize, usize> = HashMap::new();
    let mut rows = Vec::with_capacity(iom.rows.len());
    for row in &iom.rows {
        if row.op == Op::Retrieve {
            if let (RelRef::Named(rel), ExecLoc::Lqp(db)) = (&row.lhr, &row.el) {
                let key = (db.clone(), rel.clone());
                if let Some(&first) = seen.get(&key) {
                    alias.insert(row.pr, first);
                    report.retrieves_deduped += 1;
                    continue;
                }
                seen.insert(key, row.pr);
            }
        }
        let mut row = row.clone();
        row.lhr = remap_ref(&row.lhr, &alias);
        row.rhr = remap_ref(&row.rhr, &alias);
        rows.push(row);
    }
    Iom { rows }
}

/// Rewrite 2: fold single-use PQP Selects into their Retrieve when the
/// LQP can evaluate predicates and the attribute is a raw local column.
fn push_selects(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    report: &mut OptimizerReport,
) -> Iom {
    // Count references to each result.
    let mut uses: HashMap<usize, usize> = HashMap::new();
    for row in &iom.rows {
        for r in [&row.lhr, &row.rhr] {
            match r {
                RelRef::Derived(i) => *uses.entry(*i).or_default() += 1,
                RelRef::DerivedList(ids) => {
                    for i in ids {
                        *uses.entry(*i).or_default() += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let by_pr: HashMap<usize, &IomRow> = iom.rows.iter().map(|r| (r.pr, r)).collect();
    let mut replaced: HashMap<usize, IomRow> = HashMap::new(); // retrieve pr → new row
    let mut alias: HashMap<usize, usize> = HashMap::new(); // select pr → retrieve pr
    for row in &iom.rows {
        if row.op != Op::Select || row.el != ExecLoc::Pqp {
            continue;
        }
        let RelRef::Derived(src) = &row.lhr else {
            continue;
        };
        let Some(base) = by_pr.get(src) else { continue };
        if base.op != Op::Retrieve || uses.get(src).copied().unwrap_or(0) != 1 {
            continue;
        }
        let (RelRef::Named(rel), ExecLoc::Lqp(db)) = (&base.lhr, &base.el) else {
            continue;
        };
        let Some(lqp) = registry.get(db) else {
            continue;
        };
        if !lqp.capabilities().pushdown_select {
            continue;
        }
        // The select attribute must name a raw column of the local
        // relation — resolve polygen names through the schema.
        let Some(local_schema) = lqp.schema_of(rel) else {
            continue;
        };
        let Some(attr) = row.lha.first() else {
            continue;
        };
        let local_attr = if local_schema.contains(attr) {
            attr.clone()
        } else {
            let cands: Vec<String> = dictionary
                .schema()
                .local_candidates(attr)
                .into_iter()
                .filter(|c| local_schema.contains(c))
                .collect();
            match cands.as_slice() {
                [one] => one.clone(),
                _ => continue,
            }
        };
        let Rha::Const(_) = &row.rha else { continue };
        let mut folded = (*base).clone();
        folded.op = Op::Select;
        folded.lha = vec![local_attr];
        folded.theta = row.theta;
        folded.rha = row.rha.clone();
        replaced.insert(*src, folded);
        alias.insert(row.pr, *src);
        report.selects_pushed += 1;
    }
    let rows = iom
        .rows
        .iter()
        .filter(|r| !alias.contains_key(&r.pr))
        .map(|r| {
            let mut row = replaced.get(&r.pr).cloned().unwrap_or_else(|| r.clone());
            row.lhr = remap_ref(&row.lhr, &alias);
            row.rhr = remap_ref(&row.rhr, &alias);
            row
        })
        .collect();
    Iom { rows }
}

/// Rewrite 3: drop rows unreachable from the final result; renumber
/// sequentially.
fn eliminate_dead_rows(iom: &Iom, report: &mut OptimizerReport) -> Result<Iom, PqpError> {
    let Some(final_pr) = iom.final_result() else {
        return Ok(iom.clone());
    };
    let by_pr: HashMap<usize, &IomRow> = iom.rows.iter().map(|r| (r.pr, r)).collect();
    let mut live: Vec<usize> = Vec::new();
    let mut stack = vec![final_pr];
    while let Some(pr) = stack.pop() {
        if live.contains(&pr) {
            continue;
        }
        live.push(pr);
        let row = by_pr.get(&pr).ok_or(PqpError::DanglingReference(pr))?;
        for r in [&row.lhr, &row.rhr] {
            match r {
                RelRef::Derived(i) => stack.push(*i),
                RelRef::DerivedList(ids) => stack.extend(ids.iter().copied()),
                _ => {}
            }
        }
    }
    let mut renumber: HashMap<usize, usize> = HashMap::new();
    let mut rows = Vec::with_capacity(live.len());
    for row in &iom.rows {
        if !live.contains(&row.pr) {
            report.rows_eliminated += 1;
            continue;
        }
        let pr = rows.len() + 1;
        renumber.insert(row.pr, pr);
        let mut row = row.clone();
        row.pr = pr;
        row.lhr = remap_ref(&row.lhr, &renumber);
        row.rhr = remap_ref(&row.rhr, &renumber);
        rows.push(row);
    }
    Ok(Iom { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::executor::{execute, ExecOptions};
    use crate::interpreter::interpret;
    use polygen_catalog::scenario::{self, Scenario};
    use polygen_lqp::adapter::MenuDrivenLqp;
    use polygen_lqp::cost::CostModel;
    use polygen_lqp::memory::InMemoryLqp;
    use polygen_lqp::registry::LqpRegistry;
    use polygen_lqp::scenario_registry;
    use polygen_sql::algebra_expr::parse_algebra;
    use std::sync::Arc;

    fn compile(expr: &str, s: &Scenario) -> Iom {
        let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
        interpret(&pom, s.dictionary.schema()).unwrap().1
    }

    #[test]
    fn self_join_dedups_the_second_retrieve() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        // PCAREER joined with itself retrieves CAREER twice.
        let iom = compile("PCAREER [AID# = AID#] PCAREER", &s);
        let retrieves_before = iom.rows.iter().filter(|r| r.op == Op::Retrieve).count();
        assert_eq!(retrieves_before, 2);
        let (opt, report) = optimize(&iom, &registry, &s.dictionary).unwrap();
        assert_eq!(report.retrieves_deduped, 1);
        let retrieves_after = opt.rows.iter().filter(|r| r.op == Op::Retrieve).count();
        assert_eq!(retrieves_after, 1);
        // Results agree.
        let (naive, _) = execute(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        let (fast, _) = execute(&opt, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        assert!(naive.tagged_set_eq(&fast));
    }

    #[test]
    fn pqp_select_on_retrieve_pushes_down() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        // Force a PQP-side select: select over a join input retrieved raw.
        let iom = compile("(PCAREER [POSITION = \"CEO\"]) [AID# = AID#] PALUMNUS", &s);
        // Pass one pushed [POSITION = "CEO"] to AD already; instead build
        // a case the interpreter leaves at the PQP: select over a merge is
        // NOT pushable, select over a single raw retrieve is. Use a
        // PFINANCE retrieve via join then select… simpler: hand-build.
        let mut iom2 = iom.clone();
        let _ = &mut iom2;
        // Construct directly: Retrieve FINANCE; Select at PQP.
        use crate::iom::IomRow;
        let hand = Iom {
            rows: vec![
                IomRow {
                    pr: 1,
                    op: Op::Retrieve,
                    lhr: RelRef::Named("FINANCE".into()),
                    lha: vec![],
                    theta: None,
                    rha: Rha::Nil,
                    rhr: RelRef::Nil,
                    el: ExecLoc::Lqp("CD".into()),
                    scheme_ctx: None,
                },
                IomRow {
                    pr: 2,
                    op: Op::Select,
                    lhr: RelRef::Derived(1),
                    lha: vec!["YEAR".into()],
                    theta: Some(polygen_flat::value::Cmp::Eq),
                    rha: Rha::Const(polygen_flat::value::Value::int(1989)),
                    rhr: RelRef::Nil,
                    el: ExecLoc::Pqp,
                    scheme_ctx: None,
                },
            ],
        };
        let (opt, report) = optimize(&hand, &registry, &s.dictionary).unwrap();
        assert_eq!(report.selects_pushed, 1);
        assert_eq!(opt.rows.len(), 1);
        assert_eq!(opt.rows[0].op, Op::Select);
        assert_eq!(opt.rows[0].lha, vec!["YR"], "polygen YEAR → local YR");
        assert_eq!(opt.rows[0].el, ExecLoc::Lqp("CD".into()));
        // Equivalent results — except tags: a pushed select runs before
        // tagging, so the intermediate {CD} tag disappears. Data agrees.
        let (naive, _) = execute(&hand, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        let (fast, _) = execute(&opt, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        assert!(naive.strip().set_eq(&fast.strip()));
    }

    #[test]
    fn pushdown_respects_capabilities() {
        let s = scenario::build();
        // Registry where CD is menu-driven (no pushdown).
        let registry = LqpRegistry::new();
        for db in &s.databases {
            if db.name == "CD" {
                registry.register(Arc::new(MenuDrivenLqp::new(
                    InMemoryLqp::new(&db.name, db.relations.clone()),
                    CostModel::slow_remote(),
                )));
            } else {
                registry.register(Arc::new(InMemoryLqp::new(&db.name, db.relations.clone())));
            }
        }
        use crate::iom::IomRow;
        let hand = Iom {
            rows: vec![
                IomRow {
                    pr: 1,
                    op: Op::Retrieve,
                    lhr: RelRef::Named("FINANCE".into()),
                    lha: vec![],
                    theta: None,
                    rha: Rha::Nil,
                    rhr: RelRef::Nil,
                    el: ExecLoc::Lqp("CD".into()),
                    scheme_ctx: None,
                },
                IomRow {
                    pr: 2,
                    op: Op::Select,
                    lhr: RelRef::Derived(1),
                    lha: vec!["YEAR".into()],
                    theta: Some(polygen_flat::value::Cmp::Eq),
                    rha: Rha::Const(polygen_flat::value::Value::int(1989)),
                    rhr: RelRef::Nil,
                    el: ExecLoc::Pqp,
                    scheme_ctx: None,
                },
            ],
        };
        let (opt, report) = optimize(&hand, &registry, &s.dictionary).unwrap();
        assert_eq!(report.selects_pushed, 0, "menu-driven LQP cannot select");
        assert_eq!(opt.rows.len(), 2);
    }

    #[test]
    fn optimized_paper_query_is_equivalent() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let iom = compile(polygen_sql::algebra_expr::PAPER_EXPRESSION, &s);
        let (opt, _) = optimize(&iom, &registry, &s.dictionary).unwrap();
        let (naive, _) = execute(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        let (fast, _) = execute(&opt, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        assert!(naive.tagged_set_eq(&fast));
    }

    #[test]
    fn self_join_on_multi_source_scheme_merges_once() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        // PORGANIZATION joined with itself: naive plan retrieves and
        // merges the three local relations twice.
        let iom = compile("PORGANIZATION [ONAME = ONAME] PORGANIZATION", &s);
        let merges_before = iom.rows.iter().filter(|r| r.op == Op::Merge).count();
        assert_eq!(merges_before, 2);
        let (opt, report) = optimize(&iom, &registry, &s.dictionary).unwrap();
        assert_eq!(report.retrieves_deduped, 3);
        assert_eq!(report.merges_deduped, 1);
        let merges_after = opt.rows.iter().filter(|r| r.op == Op::Merge).count();
        assert_eq!(merges_after, 1);
        let (naive, _) = execute(&iom, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        let (fast, _) = execute(&opt, &registry, &s.dictionary, ExecOptions::default()).unwrap();
        assert!(naive.tagged_set_eq(&fast));
    }

    #[test]
    fn dead_rows_eliminated() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let mut iom = compile("PALUMNUS [DEGREE = \"MBA\"] [ANAME]", &s);
        // Append an unreferenced retrieve, then renumber it last so it is
        // dead (not the final row). Insert before the last row.
        use crate::iom::IomRow;
        let dead = IomRow {
            pr: 99,
            op: Op::Retrieve,
            lhr: RelRef::Named("FINANCE".into()),
            lha: vec![],
            theta: None,
            rha: Rha::Nil,
            rhr: RelRef::Nil,
            el: ExecLoc::Lqp("CD".into()),
            scheme_ctx: None,
        };
        let last = iom.rows.pop().unwrap();
        iom.rows.push(dead);
        iom.rows.push(last);
        let (opt, report) = optimize(&iom, &registry, &s.dictionary).unwrap();
        assert_eq!(report.rows_eliminated, 1);
        assert!(opt
            .rows
            .iter()
            .all(|r| r.lhr != RelRef::Named("FINANCE".into())));
    }
}
