//! The Syntax Analyzer (Figure 2, first stage).
//!
//! "The Syntax Analyzer parses a polygen algebraic expression and
//! generates a Polygen Operation Matrix" (§III; "details … beyond the
//! scope of this paper" — so this is our design). The expression tree is
//! flattened bottom-up, left operand first, which yields exactly the
//! paper's Table 1 numbering for the example expression.

use crate::error::PqpError;
use crate::pom::{Op, Pom, PomRow, RelRef, Rha};
use polygen_sql::algebra_expr::AlgebraExpr;

/// Flatten an algebra expression into a [`Pom`].
pub fn analyze(expr: &AlgebraExpr) -> Result<Pom, PqpError> {
    let mut pom = Pom::default();
    let root = emit(expr, &mut pom)?;
    if pom.rows.is_empty() {
        // A bare relation reference: represent as Retrieve-nothing? The
        // paper's queries always apply at least one operation; a bare
        // `SELECT * FROM R` maps to a Project-all upstream. Emit a
        // Restrict-free "Select" with no predicate? Cleanest is a
        // dedicated error: the analyzer requires at least one operator.
        let RelRef::Named(name) = root else {
            unreachable!("empty POM implies bare relation");
        };
        return Err(PqpError::BareRelation(name));
    }
    Ok(pom)
}

/// Emit rows for `expr`, returning how its result is referenced.
fn emit(expr: &AlgebraExpr, pom: &mut Pom) -> Result<RelRef, PqpError> {
    let rel = |r: RelRef| r;
    Ok(match expr {
        AlgebraExpr::Relation(name) => rel(RelRef::Named(name.clone())),
        AlgebraExpr::Select {
            input,
            attr,
            cmp,
            value,
        } => {
            let lhr = emit(input, pom)?;
            push(
                pom,
                Op::Select,
                lhr,
                vec![attr.clone()],
                Some(*cmp),
                Rha::Const(value.clone()),
                RelRef::Nil,
            )
        }
        AlgebraExpr::Restrict {
            input,
            left,
            cmp,
            right,
        } => {
            let lhr = emit(input, pom)?;
            push(
                pom,
                Op::Restrict,
                lhr,
                vec![left.clone()],
                Some(*cmp),
                Rha::Attr(right.clone()),
                RelRef::Nil,
            )
        }
        AlgebraExpr::Join {
            left,
            lattr,
            cmp,
            rattr,
            right,
        } => {
            let lhr = emit(left, pom)?;
            let rhr = emit(right, pom)?;
            push(
                pom,
                Op::Join,
                lhr,
                vec![lattr.clone()],
                Some(*cmp),
                Rha::Attr(rattr.clone()),
                rhr,
            )
        }
        AlgebraExpr::AntiJoin {
            left,
            lattr,
            rattr,
            right,
        } => {
            let lhr = emit(left, pom)?;
            let rhr = emit(right, pom)?;
            push(
                pom,
                Op::AntiJoin,
                lhr,
                vec![lattr.clone()],
                Some(polygen_flat::value::Cmp::Eq),
                Rha::Attr(rattr.clone()),
                rhr,
            )
        }
        AlgebraExpr::Project { input, attrs } => {
            let lhr = emit(input, pom)?;
            push(
                pom,
                Op::Project,
                lhr,
                attrs.clone(),
                None,
                Rha::Nil,
                RelRef::Nil,
            )
        }
        AlgebraExpr::Union(a, b) => binary(pom, Op::Union, a, b)?,
        AlgebraExpr::Difference(a, b) => binary(pom, Op::Difference, a, b)?,
        AlgebraExpr::Product(a, b) => binary(pom, Op::Product, a, b)?,
        AlgebraExpr::Intersect(a, b) => binary(pom, Op::Intersect, a, b)?,
    })
}

fn binary(pom: &mut Pom, op: Op, a: &AlgebraExpr, b: &AlgebraExpr) -> Result<RelRef, PqpError> {
    let lhr = emit(a, pom)?;
    let rhr = emit(b, pom)?;
    Ok(push(pom, op, lhr, Vec::new(), None, Rha::Nil, rhr))
}

fn push(
    pom: &mut Pom,
    op: Op,
    lhr: RelRef,
    lha: Vec<String>,
    theta: Option<polygen_flat::value::Cmp>,
    rha: Rha,
    rhr: RelRef,
) -> RelRef {
    let pr = pom.rows.len() + 1;
    pom.rows.push(PomRow {
        pr,
        op,
        lhr,
        lha,
        theta,
        rha,
        rhr,
    });
    RelRef::Derived(pr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_flat::value::{Cmp, Value};
    use polygen_sql::algebra_expr::{parse_algebra, PAPER_EXPRESSION};

    /// The analyzer must regenerate Table 1 exactly.
    #[test]
    fn table1_for_the_paper_expression() {
        let expr = parse_algebra(PAPER_EXPRESSION).unwrap();
        let pom = analyze(&expr).unwrap();
        assert_eq!(pom.cardinality(), 5);
        let r = &pom.rows;
        // R(1) Select PALUMNUS DEGREE = "MBA" nil
        assert_eq!(r[0].op, Op::Select);
        assert_eq!(r[0].lhr, RelRef::Named("PALUMNUS".into()));
        assert_eq!(r[0].lha, vec!["DEGREE"]);
        assert_eq!(r[0].theta, Some(Cmp::Eq));
        assert_eq!(r[0].rha, Rha::Const(Value::str("MBA")));
        assert_eq!(r[0].rhr, RelRef::Nil);
        // R(2) Join R(1) AID# = AID# PCAREER
        assert_eq!(r[1].op, Op::Join);
        assert_eq!(r[1].lhr, RelRef::Derived(1));
        assert_eq!(r[1].lha, vec!["AID#"]);
        assert_eq!(r[1].rha, Rha::Attr("AID#".into()));
        assert_eq!(r[1].rhr, RelRef::Named("PCAREER".into()));
        // R(3) Join R(2) ONAME = ONAME PORGANIZATION
        assert_eq!(r[2].op, Op::Join);
        assert_eq!(r[2].lhr, RelRef::Derived(2));
        assert_eq!(r[2].rhr, RelRef::Named("PORGANIZATION".into()));
        // R(4) Restrict R(3) CEO = ANAME nil
        assert_eq!(r[3].op, Op::Restrict);
        assert_eq!(r[3].lhr, RelRef::Derived(3));
        assert_eq!(r[3].lha, vec!["CEO"]);
        assert_eq!(r[3].rha, Rha::Attr("ANAME".into()));
        assert_eq!(r[3].rhr, RelRef::Nil);
        // R(5) Project R(4) ONAME, CEO nil nil nil
        assert_eq!(r[4].op, Op::Project);
        assert_eq!(r[4].lhr, RelRef::Derived(4));
        assert_eq!(r[4].lha, vec!["ONAME", "CEO"]);
        assert_eq!(r[4].rha, Rha::Nil);
        assert_eq!(r[4].rhr, RelRef::Nil);
        assert_eq!(pom.final_result(), Some(5));
    }

    #[test]
    fn set_ops_and_antijoin_flatten() {
        let expr = parse_algebra("(A [X = 1]) UNION (B [X = 2]) MINUS C").unwrap();
        let pom = analyze(&expr).unwrap();
        assert_eq!(pom.cardinality(), 4);
        assert_eq!(pom.rows[2].op, Op::Union);
        assert_eq!(pom.rows[3].op, Op::Difference);
        assert_eq!(pom.rows[3].lhr, RelRef::Derived(3));
        assert_eq!(pom.rows[3].rhr, RelRef::Named("C".into()));

        let aj = analyze(&parse_algebra("A ANTIJOIN [X = Y] B").unwrap()).unwrap();
        assert_eq!(aj.rows[0].op, Op::AntiJoin);
        assert_eq!(aj.rows[0].lha, vec!["X"]);
        assert_eq!(aj.rows[0].rha, Rha::Attr("Y".into()));
    }

    #[test]
    fn bare_relation_is_rejected() {
        let expr = parse_algebra("PALUMNUS").unwrap();
        assert!(matches!(
            analyze(&expr),
            Err(PqpError::BareRelation(n)) if n == "PALUMNUS"
        ));
    }
}
