//! The physical-plan layer — between the Query Optimizer and execution.
//!
//! The paper's Figure 2 hands the optimizer's IOM straight to a row-by-row
//! interpreter; production engines insert a lowering step that turns the
//! logical matrix into a tree of physical operators with concrete
//! strategies. [`lower`] performs that step:
//!
//! * **Retrieve/Select/Restrict/Project rows at an LQP** become
//!   [`PhysOp::Scan`] leaves (a [`LocalOp`] shipped to the local system,
//!   tagged at the boundary).
//! * **Select/Restrict/Project rows at the PQP** become pipeline *stages*.
//!   Consecutive stages over a single-consumer input fuse into one
//!   [`PhysOp::Pipeline`] that streams `Arc`-shared tuples through every
//!   stage without materializing the intermediate relations.
//! * **Equi-joins** lower to [`PhysOp::HashJoin`] (single-pass build +
//!   probe with the join-column coalesce fused into the emit); other θs
//!   fall back to [`PhysOp::ThetaJoin`] nested loops.
//! * **Merge** lowers to [`PhysOp::HashMerge`], the k-way single-pass
//!   hash merge keyed on the polygen scheme's primary key, replacing the
//!   quadratic left fold of Outer Natural Total Joins.
//!
//! Attribute names are resolved *at lowering time* against planned
//! schemas: the lowerer tracks the exact output schema of every node
//! (using the same schema constructors the kernels use), so the executor
//! runs resolution-free and `EXPLAIN` can print the physical tree before
//! anything executes. The eager row-by-row interpreter survives as
//! [`crate::executor::execute_eager`], the reference semantics every
//! physical kernel is differential-tested against.

use crate::error::PqpError;
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::pom::{Op, RelRef, Rha};
use polygen_catalog::dictionary::DataDictionary;
use polygen_core::algebra::join::equi_join_coalesced_schema;
use polygen_core::algebra::merge::merged_schema;
use polygen_flat::schema::Schema;
use polygen_flat::value::{Cmp, Value};
use polygen_index::{IndexCatalog, IndexKind, Interval, Probe};
use polygen_lqp::engine::LocalOp;
use polygen_lqp::registry::LqpRegistry;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

/// Coalesced-name aliases: `old column name → current column`. An
/// equi-join coalesces its two join columns into one named after the
/// right attribute; the left attribute's name lives on here so later
/// rows can still reference it.
pub type AliasMap = HashMap<String, String>;

/// One fused pipeline stage (a Select/Restrict/Project IOM row).
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// The IOM row this stage came from (`R(row)`).
    pub row: usize,
    /// What the stage does.
    pub kind: StageKind,
}

/// The operation a pipeline stage applies, attribute names pre-resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// `[attr θ const]` — filter plus the paper's intermediate-tag update.
    Select {
        /// Resolved column name.
        attr: String,
        /// θ.
        cmp: Cmp,
        /// The constant.
        value: Value,
    },
    /// `[x θ y]` — two-column filter plus tag update.
    Restrict {
        /// Resolved left column.
        x: String,
        /// θ.
        cmp: Cmp,
        /// Resolved right column.
        y: String,
    },
    /// `[X]` — projection with duplicate collapse, then presentation
    /// under the names the query asked for.
    Project {
        /// Resolved input columns.
        cols: Vec<String>,
        /// Output names (differ from `cols` when alias-resolved).
        output: Vec<String>,
    },
}

/// A physical operator. Inputs reference earlier nodes by index in
/// [`PhysicalPlan::nodes`] (the plan is a DAG in topological order —
/// deduplicated scans fan out to several consumers).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Ship a [`LocalOp`] to an LQP; the result is tagged at the boundary.
    Scan {
        /// Local database name.
        db: String,
        /// The operation the local system executes.
        op: LocalOp,
    },
    /// Probe a secondary index instead of sweeping the source: emit the
    /// base tuples whose keys match `probe`, in scan order —
    /// byte-identical to the [`PhysOp::Scan`] it replaced. Routed by
    /// [`route_index_scans`]; residual predicates (folded conjuncts)
    /// stay in the consuming pipeline and re-check themselves.
    IndexScan {
        /// Local database name.
        db: String,
        /// Local relation the index covers.
        relation: String,
        /// Indexed local column.
        column: String,
        /// Posting organization (for EXPLAIN and costing).
        kind: IndexKind,
        /// The validated key probe.
        probe: Probe,
    },
    /// Stream the input through fused Select/Restrict/Project stages.
    Pipeline {
        /// Input node index.
        input: usize,
        /// Stages in application order.
        stages: Vec<Stage>,
    },
    /// Single-pass hash equi-join with the join-column coalesce fused in.
    HashJoin {
        /// Probe-side node index.
        left: usize,
        /// Build-side node index.
        right: usize,
        /// Resolved left join column.
        x: String,
        /// Resolved right join column.
        y: String,
        /// Name of the coalesced join column.
        out: String,
    },
    /// Nested-loop θ-join (non-equality predicates).
    ThetaJoin {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
        /// Resolved left column.
        x: String,
        /// θ.
        cmp: Cmp,
        /// Resolved right column.
        y: String,
    },
    /// k-way single-pass hash Merge on the scheme's primary key.
    HashMerge {
        /// Input node indices (base scans).
        inputs: Vec<usize>,
        /// The multi-source polygen scheme being materialized.
        scheme: String,
        /// The scheme's primary key (the merge key).
        key: String,
        /// Per-input relabeling to polygen attribute names.
        relabels: Vec<Vec<String>>,
    },
    /// Anti-join (left tuples with no right match).
    AntiJoin {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
        /// Resolved left column.
        x: String,
        /// Resolved right column.
        y: String,
    },
    /// Set union with tag merging on matched data.
    Union {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
    },
    /// Set difference with the mediator-tag update.
    Difference {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
    },
    /// Set intersection.
    Intersect {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
    },
    /// Cartesian product.
    Product {
        /// Left node index.
        left: usize,
        /// Right node index.
        right: usize,
    },
}

impl PhysOp {
    /// The node indices this operator consumes (in consumption order).
    pub fn inputs(&self) -> Vec<usize> {
        match self {
            PhysOp::Scan { .. } | PhysOp::IndexScan { .. } => Vec::new(),
            PhysOp::Pipeline { input, .. } => vec![*input],
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::ThetaJoin { left, right, .. }
            | PhysOp::AntiJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right }
            | PhysOp::Intersect { left, right }
            | PhysOp::Product { left, right } => vec![*left, *right],
            PhysOp::HashMerge { inputs, .. } => inputs.clone(),
        }
    }
}

/// How a physical operator splits across worker threads — annotated at
/// lowering time so `EXPLAIN` shows the parallel shape before anything
/// runs and [`crate::costing::estimate_physical`] can charge
/// per-partition cost plus merge overhead. Execution reassembles every
/// partitioned operator's output in the sequential order, so the
/// annotation changes *where* work happens, never the answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Single-threaded (pipeline breakers with no partitionable key, or a
    /// plan lowered with one partition).
    Serial,
    /// Order-preserving contiguous chunks — fused stage chains, which
    /// need no key co-location.
    Chunked {
        /// Number of chunks.
        partitions: usize,
    },
    /// Hash-partitioned on a key column so matching tuples co-locate —
    /// hash joins (join key) and hash merges (scheme primary key).
    Hash {
        /// The partitioning column.
        key: String,
        /// Number of partitions.
        partitions: usize,
    },
}

/// One node of the physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysNode {
    /// The IOM result id `R(row)` this node's output corresponds to (for
    /// a fused pipeline, the last fused row).
    pub row: usize,
    /// The operator.
    pub op: PhysOp,
    /// The planned output schema — provably identical to what execution
    /// produces (both sides build schemas with the same constructors).
    pub schema: Arc<Schema>,
    /// How the operator shards across workers.
    pub partitioning: Partitioning,
}

/// A lowered physical plan: nodes in topological (execution) order.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The operator DAG, execution-ordered.
    pub nodes: Vec<PhysNode>,
    /// Index of the node producing the query answer.
    pub root: usize,
}

impl PhysicalPlan {
    /// How many IOM rows were fused into pipeline stages (the rows that
    /// no longer materialize an intermediate relation).
    pub fn fused_rows(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                PhysOp::Pipeline { stages, .. } => Some(stages.len().saturating_sub(1)),
                _ => None,
            })
            .sum()
    }

    /// The local databases this plan reads — every [`PhysOp::Scan`] and
    /// [`PhysOp::IndexScan`] target, deduplicated. A result cache keys
    /// cached answers on this set's version vector: an answer stays
    /// valid exactly as long as none of the sources it was computed from
    /// has been updated. Index scans read snapshot-materialized base
    /// relations, but those rebuild on the same version bumps, so the
    /// dependency is identical.
    pub fn source_dbs(&self) -> BTreeSet<String> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                PhysOp::Scan { db, .. } | PhysOp::IndexScan { db, .. } => Some(db.clone()),
                _ => None,
            })
            .collect()
    }

    /// How many Scan leaves were routed onto secondary indexes.
    pub fn index_scans(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, PhysOp::IndexScan { .. }))
            .count()
    }

    /// Would the executor run node `i` on the columnar batch kernels
    /// (when batching is enabled and no trace is retained)? True for a
    /// pipeline with batch-eligible stages over a single-consumer
    /// Scan/IndexScan leaf — exactly the shape the executor lifts into
    /// a `ColumnBatch` instead of a row stream. EXPLAIN renders these
    /// nodes with a `[batch]` marker; everything else stays on the row
    /// engine.
    pub fn is_batch_pipeline(&self, i: usize) -> bool {
        let PhysOp::Pipeline { input, stages } = &self.nodes[i].op else {
            return false;
        };
        if !matches!(
            self.nodes[*input].op,
            PhysOp::Scan { .. } | PhysOp::IndexScan { .. }
        ) || !batch_eligible_stages(stages)
        {
            return false;
        }
        // Shared leaves stay row streams (their tuples fan out to other
        // consumers), so only a single-consumer leaf feeds the batch path.
        let consumers = self
            .nodes
            .iter()
            .flat_map(|n| n.op.inputs())
            .filter(|&j| j == *input)
            .count();
        consumers == 1
    }

    /// A deterministic structural fingerprint: FNV-1a over the rendered
    /// operator tree plus every node's planned output schema. Two plans
    /// with the same fingerprint execute the same scans, stages,
    /// strategies and predicates against the same planned schemas — the
    /// identity a plan/result cache needs. Stable across processes (no
    /// per-process hash seeds) so fingerprints can be logged and
    /// compared between runs.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        eat(render_plan(self).as_bytes());
        for node in &self.nodes {
            eat(node.schema.name().as_bytes());
            for attr in node.schema.attrs() {
                eat(attr.as_bytes());
            }
        }
        eat(&self.root.to_le_bytes());
        hash
    }
}

/// Can a stage list run on the columnar batch kernels? Any number of
/// Selects/Restricts, with Project only as the final stage — the batch
/// projects by column-pointer swap and collapses duplicates once at
/// emission, which is only equivalent to the row engine when nothing
/// filters after the projection.
pub fn batch_eligible_stages(stages: &[Stage]) -> bool {
    !stages.is_empty()
        && stages.iter().enumerate().all(|(i, s)| match s.kind {
            StageKind::Select { .. } | StageKind::Restrict { .. } => true,
            StageKind::Project { .. } => i + 1 == stages.len(),
        })
}

/// Lowering knobs.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Fuse consecutive single-consumer Select/Restrict/Project rows into
    /// one pipeline. Disabled when the caller needs every `R(n)` in the
    /// execution trace (golden-table reproduction).
    pub fuse: bool,
    /// Partition count to annotate parallelizable operators with
    /// (pipelines, hash joins, hash merges). `1` leaves every node
    /// [`Partitioning::Serial`] — exactly the pre-parallel plans.
    pub partitions: usize,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            fuse: true,
            partitions: 1,
        }
    }
}

/// Resolve an IOM attribute against a schema: exact column first, then
/// the polygen schema's local candidates, then the reverse mapping for a
/// local name against a merged relation. Must stay in lock-step with the
/// eager executor's resolution (it delegates here).
pub fn resolve_in_schema(
    schema: &Schema,
    attr: &str,
    dictionary: &DataDictionary,
) -> Result<String, PqpError> {
    if schema.contains(attr) {
        return Ok(attr.to_string());
    }
    let pschema = dictionary.schema();
    let mut found: Vec<String> = pschema
        .local_candidates(attr)
        .into_iter()
        .filter(|c| schema.contains(c))
        .collect();
    if found.is_empty() {
        // Reverse: `attr` may be a local name while the relation carries
        // polygen names (a merged relation).
        for s in pschema.schemes() {
            for (pa, m) in s.attrs() {
                if m.entries().iter().any(|e| e.attribute.as_ref() == attr)
                    && schema.contains(pa)
                    && !found.iter().any(|f| f == pa.as_ref())
                {
                    found.push(pa.to_string());
                }
            }
        }
    }
    found.dedup();
    match found.as_slice() {
        [one] => Ok(one.clone()),
        [] => Err(PqpError::UnresolvedAttribute {
            relation: schema.name().to_string(),
            attribute: attr.to_string(),
        }),
        _ => Err(PqpError::AmbiguousAttribute {
            relation: schema.name().to_string(),
            attribute: attr.to_string(),
            candidates: found,
        }),
    }
}

/// The alias bookkeeping an equi-join leaves behind once it coalesces
/// the left column `x` into the right column `y`: repoint aliases that
/// targeted the left column, then alias the old (resolved and raw) names
/// to the surviving column. Shared by the lowerer and the eager
/// interpreter so the two can never disagree on what downstream rows may
/// still reference.
pub(crate) fn equi_join_aliases(
    mut aliases: AliasMap,
    x: &str,
    x_raw: String,
    y: &str,
    y_raw: &str,
) -> AliasMap {
    for col in aliases.values_mut() {
        if *col == x {
            *col = y.to_string();
        }
    }
    if x != y {
        aliases.insert(x.to_string(), y.to_string());
    }
    if x_raw != y {
        aliases.insert(x_raw, y.to_string());
    }
    if y_raw != y {
        aliases.insert(y_raw.to_string(), y.to_string());
    }
    aliases
}

/// What the lowerer knows about a produced `R(n)`.
#[derive(Clone)]
struct Produced {
    node: usize,
    schema: Arc<Schema>,
    aliases: AliasMap,
    /// `(db, local relation)` for base retrieves — Merge relabeling.
    base: Option<(String, String)>,
}

struct Lowerer<'a> {
    registry: &'a LqpRegistry,
    dictionary: &'a DataDictionary,
    fuse: bool,
    partitions: usize,
    /// pr → number of later references.
    uses: HashMap<usize, usize>,
    nodes: Vec<PhysNode>,
    env: HashMap<usize, Produced>,
}

impl Lowerer<'_> {
    fn input(&self, r: &RelRef, row: usize) -> Result<&Produced, PqpError> {
        self.derived_input(r, row).map(|(_, p)| p)
    }

    /// A single-input row's producing `R(i)` plus its metadata.
    fn derived_input(&self, r: &RelRef, row: usize) -> Result<(usize, &Produced), PqpError> {
        match r {
            RelRef::Derived(i) => Ok((*i, self.env.get(i).ok_or(PqpError::DanglingReference(*i))?)),
            _ => Err(PqpError::MalformedRow {
                row,
                reason: format!("expected a derived relation, found `{r}`"),
            }),
        }
    }

    /// Resolve an attribute against a produced relation: exact column,
    /// then its coalesced-name aliases, then the schema candidates.
    fn resolve(&self, input: &Produced, attr: &str) -> Result<String, PqpError> {
        if input.schema.contains(attr) {
            return Ok(attr.to_string());
        }
        if let Some(col) = input.aliases.get(attr) {
            if input.schema.contains(col) {
                return Ok(col.clone());
            }
        }
        resolve_in_schema(&input.schema, attr, self.dictionary)
    }

    /// Keep only alias entries whose target column still exists.
    fn retain_valid(mut aliases: AliasMap, schema: &Schema) -> AliasMap {
        aliases.retain(|_, col| schema.contains(col));
        aliases
    }

    fn single_attr<'b>(&self, row: &'b IomRow) -> Result<&'b str, PqpError> {
        row.lha
            .first()
            .map(String::as_str)
            .ok_or(PqpError::MalformedRow {
                row: row.pr,
                reason: "operation requires a left-hand attribute".into(),
            })
    }

    fn theta(&self, row: &IomRow) -> Cmp {
        row.theta.unwrap_or(Cmp::Eq)
    }

    /// The partitioning annotation for an operator under this lowering's
    /// partition count.
    fn partitioning_of(&self, op: &PhysOp) -> Partitioning {
        if self.partitions <= 1 {
            return Partitioning::Serial;
        }
        match op {
            PhysOp::Pipeline { .. } => Partitioning::Chunked {
                partitions: self.partitions,
            },
            PhysOp::HashJoin { out, .. } => Partitioning::Hash {
                key: out.clone(),
                partitions: self.partitions,
            },
            PhysOp::HashMerge { key, .. } => Partitioning::Hash {
                key: key.clone(),
                partitions: self.partitions,
            },
            _ => Partitioning::Serial,
        }
    }

    fn push_node(
        &mut self,
        pr: usize,
        op: PhysOp,
        schema: Arc<Schema>,
        aliases: AliasMap,
        base: Option<(String, String)>,
    ) {
        let node = self.nodes.len();
        let partitioning = self.partitioning_of(&op);
        self.nodes.push(PhysNode {
            row: pr,
            op,
            schema: Arc::clone(&schema),
            partitioning,
        });
        self.env.insert(
            pr,
            Produced {
                node,
                schema,
                aliases,
                base,
            },
        );
    }

    /// Attach a Select/Restrict/Project stage: appended to the input's
    /// pipeline when fusion applies, otherwise as a fresh pipeline node.
    fn push_stage(
        &mut self,
        pr: usize,
        input_pr: usize,
        stage: Stage,
        schema: Arc<Schema>,
        aliases: AliasMap,
    ) -> Result<(), PqpError> {
        let input = self
            .env
            .get(&input_pr)
            .ok_or(PqpError::DanglingReference(input_pr))?;
        let input_node = input.node;
        let fusible = self.fuse && self.uses.get(&input_pr).copied().unwrap_or(0) == 1;
        if fusible {
            if let PhysOp::Pipeline { stages, .. } = &mut self.nodes[input_node].op {
                stages.push(stage);
                self.nodes[input_node].row = pr;
                self.nodes[input_node].schema = Arc::clone(&schema);
                self.env.insert(
                    pr,
                    Produced {
                        node: input_node,
                        schema,
                        aliases,
                        base: None,
                    },
                );
                return Ok(());
            }
        }
        self.push_node(
            pr,
            PhysOp::Pipeline {
                input: input_node,
                stages: vec![stage],
            },
            schema,
            aliases,
            None,
        );
        Ok(())
    }

    fn lower_lqp_row(&mut self, row: &IomRow, db: &str) -> Result<(), PqpError> {
        let RelRef::Named(local_rel) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "LQP row requires a named local relation".into(),
            });
        };
        let op = match row.op {
            Op::Retrieve => LocalOp::retrieve(local_rel),
            Op::Select => {
                let attr = self.single_attr(row)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                LocalOp::select(local_rel, attr, self.theta(row), v.clone())
            }
            Op::Restrict => {
                let x = self.single_attr(row)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                LocalOp::restrict(local_rel, x, self.theta(row), y)
            }
            Op::Project => {
                let attrs: Vec<&str> = row.lha.iter().map(String::as_str).collect();
                LocalOp::retrieve(local_rel).with_projection(&attrs)
            }
            other => {
                return Err(PqpError::MalformedRow {
                    row: row.pr,
                    reason: format!("operation `{other}` cannot execute at an LQP"),
                })
            }
        };
        let schema = self.registry.planned_schema(db, &op)?;
        self.push_node(
            row.pr,
            PhysOp::Scan {
                db: db.to_string(),
                op,
            },
            schema,
            AliasMap::new(),
            Some((db.to_string(), local_rel.clone())),
        );
        Ok(())
    }

    fn lower_merge(&mut self, row: &IomRow) -> Result<(), PqpError> {
        let RelRef::DerivedList(inputs) = &row.lhr else {
            return Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Merge requires a derived-list LHR".into(),
            });
        };
        let scheme_name = row.scheme_ctx.as_deref().ok_or(PqpError::MalformedRow {
            row: row.pr,
            reason: "Merge requires a scheme context".into(),
        })?;
        let scheme = self
            .dictionary
            .schema()
            .scheme(scheme_name)
            .ok_or_else(|| PqpError::UnknownRelation(scheme_name.to_string()))?;
        let mut node_inputs = Vec::with_capacity(inputs.len());
        let mut relabels = Vec::with_capacity(inputs.len());
        let mut relabeled_schemas = Vec::with_capacity(inputs.len());
        for rid in inputs {
            let p = self.env.get(rid).ok_or(PqpError::DanglingReference(*rid))?;
            let (db, local_rel) = p.base.clone().ok_or(PqpError::MalformedRow {
                row: row.pr,
                reason: format!("Merge input R({rid}) is not a base retrieve"),
            })?;
            let cols: Vec<&str> = p.schema.attrs().iter().map(|a| a.as_ref()).collect();
            let new_names = scheme.relabel_columns(&db, &local_rel, &cols);
            let name_refs: Vec<&str> = new_names.iter().map(String::as_str).collect();
            relabeled_schemas.push(p.schema.relabeled_attrs(&name_refs)?);
            node_inputs.push(p.node);
            relabels.push(new_names);
        }
        let refs: Vec<&Schema> = relabeled_schemas.iter().collect();
        let schema = merged_schema(&refs)?;
        self.push_node(
            row.pr,
            PhysOp::HashMerge {
                inputs: node_inputs,
                scheme: scheme_name.to_string(),
                key: scheme.key().to_string(),
                relabels,
            },
            schema,
            AliasMap::new(),
            None,
        );
        Ok(())
    }

    fn lower_pqp_row(&mut self, row: &IomRow) -> Result<(), PqpError> {
        match row.op {
            Op::Merge => self.lower_merge(row),
            Op::Select => {
                let (input_pr, input) = self.derived_input(&row.lhr, row.pr)?;
                let input = input.clone();
                let attr = self.resolve(&input, self.single_attr(row)?)?;
                let Rha::Const(v) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Select requires a constant RHA".into(),
                    });
                };
                let schema = Arc::clone(&input.schema);
                let aliases = Self::retain_valid(input.aliases.clone(), &schema);
                self.push_stage(
                    row.pr,
                    input_pr,
                    Stage {
                        row: row.pr,
                        kind: StageKind::Select {
                            attr,
                            cmp: self.theta(row),
                            value: v.clone(),
                        },
                    },
                    schema,
                    aliases,
                )
            }
            Op::Restrict => {
                let (input_pr, input) = self.derived_input(&row.lhr, row.pr)?;
                let input = input.clone();
                let x = self.resolve(&input, self.single_attr(row)?)?;
                let Rha::Attr(y) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Restrict requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&input, y)?;
                let schema = Arc::clone(&input.schema);
                let aliases = Self::retain_valid(input.aliases.clone(), &schema);
                self.push_stage(
                    row.pr,
                    input_pr,
                    Stage {
                        row: row.pr,
                        kind: StageKind::Restrict {
                            x,
                            cmp: self.theta(row),
                            y,
                        },
                    },
                    schema,
                    aliases,
                )
            }
            Op::Project => {
                let (input_pr, input) = self.derived_input(&row.lhr, row.pr)?;
                let input = input.clone();
                let cols = row
                    .lha
                    .iter()
                    .map(|a| self.resolve(&input, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                let idx = input.schema.indices_of(&refs)?;
                let mut schema = Arc::new(input.schema.project(&idx, input.schema.name())?);
                // Present the columns under the names the query asked for
                // (an alias-resolved `CEO` should not surface as `ANAME`).
                let output = row.lha.clone();
                if output != cols {
                    let names: Vec<&str> = output.iter().map(String::as_str).collect();
                    schema = Arc::new(schema.relabeled_attrs(&names)?);
                }
                self.push_stage(
                    row.pr,
                    input_pr,
                    Stage {
                        row: row.pr,
                        kind: StageKind::Project { cols, output },
                    },
                    schema,
                    AliasMap::new(),
                )
            }
            Op::Join => {
                let left = self.input(&row.lhr, row.pr)?.clone();
                let right = self.input(&row.rhr, row.pr)?.clone();
                let x_raw = self.single_attr(row)?.to_string();
                let x = self.resolve(&left, &x_raw)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "Join requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&right, y_raw)?;
                if self.theta(row) == Cmp::Eq {
                    // Equi-joins coalesce the two join columns into one
                    // named after the right side — how Tables 5 and 7 are
                    // printed. The left name lives on as an alias.
                    let schema =
                        equi_join_coalesced_schema(&left.schema, &right.schema, &x, &y, &y)?;
                    let mut aliases = left.aliases.clone();
                    aliases.extend(right.aliases.clone());
                    let aliases = equi_join_aliases(aliases, &x, x_raw, &y, y_raw);
                    let aliases = Self::retain_valid(aliases, &schema);
                    self.push_node(
                        row.pr,
                        PhysOp::HashJoin {
                            left: left.node,
                            right: right.node,
                            x,
                            y: y.clone(),
                            out: y,
                        },
                        schema,
                        aliases,
                        None,
                    );
                } else {
                    let schema = Arc::new(left.schema.concat(
                        &right.schema,
                        &format!("{}x{}", left.schema.name(), right.schema.name()),
                    )?);
                    let mut aliases = left.aliases.clone();
                    aliases.extend(right.aliases.clone());
                    let aliases = Self::retain_valid(aliases, &schema);
                    self.push_node(
                        row.pr,
                        PhysOp::ThetaJoin {
                            left: left.node,
                            right: right.node,
                            x,
                            cmp: self.theta(row),
                            y,
                        },
                        schema,
                        aliases,
                        None,
                    );
                }
                Ok(())
            }
            Op::AntiJoin => {
                let left = self.input(&row.lhr, row.pr)?.clone();
                let right = self.input(&row.rhr, row.pr)?.clone();
                let x = self.resolve(&left, self.single_attr(row)?)?;
                let Rha::Attr(y_raw) = &row.rha else {
                    return Err(PqpError::MalformedRow {
                        row: row.pr,
                        reason: "AntiJoin requires an attribute RHA".into(),
                    });
                };
                let y = self.resolve(&right, y_raw)?;
                let schema = Arc::clone(&left.schema);
                let aliases = Self::retain_valid(left.aliases.clone(), &schema);
                self.push_node(
                    row.pr,
                    PhysOp::AntiJoin {
                        left: left.node,
                        right: right.node,
                        x,
                        y,
                    },
                    schema,
                    aliases,
                    None,
                );
                Ok(())
            }
            Op::Union | Op::Difference | Op::Intersect => {
                let left = self.input(&row.lhr, row.pr)?.clone();
                let right = self.input(&row.rhr, row.pr)?.clone();
                let schema = Arc::clone(&left.schema);
                let aliases = Self::retain_valid(left.aliases.clone(), &schema);
                let op = match row.op {
                    Op::Union => PhysOp::Union {
                        left: left.node,
                        right: right.node,
                    },
                    Op::Difference => PhysOp::Difference {
                        left: left.node,
                        right: right.node,
                    },
                    _ => PhysOp::Intersect {
                        left: left.node,
                        right: right.node,
                    },
                };
                self.push_node(row.pr, op, schema, aliases, None);
                Ok(())
            }
            Op::Product => {
                let left = self.input(&row.lhr, row.pr)?.clone();
                let right = self.input(&row.rhr, row.pr)?.clone();
                let schema = Arc::new(left.schema.concat(
                    &right.schema,
                    &format!("{}x{}", left.schema.name(), right.schema.name()),
                )?);
                let mut aliases = left.aliases.clone();
                aliases.extend(right.aliases.clone());
                let aliases = Self::retain_valid(aliases, &schema);
                self.push_node(
                    row.pr,
                    PhysOp::Product {
                        left: left.node,
                        right: right.node,
                    },
                    schema,
                    aliases,
                    None,
                );
                Ok(())
            }
            Op::Retrieve => Err(PqpError::MalformedRow {
                row: row.pr,
                reason: "Retrieve cannot execute at the PQP".into(),
            }),
        }
    }
}

/// Lower an IOM into a physical plan.
pub fn lower(
    iom: &Iom,
    registry: &LqpRegistry,
    dictionary: &DataDictionary,
    options: LowerOptions,
) -> Result<PhysicalPlan, PqpError> {
    let mut uses: HashMap<usize, usize> = HashMap::new();
    for row in &iom.rows {
        for r in [&row.lhr, &row.rhr] {
            match r {
                RelRef::Derived(i) => *uses.entry(*i).or_default() += 1,
                RelRef::DerivedList(ids) => {
                    for i in ids {
                        *uses.entry(*i).or_default() += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let mut lowerer = Lowerer {
        registry,
        dictionary,
        fuse: options.fuse,
        partitions: options.partitions.max(1),
        uses,
        nodes: Vec::with_capacity(iom.rows.len()),
        env: HashMap::new(),
    };
    for row in &iom.rows {
        match &row.el {
            ExecLoc::Lqp(db) => {
                let db = db.clone();
                lowerer.lower_lqp_row(row, &db)?;
            }
            ExecLoc::Pqp => lowerer.lower_pqp_row(row)?,
        }
    }
    let final_pr = iom.final_result().ok_or(PqpError::MalformedRow {
        row: 0,
        reason: "empty IOM".into(),
    })?;
    let root = lowerer
        .env
        .get(&final_pr)
        .ok_or(PqpError::DanglingReference(final_pr))?
        .node;
    Ok(PhysicalPlan {
        nodes: lowerer.nodes,
        root,
    })
}

// ---------------------------------------------------------------------
// Index pushdown — the routing pass between lowering and execution.
//
// Modeled on icydb's `FastPathPlan`: one validated routing decision per
// Scan leaf, derived once per plan, execution-agnostic. A leaf routes
// onto an index only when every eligibility gate passes; anything else
// keeps the full scan, so correctness never depends on an index.
// ---------------------------------------------------------------------

/// Why a Scan leaf did (or did not) route onto an index — the
/// `FastPathPlan`-style decision record, one per Scan leaf.
#[derive(Debug, Clone, PartialEq)]
enum Route {
    /// Swap the scan for an index probe.
    Index {
        column: String,
        kind: IndexKind,
        probe: Probe,
    },
    /// Keep the full scan.
    Scan,
}

/// Decide the route for one Scan leaf. `stages` is the lone consuming
/// pipeline's stage list, when the leaf has exactly one consumer and it
/// is a pipeline — the source of foldable residual conjuncts.
fn route_scan(catalog: &IndexCatalog, db: &str, op: &LocalOp, stages: Option<&[Stage]>) -> Route {
    // Only plain retrieves and single-predicate selects are candidates:
    // restricts compare two columns (not sargable) and projections
    // change the leaf schema out from under the index's base.
    if op.restrict.is_some() || op.projection.is_some() {
        return Route::Scan;
    }
    // Seed the interval: the scan's own filter (evaluated LQP-side on
    // raw values — requires a raw-faithful index), or, for a bare
    // retrieve, the first Select stage of the lone consuming pipeline
    // (evaluated PQP-side on mapped values — the index's native keys).
    let (column, index, seed, fold_from) = match &op.filter {
        Some((attr, cmp, value)) => {
            let Some(index) = catalog.lookup(db, &op.relation, attr) else {
                return Route::Scan;
            };
            if !index.raw_faithful() || !index.supports(*cmp) || !index.admits_literal(value) {
                return Route::Scan;
            }
            let Some(seed) = Interval::from_predicate(*cmp, value) else {
                return Route::Scan;
            };
            (attr.clone(), index, seed, 0)
        }
        None => {
            let Some(StageKind::Select { attr, cmp, value }) =
                stages.and_then(|s| s.first()).map(|s| &s.kind)
            else {
                return Route::Scan;
            };
            let Some(index) = catalog.lookup(db, &op.relation, attr) else {
                return Route::Scan;
            };
            if !index.supports(*cmp) || !index.admits_literal(value) {
                return Route::Scan;
            }
            let Some(seed) = Interval::from_predicate(*cmp, value) else {
                return Route::Scan;
            };
            (attr.clone(), index, seed, 1)
        }
    };
    // Fold further leading Select conjuncts over the same column into
    // the probe (they stay in the pipeline as residual predicates, so
    // the probe only has to be a *subset* of each folded conjunct —
    // intersection guarantees that). Hash postings can only serve a
    // point, which the seed alone already pins, so folding is
    // sorted-only.
    let mut interval = seed;
    if index.kind() == IndexKind::Sorted {
        if let Some(stages) = stages {
            for stage in stages.iter().skip(fold_from) {
                let StageKind::Select { attr, cmp, value } = &stage.kind else {
                    break;
                };
                if *attr != column || !index.admits_literal(value) {
                    break;
                }
                let Some(pred) = Interval::from_predicate(*cmp, value) else {
                    break;
                };
                interval = interval.intersect(pred);
            }
        }
    }
    match interval.into_probe() {
        Some(probe) if index.kind() == IndexKind::Hash && !matches!(probe, Probe::Point(_)) => {
            Route::Scan
        }
        Some(probe) => Route::Index {
            column,
            kind: index.kind(),
            probe,
        },
        None => Route::Scan,
    }
}

/// The pushdown pass: route eligible Scan leaves onto available
/// secondary indexes, leaving everything else — pipelines, residual
/// predicates, join strategies, partitioning — untouched. The routed
/// plan is byte-identical in results to the input plan: a probe emits
/// exactly the tuples the scan's predicate would have retained, in scan
/// order, and folded conjuncts re-check themselves as pipeline stages.
pub fn route_index_scans(plan: &PhysicalPlan, catalog: &IndexCatalog) -> PhysicalPlan {
    if catalog.is_empty() {
        return plan.clone();
    }
    // Consumers per node: stage folding needs the lone consuming
    // pipeline; a shared leaf (a deduplicated self-join scan) may still
    // route its own filter but must not fold any one consumer's stages.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); plan.nodes.len()];
    for (i, node) in plan.nodes.iter().enumerate() {
        for input in node.op.inputs() {
            consumers[input].push(i);
        }
    }
    let mut routed = plan.clone();
    for (i, node) in plan.nodes.iter().enumerate() {
        let PhysOp::Scan { db, op } = &node.op else {
            continue;
        };
        let lone_pipeline_stages = match consumers[i].as_slice() {
            [j] => match &plan.nodes[*j].op {
                PhysOp::Pipeline { input, stages } if *input == i => Some(stages.as_slice()),
                _ => None,
            },
            _ => None,
        };
        if let Route::Index {
            column,
            kind,
            probe,
        } = route_scan(catalog, db, op, lone_pipeline_stages)
        {
            routed.nodes[i].op = PhysOp::IndexScan {
                db: db.clone(),
                relation: op.relation.clone(),
                column,
                kind,
                probe,
            };
        }
    }
    routed
}

/// Render the physical plan with fusion and join-strategy annotations —
/// the `EXPLAIN` section production engines print.
pub fn render_plan(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let rref = |i: usize| format!("R({})", plan.nodes[i].row);
    for (i, node) in plan.nodes.iter().enumerate() {
        let desc = match &node.op {
            PhysOp::Scan { db, op } => format!("Scan[{db}] {op}"),
            PhysOp::IndexScan {
                db,
                relation,
                column,
                kind,
                probe,
            } => format!(
                "IndexScan[{db}] {relation} [ixscan {}] ({kind})",
                probe.render(&format!("{db}.{column}"))
            ),
            PhysOp::Pipeline { input, stages } => {
                let shown: Vec<String> = stages
                    .iter()
                    .map(|s| match &s.kind {
                        StageKind::Select { attr, cmp, value } => {
                            format!("Select[{attr} {cmp} {value}]@R({})", s.row)
                        }
                        StageKind::Restrict { x, cmp, y } => {
                            format!("Restrict[{x} {cmp} {y}]@R({})", s.row)
                        }
                        StageKind::Project { output, .. } => {
                            format!("Project[{}]@R({})", output.join(", "), s.row)
                        }
                    })
                    .collect();
                let fusion = if stages.len() > 1 {
                    format!(" (fused ×{})", stages.len())
                } else {
                    String::new()
                };
                format!(
                    "Pipeline over {} → {}{fusion}",
                    rref(*input),
                    shown.join(" → ")
                )
            }
            PhysOp::HashJoin {
                left,
                right,
                x,
                y,
                out,
            } => format!(
                "HashJoin[{l}.{x} = {r}.{y}, coalesce → {out}] (build {r}, probe {l})",
                l = rref(*left),
                r = rref(*right),
            ),
            PhysOp::ThetaJoin {
                left,
                right,
                x,
                cmp,
                y,
            } => format!(
                "NestedLoopJoin[{}.{x} {cmp} {}.{y}]",
                rref(*left),
                rref(*right)
            ),
            PhysOp::HashMerge {
                inputs,
                scheme,
                key,
                ..
            } => {
                let shown: Vec<String> = inputs.iter().map(|i| rref(*i)).collect();
                format!(
                    "HashMerge[{scheme} on {key}, {}-way single pass] over {}",
                    inputs.len(),
                    shown.join(", ")
                )
            }
            PhysOp::AntiJoin { left, right, x, y } => {
                format!("AntiJoin[{}.{x} = {}.{y}]", rref(*left), rref(*right))
            }
            PhysOp::Union { left, right } => format!("Union[{}, {}]", rref(*left), rref(*right)),
            PhysOp::Difference { left, right } => {
                format!("Difference[{}, {}]", rref(*left), rref(*right))
            }
            PhysOp::Intersect { left, right } => {
                format!("Intersect[{}, {}]", rref(*left), rref(*right))
            }
            PhysOp::Product { left, right } => {
                format!("Product[{}, {}]", rref(*left), rref(*right))
            }
        };
        let par = match &node.partitioning {
            Partitioning::Serial => String::new(),
            Partitioning::Chunked { partitions } => format!(" [chunked x{partitions}]"),
            Partitioning::Hash { key, partitions } => format!(" [hash({key}) x{partitions}]"),
        };
        let batch = if plan.is_batch_pipeline(i) {
            " [batch]"
        } else {
            ""
        };
        let marker = if i == plan.root { " ◀ answer" } else { "" };
        let _ = writeln!(out, "#{i:<2} {desc}{batch}{par}  → R({}){marker}", node.row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::interpreter::interpret;
    use polygen_catalog::scenario;
    use polygen_lqp::scenario_registry;
    use polygen_sql::algebra_expr::{parse_algebra, PAPER_EXPRESSION};

    fn paper_plan(fuse: bool) -> PhysicalPlan {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom = analyze(&parse_algebra(PAPER_EXPRESSION).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        lower(
            &iom,
            &registry,
            &s.dictionary,
            LowerOptions {
                fuse,
                ..LowerOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn paper_query_lowers_with_hash_strategies() {
        let plan = paper_plan(true);
        let joins = plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, PhysOp::HashJoin { .. }))
            .count();
        assert_eq!(joins, 2, "both equi-joins lower to hash joins");
        let merges: Vec<_> = plan
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                PhysOp::HashMerge { inputs, key, .. } => Some((inputs.len(), key.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(merges, vec![(3, "ONAME".to_string())]);
    }

    #[test]
    fn fusion_collapses_restrict_project_tail() {
        let fused = paper_plan(true);
        let unfused = paper_plan(false);
        // Rows 9 (Restrict) and 10 (Project) fuse into one pipeline.
        assert_eq!(fused.fused_rows(), 1);
        assert!(fused.nodes.len() < unfused.nodes.len());
        assert_eq!(unfused.nodes.len(), 10, "no fusion → one node per row");
        // Both plans end at the final row.
        assert_eq!(fused.nodes[fused.root].row, 10);
        assert_eq!(unfused.nodes[unfused.root].row, 10);
    }

    #[test]
    fn planned_schemas_name_final_columns() {
        let plan = paper_plan(true);
        let root = &plan.nodes[plan.root];
        let attrs: Vec<&str> = root.schema.attrs().iter().map(|a| a.as_ref()).collect();
        assert_eq!(attrs, vec!["ONAME", "CEO"]);
    }

    #[test]
    fn render_annotates_strategies_and_fusion() {
        let shown = render_plan(&paper_plan(true));
        assert!(shown.contains("HashJoin"), "{shown}");
        assert!(shown.contains("HashMerge[PORGANIZATION on ONAME, 3-way single pass]"));
        assert!(shown.contains("(fused ×2)"));
        assert!(shown.contains("◀ answer"));
    }

    #[test]
    fn partition_annotations_cover_parallel_operators() {
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom = analyze(&parse_algebra(PAPER_EXPRESSION).unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let plan = lower(
            &iom,
            &registry,
            &s.dictionary,
            LowerOptions {
                fuse: true,
                partitions: 4,
            },
        )
        .unwrap();
        for node in &plan.nodes {
            match &node.op {
                PhysOp::Pipeline { .. } => {
                    assert_eq!(node.partitioning, Partitioning::Chunked { partitions: 4 })
                }
                PhysOp::HashJoin { out, .. } => assert_eq!(
                    node.partitioning,
                    Partitioning::Hash {
                        key: out.clone(),
                        partitions: 4
                    }
                ),
                PhysOp::HashMerge { key, .. } => assert_eq!(
                    node.partitioning,
                    Partitioning::Hash {
                        key: key.clone(),
                        partitions: 4
                    }
                ),
                _ => assert_eq!(node.partitioning, Partitioning::Serial),
            }
        }
        let shown = render_plan(&plan);
        assert!(shown.contains("[hash(ONAME) x4]"), "{shown}");
        assert!(shown.contains("[chunked x4]"), "{shown}");
        // Serial lowering keeps the pre-parallel rendering exactly.
        let serial = render_plan(&paper_plan(true));
        assert!(!serial.contains("[hash("), "{serial}");
        assert!(!serial.contains("[chunked"), "{serial}");
    }

    #[test]
    fn pushdown_routes_eligible_select_scans() {
        use polygen_index::IndexSpec;
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let catalog = IndexCatalog::build(
            &[IndexSpec::hash("AD", "ALUMNUS", "DEG")],
            &registry,
            &s.dictionary,
        )
        .unwrap();
        let plan = paper_plan(true);
        let routed = route_index_scans(&plan, &catalog);
        assert_eq!(routed.index_scans(), 1, "the MBA select routes");
        assert!(matches!(
            &routed.nodes[0].op,
            PhysOp::IndexScan { db, column, kind: IndexKind::Hash, probe: Probe::Point(v), .. }
                if db == "AD" && column == "DEG" && *v == Value::str("MBA")
        ));
        // Everything else — and the scans' source set — is untouched.
        assert_eq!(plan.source_dbs(), routed.source_dbs());
        assert_eq!(plan.nodes.len(), routed.nodes.len());
        let shown = render_plan(&routed);
        assert!(
            shown.contains("IndexScan[AD] ALUMNUS [ixscan AD.DEG = MBA] (hash)"),
            "{shown}"
        );
        // An empty catalog routes nothing.
        assert_eq!(route_index_scans(&plan, &IndexCatalog::empty()), plan);
    }

    #[test]
    fn pushdown_rejects_non_sargable_and_unfaithful_scans() {
        use polygen_index::IndexSpec;
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let catalog = IndexCatalog::build(
            &[
                IndexSpec::hash("AD", "ALUMNUS", "DEG"),
                IndexSpec::hash("CD", "FIRM", "HQ"), // domain-rule column
            ],
            &registry,
            &s.dictionary,
        )
        .unwrap();
        let lower_expr = |expr: &str| {
            let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
            let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
            lower(&iom, &registry, &s.dictionary, LowerOptions::default()).unwrap()
        };
        // `<>` is not sargable.
        let ne = lower_expr("PALUMNUS [DEGREE <> \"MBA\"]");
        assert_eq!(route_index_scans(&ne, &catalog).index_scans(), 0);
        // A range θ cannot ride hash postings.
        let range = lower_expr("PALUMNUS [DEGREE > \"MBA\"]");
        assert_eq!(route_index_scans(&range, &catalog).index_scans(), 0);
        // Selects over a merged scheme execute post-merge: the FIRM
        // retrieve is bare and feeds the merge, so nothing routes —
        // even though CD.FIRM.HQ is indexed (and, being rewritten by
        // the LastCommaToken domain rule, would be rejected as
        // raw-unfaithful if a filtered scan ever targeted it).
        assert!(!catalog.lookup("CD", "FIRM", "HQ").unwrap().raw_faithful());
        let firm = lower_expr("PORGANIZATION [HEADQUARTERS = \"NY\"]");
        assert_eq!(route_index_scans(&firm, &catalog).index_scans(), 0);
    }

    #[test]
    fn pushdown_folds_between_conjuncts_into_a_range_probe() {
        use polygen_index::IndexSpec;
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let catalog = IndexCatalog::build(
            &[IndexSpec::sorted("AD", "ALUMNUS", "AID#")],
            &registry,
            &s.dictionary,
        )
        .unwrap();
        // First select ships to the LQP; the second becomes a pipeline
        // stage — the foldable residual conjunct.
        let pom = analyze(&parse_algebra("PALUMNUS [AID# >= \"200\"] [AID# <= \"600\"]").unwrap())
            .unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let plan = lower(&iom, &registry, &s.dictionary, LowerOptions::default()).unwrap();
        let routed = route_index_scans(&plan, &catalog);
        assert_eq!(routed.index_scans(), 1);
        let PhysOp::IndexScan { probe, .. } = &routed.nodes[0].op else {
            panic!("scan not routed: {}", render_plan(&routed));
        };
        assert_eq!(
            probe.render("AID#"),
            "200 <= AID# <= 600",
            "both conjuncts folded into one range probe"
        );
        // The residual stage survives in the pipeline, re-checking its
        // conjunct over the (already-narrowed) probe output.
        assert!(matches!(
            &routed.nodes[1].op,
            PhysOp::Pipeline { stages, .. } if stages.len() == 1
        ));
    }

    #[test]
    fn shared_scan_does_not_fuse() {
        // A self-join's deduplicated retrieve feeds two consumers; the
        // select over it must not be fused into a shared node.
        let s = scenario::build();
        let registry = scenario_registry(&s);
        let pom = analyze(&parse_algebra("PCAREER [AID# = AID#] PCAREER").unwrap()).unwrap();
        let (_, iom) = interpret(&pom, s.dictionary.schema()).unwrap();
        let (opt, _) = crate::optimizer::optimize(&iom, &registry, &s.dictionary).unwrap();
        let plan = lower(&opt, &registry, &s.dictionary, LowerOptions::default()).unwrap();
        // Deduped plan: one scan + one hash join over it twice.
        let scans = plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, PhysOp::Scan { .. }))
            .count();
        assert_eq!(scans, 1);
        if let PhysOp::HashJoin { left, right, .. } = &plan.nodes[plan.root].op {
            assert_eq!(left, right, "both sides read the shared scan");
        } else {
            panic!("root should be a hash join");
        }
    }
}
