//! The PQP's error type.

use polygen_core::error::PolygenError;
use polygen_lqp::engine::LqpError;
use polygen_sql::lower::LowerError;
use polygen_sql::token::SyntaxError;
use std::fmt;

/// Everything that can go wrong between an SQL string and a tagged
/// composite answer.
#[derive(Debug, Clone, PartialEq)]
pub enum PqpError {
    /// Query-text syntax error.
    Syntax(SyntaxError),
    /// SQL → algebra lowering failure.
    Lower(LowerError),
    /// The expression was a bare relation with no operation.
    BareRelation(String),
    /// A referenced relation is neither a polygen scheme nor a derived
    /// result.
    UnknownRelation(String),
    /// An attribute could not be resolved against a relation, even via
    /// the polygen schema's local-name candidates.
    UnresolvedAttribute { relation: String, attribute: String },
    /// An attribute resolved to several columns.
    AmbiguousAttribute {
        relation: String,
        attribute: String,
        candidates: Vec<String>,
    },
    /// A forward/dangling `R(n)` reference inside a matrix.
    DanglingReference(usize),
    /// An LQP failed.
    Lqp(LqpError),
    /// A polygen algebra operation failed.
    Polygen(PolygenError),
    /// An interpreter invariant was violated (a malformed matrix row).
    MalformedRow { row: usize, reason: String },
}

impl fmt::Display for PqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqpError::Syntax(e) => write!(f, "{e}"),
            PqpError::Lower(e) => write!(f, "{e}"),
            PqpError::BareRelation(r) => {
                write!(f, "expression is the bare relation `{r}` with no operation")
            }
            PqpError::UnknownRelation(r) => {
                write!(f, "`{r}` is not a polygen scheme or derived relation")
            }
            PqpError::UnresolvedAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "attribute `{attribute}` not resolvable in relation `{relation}`"
            ),
            PqpError::AmbiguousAttribute {
                relation,
                attribute,
                candidates,
            } => write!(
                f,
                "attribute `{attribute}` is ambiguous in `{relation}`: {}",
                candidates.join(", ")
            ),
            PqpError::DanglingReference(n) => write!(f, "dangling reference R({n})"),
            PqpError::Lqp(e) => write!(f, "{e}"),
            PqpError::Polygen(e) => write!(f, "{e}"),
            PqpError::MalformedRow { row, reason } => {
                write!(f, "malformed matrix row {row}: {reason}")
            }
        }
    }
}

impl std::error::Error for PqpError {}

impl From<SyntaxError> for PqpError {
    fn from(e: SyntaxError) -> Self {
        PqpError::Syntax(e)
    }
}
impl From<LowerError> for PqpError {
    fn from(e: LowerError) -> Self {
        PqpError::Lower(e)
    }
}
impl From<LqpError> for PqpError {
    fn from(e: LqpError) -> Self {
        PqpError::Lqp(e)
    }
}
impl From<PolygenError> for PqpError {
    fn from(e: PolygenError) -> Self {
        PqpError::Polygen(e)
    }
}
impl From<polygen_flat::error::FlatError> for PqpError {
    fn from(e: polygen_flat::error::FlatError) -> Self {
        PqpError::Polygen(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PqpError = SyntaxError {
            position: 3,
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("syntax error"));
        let e: PqpError = LowerError::UnknownRelation("X".into()).into();
        assert!(e.to_string().contains("unknown polygen relation"));
        let e = PqpError::UnresolvedAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        assert!(e.to_string().contains("not resolvable"));
    }
}
