//! Pass one of the Polygen Operation Interpreter (Figure 3).
//!
//! For each POM row, the left-hand side is expanded:
//!
//! * LHR is a polygen scheme materialized by **one** local relation → the
//!   operation maps to that local relation: polygen attribute names become
//!   local ones (`DEGREE` → `DEG`) and the execution location becomes the
//!   owning LQP (Table 2's first row).
//! * LHR is a polygen scheme over **several** local relations → "these
//!   relations are retrieved and merged first before the requested
//!   operation is performed by the PQP."
//! * LHR is `R(#)` → the row is copied with renumbered references and the
//!   PQP as execution location "because R(#) resides in the PQP."

use crate::error::PqpError;
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::pom::{Op, Pom, RelRef, Rha};
use polygen_catalog::schema::PolygenSchema;
use polygen_catalog::scheme::PolygenScheme;
use std::collections::HashMap;

/// Map a polygen attribute to its local name within `(db, rel)`.
pub(crate) fn localize_attr(
    scheme: &PolygenScheme,
    pa: &str,
    db: &str,
    rel: &str,
    row: usize,
) -> Result<String, PqpError> {
    scheme
        .local_attr_of(pa, db, rel)
        .map(|a| a.attribute.to_string())
        .ok_or_else(|| PqpError::MalformedRow {
            row,
            reason: format!(
                "polygen attribute `{pa}` of `{}` has no local attribute in {db}.{rel}",
                scheme.name()
            ),
        })
}

/// Emit the Retrieve + Merge pipeline for a multi-source scheme; returns
/// the Merge row's result id.
pub(crate) fn emit_retrieve_merge(out: &mut Iom, scheme: &PolygenScheme) -> usize {
    let mut retrieved = Vec::new();
    for local in scheme.local_relations() {
        let pr = out.rows.len() + 1;
        out.rows.push(IomRow {
            pr,
            op: Op::Retrieve,
            lhr: RelRef::Named(local.relation.to_string()),
            lha: Vec::new(),
            theta: None,
            rha: Rha::Nil,
            rhr: RelRef::Nil,
            el: ExecLoc::Lqp(local.database.to_string()),
            scheme_ctx: None,
        });
        retrieved.push(pr);
    }
    let pr = out.rows.len() + 1;
    out.rows.push(IomRow {
        pr,
        op: Op::Merge,
        lhr: RelRef::DerivedList(retrieved),
        lha: Vec::new(),
        theta: None,
        rha: Rha::Nil,
        rhr: RelRef::Nil,
        el: ExecLoc::Pqp,
        scheme_ctx: Some(scheme.name().to_string()),
    });
    pr
}

/// Pass one: POM → half-processed matrix.
pub fn pass_one(pom: &Pom, schema: &PolygenSchema) -> Result<Iom, PqpError> {
    let mut out = Iom::default();
    // POM result id → half-matrix result id (the paper's `map` function).
    let mut map: HashMap<usize, usize> = HashMap::with_capacity(pom.rows.len());
    for (k, row) in pom.rows.iter().enumerate() {
        match &row.lhr {
            RelRef::Named(name) => {
                let scheme = schema
                    .scheme(name)
                    .ok_or_else(|| PqpError::UnknownRelation(name.clone()))?;
                match scheme.single_local_relation() {
                    Some(local) => {
                        // Single-source: localize attribute names and run
                        // at the owning LQP.
                        let db = local.database.as_ref();
                        let rel = local.relation.as_ref();
                        let lha = row
                            .lha
                            .iter()
                            .map(|pa| localize_attr(scheme, pa, db, rel, k + 1))
                            .collect::<Result<Vec<_>, _>>()?;
                        // A Restrict's RHA is an attribute of the same
                        // relation; localize it too. A Join's RHA belongs
                        // to the RHR and is pass two's business.
                        let rha = match (&row.rha, &row.rhr) {
                            (Rha::Attr(pa), RelRef::Nil) => {
                                Rha::Attr(localize_attr(scheme, pa, db, rel, k + 1)?)
                            }
                            (other, _) => other.clone(),
                        };
                        let pr = out.rows.len() + 1;
                        out.rows.push(IomRow {
                            pr,
                            op: row.op,
                            lhr: RelRef::Named(rel.to_string()),
                            lha,
                            theta: row.theta,
                            rha,
                            rhr: row.rhr.clone(),
                            el: ExecLoc::Lqp(db.to_string()),
                            scheme_ctx: None,
                        });
                        map.insert(row.pr, pr);
                    }
                    None => {
                        // Multi-source: retrieve + merge, then the
                        // operation at the PQP over polygen names.
                        let merge_pr = emit_retrieve_merge(&mut out, scheme);
                        let pr = out.rows.len() + 1;
                        out.rows.push(IomRow {
                            pr,
                            op: row.op,
                            lhr: RelRef::Derived(merge_pr),
                            lha: row.lha.clone(),
                            theta: row.theta,
                            rha: row.rha.clone(),
                            rhr: row.rhr.clone(),
                            el: ExecLoc::Pqp,
                            scheme_ctx: None,
                        });
                        map.insert(row.pr, pr);
                    }
                }
            }
            RelRef::Derived(r) => {
                let mapped = *map.get(r).ok_or(PqpError::DanglingReference(*r))?;
                let pr = out.rows.len() + 1;
                out.rows.push(IomRow {
                    pr,
                    op: row.op,
                    lhr: RelRef::Derived(mapped),
                    lha: row.lha.clone(),
                    theta: row.theta,
                    rha: row.rha.clone(),
                    rhr: map_rhr(&row.rhr, &map)?,
                    el: ExecLoc::Pqp,
                    scheme_ctx: None,
                });
                map.insert(row.pr, pr);
            }
            RelRef::Nil | RelRef::DerivedList(_) => {
                return Err(PqpError::MalformedRow {
                    row: k + 1,
                    reason: "POM row without a left-hand relation".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Renumber a derived RHR through the map; named RHRs wait for pass two.
fn map_rhr(rhr: &RelRef, map: &HashMap<usize, usize>) -> Result<RelRef, PqpError> {
    Ok(match rhr {
        RelRef::Derived(r) => RelRef::Derived(*map.get(r).ok_or(PqpError::DanglingReference(*r))?),
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use polygen_catalog::scenario;
    use polygen_flat::value::{Cmp, Value};
    use polygen_sql::algebra_expr::{parse_algebra, PAPER_EXPRESSION};

    /// Pass one must regenerate Table 2 exactly.
    #[test]
    fn table2_for_the_paper_expression() {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra(PAPER_EXPRESSION).unwrap()).unwrap();
        let h = pass_one(&pom, &schema).unwrap();
        assert_eq!(h.cardinality(), 5);
        let r = &h.rows;
        // R(1) Select ALUMNUS DEG = "MBA" nil AD
        assert_eq!(r[0].op, Op::Select);
        assert_eq!(r[0].lhr, RelRef::Named("ALUMNUS".into()));
        assert_eq!(r[0].lha, vec!["DEG"]);
        assert_eq!(r[0].rha, Rha::Const(Value::str("MBA")));
        assert_eq!(r[0].el, ExecLoc::Lqp("AD".into()));
        // R(2) Join R(1) AID# = AID# PCAREER PQP
        assert_eq!(r[1].op, Op::Join);
        assert_eq!(r[1].lhr, RelRef::Derived(1));
        assert_eq!(r[1].rhr, RelRef::Named("PCAREER".into()));
        assert_eq!(r[1].el, ExecLoc::Pqp);
        // R(3) Join R(2) ONAME = ONAME PORGANIZATION PQP
        assert_eq!(r[2].rhr, RelRef::Named("PORGANIZATION".into()));
        assert_eq!(r[2].el, ExecLoc::Pqp);
        // R(4) Restrict R(3) CEO = ANAME nil PQP
        assert_eq!(r[3].op, Op::Restrict);
        assert_eq!(r[3].lha, vec!["CEO"]);
        assert_eq!(r[3].rha, Rha::Attr("ANAME".into()));
        assert_eq!(r[3].el, ExecLoc::Pqp);
        // R(5) Project R(4) ONAME, CEO … PQP
        assert_eq!(r[4].op, Op::Project);
        assert_eq!(r[4].lha, vec!["ONAME", "CEO"]);
        assert_eq!(r[4].el, ExecLoc::Pqp);
    }

    #[test]
    fn multi_source_lhr_expands_to_retrieve_merge() {
        let schema = scenario::polygen_schema();
        let pom =
            analyze(&parse_algebra("PORGANIZATION [INDUSTRY = \"Banking\"]").unwrap()).unwrap();
        let h = pass_one(&pom, &schema).unwrap();
        assert_eq!(h.cardinality(), 5); // 3 retrieves + merge + select
        assert_eq!(h.rows[0].op, Op::Retrieve);
        assert_eq!(h.rows[0].lhr, RelRef::Named("BUSINESS".into()));
        assert_eq!(h.rows[0].el, ExecLoc::Lqp("AD".into()));
        assert_eq!(h.rows[1].lhr, RelRef::Named("CORPORATION".into()));
        assert_eq!(h.rows[2].lhr, RelRef::Named("FIRM".into()));
        assert_eq!(h.rows[3].op, Op::Merge);
        assert_eq!(h.rows[3].lhr, RelRef::DerivedList(vec![1, 2, 3]));
        assert_eq!(h.rows[3].scheme_ctx.as_deref(), Some("PORGANIZATION"));
        assert_eq!(h.rows[4].op, Op::Select);
        assert_eq!(h.rows[4].lhr, RelRef::Derived(4));
        // The select on a merged relation keeps polygen attribute names.
        assert_eq!(h.rows[4].lha, vec!["INDUSTRY"]);
    }

    #[test]
    fn restrict_on_single_source_scheme_localizes_both_attrs() {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra("PALUMNUS [ANAME = MAJOR]").unwrap()).unwrap();
        let h = pass_one(&pom, &schema).unwrap();
        assert_eq!(h.rows[0].lha, vec!["ANAME"]);
        assert_eq!(h.rows[0].rha, Rha::Attr("MAJ".into()));
        assert_eq!(h.rows[0].theta, Some(Cmp::Eq));
        assert_eq!(h.rows[0].el, ExecLoc::Lqp("AD".into()));
    }

    #[test]
    fn unknown_scheme_errors() {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra("NOPE [X = 1]").unwrap()).unwrap();
        assert!(matches!(
            pass_one(&pom, &schema),
            Err(PqpError::UnknownRelation(n)) if n == "NOPE"
        ));
    }

    #[test]
    fn unmapped_attr_is_malformed() {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra("PALUMNUS [PROFIT = 3]").unwrap()).unwrap();
        assert!(matches!(
            pass_one(&pom, &schema),
            Err(PqpError::MalformedRow { .. })
        ));
    }
}
