//! Pass two of the Polygen Operation Interpreter (Figure 4).
//!
//! Processes the right-hand side of every half-matrix row. "Three
//! possibilities exist for the right-hand relation: (1) a relation defined
//! by the polygen schema, (2) a R(#) …, and (3) non-existent (nil)."
//! Single-source schemes are retrieved raw (local attribute names, Table
//! 5); multi-source schemes expand to Retrieve + Merge (polygen names,
//! Table 6); rows whose left side was mapped to an LQP while the right
//! side needs PQP data are split into retrieves plus a PQP operation.

use crate::error::PqpError;
use crate::interpreter::pass_one::{emit_retrieve_merge, localize_attr};
use crate::iom::{ExecLoc, Iom, IomRow};
use crate::pom::{Op, RelRef, Rha};
use polygen_catalog::schema::PolygenSchema;
use std::collections::HashMap;

/// Emit a single Retrieve row; returns its result id.
fn emit_retrieve(out: &mut Iom, relation: &str, db: &str) -> usize {
    let pr = out.rows.len() + 1;
    out.rows.push(IomRow {
        pr,
        op: Op::Retrieve,
        lhr: RelRef::Named(relation.to_string()),
        lha: Vec::new(),
        theta: None,
        rha: Rha::Nil,
        rhr: RelRef::Nil,
        el: ExecLoc::Lqp(db.to_string()),
        scheme_ctx: None,
    });
    pr
}

fn map_ref(r: &RelRef, map: &HashMap<usize, usize>) -> Result<RelRef, PqpError> {
    Ok(match r {
        RelRef::Derived(i) => RelRef::Derived(*map.get(i).ok_or(PqpError::DanglingReference(*i))?),
        RelRef::DerivedList(ids) => RelRef::DerivedList(
            ids.iter()
                .map(|i| map.get(i).copied().ok_or(PqpError::DanglingReference(*i)))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        other => other.clone(),
    })
}

/// Pass two: half-processed matrix → IOM.
pub fn pass_two(half: &Iom, schema: &PolygenSchema) -> Result<Iom, PqpError> {
    let mut out = Iom::default();
    let mut map: HashMap<usize, usize> = HashMap::with_capacity(half.rows.len());
    for (k, row) in half.rows.iter().enumerate() {
        match &row.rhr {
            RelRef::Named(name) => {
                let scheme = schema
                    .scheme(name)
                    .ok_or_else(|| PqpError::UnknownRelation(name.clone()))?;
                match scheme.single_local_relation() {
                    Some(local) => {
                        let db = local.database.as_ref();
                        let rel = local.relation.as_ref();
                        // The raw retrieve keeps local names, so the RHA
                        // (a polygen attribute of the scheme) localizes.
                        let rha = match &row.rha {
                            Rha::Attr(pa) => Rha::Attr(localize_attr(scheme, pa, db, rel, k + 1)?),
                            other => other.clone(),
                        };
                        let retrieve_pr = emit_retrieve(&mut out, rel, db);
                        let (lhr, lha) = left_side(&mut out, row, &map)?;
                        let pr = out.rows.len() + 1;
                        out.rows.push(IomRow {
                            pr,
                            op: row.op,
                            lhr,
                            lha,
                            theta: row.theta,
                            rha,
                            rhr: RelRef::Derived(retrieve_pr),
                            el: ExecLoc::Pqp,
                            scheme_ctx: None,
                        });
                        map.insert(row.pr, pr);
                    }
                    None => {
                        let merge_pr = emit_retrieve_merge(&mut out, scheme);
                        let (lhr, lha) = left_side(&mut out, row, &map)?;
                        let pr = out.rows.len() + 1;
                        out.rows.push(IomRow {
                            pr,
                            op: row.op,
                            lhr,
                            lha,
                            theta: row.theta,
                            // Merged relations carry polygen names: the
                            // RHA stays as written (Table 3 row 8).
                            rha: row.rha.clone(),
                            rhr: RelRef::Derived(merge_pr),
                            el: ExecLoc::Pqp,
                            scheme_ctx: None,
                        });
                        map.insert(row.pr, pr);
                    }
                }
            }
            RelRef::Derived(_) | RelRef::DerivedList(_) => {
                // R(#) on the right. If the left side still sits at an LQP
                // (a binary operation pass one mapped to a local relation),
                // the operation must move to the PQP: retrieve the left
                // side first (robustness extension; Figure 4 leaves this
                // case implicit).
                let (lhr, lha) = left_side(&mut out, row, &map)?;
                let pr = out.rows.len() + 1;
                out.rows.push(IomRow {
                    pr,
                    op: row.op,
                    lhr,
                    lha,
                    theta: row.theta,
                    rha: row.rha.clone(),
                    rhr: map_ref(&row.rhr, &map)?,
                    el: ExecLoc::Pqp,
                    scheme_ctx: row.scheme_ctx.clone(),
                });
                map.insert(row.pr, pr);
            }
            RelRef::Nil => {
                // Unary rows copy over; derived references renumber.
                let pr = out.rows.len() + 1;
                out.rows.push(IomRow {
                    pr,
                    op: row.op,
                    lhr: map_ref(&row.lhr, &map)?,
                    lha: row.lha.clone(),
                    theta: row.theta,
                    rha: row.rha.clone(),
                    rhr: RelRef::Nil,
                    el: row.el.clone(),
                    scheme_ctx: row.scheme_ctx.clone(),
                });
                map.insert(row.pr, pr);
            }
        }
    }
    Ok(out)
}

/// Resolve a row's left side for a PQP-executed binary operation: derived
/// references renumber; a left side still at an LQP is retrieved first.
fn left_side(
    out: &mut Iom,
    row: &IomRow,
    map: &HashMap<usize, usize>,
) -> Result<(RelRef, Vec<String>), PqpError> {
    match (&row.lhr, &row.el) {
        (RelRef::Named(local_rel), ExecLoc::Lqp(db)) => {
            // Both sides were "defined in the polygen schema": pass one
            // localized the left side; retrieve it raw and keep the
            // localized attribute names (they match the raw columns).
            let pr = emit_retrieve(out, local_rel, db);
            Ok((RelRef::Derived(pr), row.lha.clone()))
        }
        (lhr, _) => Ok((map_ref(lhr, map)?, row.lha.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::interpreter::pass_one::pass_one;
    use polygen_catalog::scenario;
    use polygen_flat::value::Value;
    use polygen_sql::algebra_expr::{parse_algebra, PAPER_EXPRESSION};

    fn interpret(expr: &str) -> Iom {
        let schema = scenario::polygen_schema();
        let pom = analyze(&parse_algebra(expr).unwrap()).unwrap();
        let h = pass_one(&pom, &schema).unwrap();
        pass_two(&h, &schema).unwrap()
    }

    /// Pass two must regenerate Table 3 exactly.
    #[test]
    fn table3_for_the_paper_expression() {
        let iom = interpret(PAPER_EXPRESSION);
        assert_eq!(iom.cardinality(), 10);
        let r = &iom.rows;
        // R(1) Select ALUMNUS DEG = "MBA" nil AD
        assert_eq!(r[0].op, Op::Select);
        assert_eq!(r[0].lhr, RelRef::Named("ALUMNUS".into()));
        assert_eq!(r[0].lha, vec!["DEG"]);
        assert_eq!(r[0].rha, Rha::Const(Value::str("MBA")));
        assert_eq!(r[0].el, ExecLoc::Lqp("AD".into()));
        // R(2) Retrieve CAREER … AD
        assert_eq!(r[1].op, Op::Retrieve);
        assert_eq!(r[1].lhr, RelRef::Named("CAREER".into()));
        assert_eq!(r[1].el, ExecLoc::Lqp("AD".into()));
        // R(3) Join R(1) AID# = AID# R(2) PQP
        assert_eq!(r[2].op, Op::Join);
        assert_eq!(r[2].lhr, RelRef::Derived(1));
        assert_eq!(r[2].lha, vec!["AID#"]);
        assert_eq!(r[2].rha, Rha::Attr("AID#".into()));
        assert_eq!(r[2].rhr, RelRef::Derived(2));
        assert_eq!(r[2].el, ExecLoc::Pqp);
        // R(4)-R(6) Retrieve BUSINESS/CORPORATION/FIRM at AD/PD/CD.
        for (i, (rel, db)) in [("BUSINESS", "AD"), ("CORPORATION", "PD"), ("FIRM", "CD")]
            .iter()
            .enumerate()
        {
            assert_eq!(r[3 + i].op, Op::Retrieve);
            assert_eq!(r[3 + i].lhr, RelRef::Named((*rel).into()));
            assert_eq!(r[3 + i].el, ExecLoc::Lqp((*db).into()));
        }
        // R(7) Merge R(4), R(5), R(6) … PQP
        assert_eq!(r[6].op, Op::Merge);
        assert_eq!(r[6].lhr, RelRef::DerivedList(vec![4, 5, 6]));
        assert_eq!(r[6].el, ExecLoc::Pqp);
        assert_eq!(r[6].scheme_ctx.as_deref(), Some("PORGANIZATION"));
        // R(8) Join R(3) ONAME = ONAME R(7) PQP
        assert_eq!(r[7].op, Op::Join);
        assert_eq!(r[7].lhr, RelRef::Derived(3));
        assert_eq!(r[7].lha, vec!["ONAME"]);
        assert_eq!(r[7].rha, Rha::Attr("ONAME".into()));
        assert_eq!(r[7].rhr, RelRef::Derived(7));
        // R(9) Restrict R(8) CEO = ANAME nil PQP
        assert_eq!(r[8].op, Op::Restrict);
        assert_eq!(r[8].lhr, RelRef::Derived(8));
        // R(10) Project R(9) ONAME, CEO … PQP
        assert_eq!(r[9].op, Op::Project);
        assert_eq!(r[9].lhr, RelRef::Derived(9));
        assert_eq!(r[9].lha, vec!["ONAME", "CEO"]);
        assert_eq!(iom.final_result(), Some(10));
    }

    #[test]
    fn both_sides_local_join_becomes_two_retrieves() {
        // §I's simpler query shape: PALUMNUS and PCAREER both map to AD
        // relations; the join itself must run at the PQP.
        let iom = interpret("PALUMNUS [AID# = AID#] PCAREER");
        assert_eq!(iom.cardinality(), 3);
        assert_eq!(iom.rows[0].op, Op::Retrieve);
        assert_eq!(iom.rows[0].lhr, RelRef::Named("CAREER".into()));
        assert_eq!(iom.rows[1].op, Op::Retrieve);
        assert_eq!(iom.rows[1].lhr, RelRef::Named("ALUMNUS".into()));
        assert_eq!(iom.rows[2].op, Op::Join);
        assert_eq!(iom.rows[2].lhr, RelRef::Derived(2));
        assert_eq!(iom.rows[2].rhr, RelRef::Derived(1));
        assert_eq!(iom.rows[2].el, ExecLoc::Pqp);
    }

    #[test]
    fn join_against_multi_source_rhs_with_local_lhs() {
        // §I's original query: join PORGANIZATION (multi) with PALUMNUS
        // (single) — pass one maps the left to ALUMNUS@AD, pass two must
        // retrieve it and merge the right.
        let iom = interpret("PALUMNUS [ANAME = CEO] PORGANIZATION");
        let ops: Vec<Op> = iom.rows.iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Retrieve, // BUSINESS
                Op::Retrieve, // CORPORATION
                Op::Retrieve, // FIRM
                Op::Merge,
                Op::Retrieve, // ALUMNUS (left side pulled to the PQP)
                Op::Join
            ]
        );
        let join = &iom.rows[5];
        assert_eq!(join.lhr, RelRef::Derived(5));
        assert_eq!(join.lha, vec!["ANAME"]);
        assert_eq!(join.rha, Rha::Attr("CEO".into()));
        assert_eq!(join.rhr, RelRef::Derived(4));
    }

    #[test]
    fn union_of_two_single_source_schemes() {
        let iom = interpret("PALUMNUS UNION PALUMNUS [DEGREE = \"MBA\"]");
        // Left PALUMNUS retrieved; right select pushed to AD.
        let ops: Vec<Op> = iom.rows.iter().map(|r| r.op).collect();
        assert_eq!(ops, vec![Op::Select, Op::Retrieve, Op::Union]);
        assert_eq!(iom.rows[2].el, ExecLoc::Pqp);
    }

    #[test]
    fn rha_localizes_for_raw_single_source_retrieves() {
        // Join against PALUMNUS on DEGREE: the raw ALUMNUS retrieve has
        // local names, so the RHA becomes DEG.
        let iom = interpret("(PCAREER [POSITION = \"CEO\"]) [POSITION = DEGREE] PALUMNUS");
        let join = iom.rows.last().unwrap();
        assert_eq!(join.rha, Rha::Attr("DEG".into()));
    }
}
