//! The two-pass Polygen Operation Interpreter (Figures 3 and 4).
//!
//! "For clarity, a two-pass Polygen Operation Interpreter, pass one
//! dealing with the left-hand side and pass two the right-hand side of
//! polygen operations, is presented" (§III). Pass one expands polygen
//! schemes on the left of each operation into local operations (single
//! local source) or Retrieve+Merge pipelines (multiple local sources);
//! pass two does the same for the right-hand side and fixes up rows whose
//! two operands live in different places.
//!
//! ## Documented deviations from the figures (see `EXPERIMENTS.md`)
//!
//! 1. The figures key the single/multi decision off `MAi` — the mapping of
//!    the *attribute* being operated on. We key it off the *scheme's*
//!    local-relation set, which coincides for every scheme in the paper
//!    (PALUMNUS/PCAREER/… are single-relation; PORGANIZATION is
//!    multi-relation) and avoids dropping merged attributes when a
//!    multi-source scheme is operated on through one of its
//!    single-source attributes (e.g. `PORGANIZATION[CEO = …]`).
//! 2. Raw single-source retrieves keep *local* attribute names — that is
//!    how the paper prints Table 5 (`BNAME`, `POS`) — so footnote 12's
//!    `PA()` "undo" is unnecessary: an operation on a retrieved raw
//!    relation uses the local names pass one already produced.
//! 3. Figure 4 does not handle a binary row whose left side was mapped to
//!    an LQP while the right side is an `R(#)`; we retrieve the left side
//!    and run the operation at the PQP (robustness extension).

pub mod pass_one;
pub mod pass_two;

pub use pass_one::pass_one;
pub use pass_two::pass_two;

use crate::error::PqpError;
use crate::iom::Iom;
use crate::pom::Pom;
use polygen_catalog::schema::PolygenSchema;

/// Run both passes: POM → half-processed matrix → IOM.
pub fn interpret(pom: &Pom, schema: &PolygenSchema) -> Result<(Iom, Iom), PqpError> {
    let half = pass_one(pom, schema)?;
    let iom = pass_two(&half, schema)?;
    Ok((half, iom))
}
