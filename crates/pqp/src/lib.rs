//! # polygen-pqp — the Polygen Query Processor
//!
//! Figure 2's pipeline, end to end:
//!
//! ```text
//! SQL ──lower──▶ algebra expression
//!      │ (polygen-sql)
//!      ▼
//! Syntax Analyzer ──▶ Polygen Operation Matrix        (Table 1)
//!      ▼
//! Interpreter pass one ──▶ half-processed IOM          (Table 2)
//!      ▼
//! Interpreter pass two ──▶ Intermediate Operation Matrix (Table 3)
//!      ▼
//! Query Optimizer ──▶ optimized IOM
//!      ▼
//! Physical-plan lowering ──▶ operator DAG: Scan leaves, fused
//!              Select/Restrict/Project pipelines, single-pass hash
//!              equi-joins, k-way hash Merge            ([`plan`])
//!      ▼
//! Executor ──▶ walks the physical plan, materializing only pipeline
//!              breakers; the eager row-by-row reference interpreter
//!              survives as `execute_eager`             (Tables 4–9)
//! ```
//!
//! Entry point: [`pqp::Pqp`]. `Pqp::for_scenario` wires the paper's MIT
//! federation; [`explain::explain`] renders the whole pipeline in the
//! paper's table notation.

pub mod analyzer;
pub mod costing;
pub mod error;
pub mod executor;
pub mod explain;
pub mod interpreter;
pub mod iom;
pub mod optimizer;
pub mod plan;
pub mod pom;
#[allow(clippy::module_inception)]
pub mod pqp;

/// Convenient glob import.
pub mod prelude {
    pub use crate::analyzer::analyze;
    pub use crate::costing::{estimate, estimate_physical, PlanCost};
    pub use crate::error::PqpError;
    pub use crate::executor::{
        execute, execute_eager, execute_plan, execute_plan_indexed, resolve_attr, ExecOptions,
        ExecutionTrace,
    };
    pub use crate::explain::{explain, render_analyzed_plan};
    pub use crate::interpreter::{interpret, pass_one, pass_two};
    pub use crate::iom::{render_iom, ExecLoc, Iom, IomRow};
    pub use crate::optimizer::{optimize, OptimizerReport};
    pub use crate::plan::{
        lower as lower_plan, render_plan, route_index_scans, LowerOptions, Partitioning, PhysNode,
        PhysOp, PhysicalPlan, Stage, StageKind,
    };
    pub use crate::pom::{render_pom, Op, Pom, PomRow, RelRef, Rha};
    pub use crate::pqp::{CompiledQuery, Pqp, PqpOptions, QueryOutcome};
}

pub use error::PqpError;
pub use pqp::{Pqp, PqpOptions, QueryOutcome};
