//! The Polygen Query Processor facade (Figure 2).
//!
//! Wires the pipeline together: SQL (or algebra text) → lowering → Syntax
//! Analyzer → POM → two-pass Polygen Operation Interpreter → IOM → Query
//! Optimizer → executor → tagged composite answer.

use crate::analyzer::analyze;
use crate::error::PqpError;
use crate::executor::{execute_plan_indexed, ExecOptions, ExecutionTrace};
use crate::interpreter::interpret;
use crate::iom::Iom;
use crate::optimizer::{optimize, OptimizerReport};
use crate::plan::{lower as lower_plan, LowerOptions, PhysicalPlan};
use crate::pom::Pom;
use polygen_catalog::dictionary::DataDictionary;
use polygen_catalog::scenario::Scenario;
use polygen_core::algebra::coalesce::ConflictPolicy;
use polygen_core::relation::PolygenRelation;
use polygen_index::IndexCatalog;
use polygen_lqp::registry::LqpRegistry;
use polygen_lqp::scenario_registry;
use polygen_obs::trace::Trace;
use polygen_sql::algebra_expr::{parse_algebra, AlgebraExpr};
use polygen_sql::lower::{lower, LoweringOptions};
use polygen_sql::parser::parse_query;
use std::sync::Arc;

/// PQP-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct PqpOptions {
    /// SQL lowering mode (paper vs strict range variables).
    pub lowering: LoweringOptions,
    /// Merge conflict policy.
    pub conflict_policy: ConflictPolicy,
    /// Run the Query Optimizer (off reproduces the paper's "Table 3 used
    /// as a query execution plan … without further optimization").
    pub optimize: bool,
    /// Retain every `R(n)` in the [`QueryOutcome`]'s trace. Off by
    /// default: production pipelines fuse stages and keep only the final
    /// relation; the golden-table reproduction switches this on to read
    /// Tables 4–9 out of the trace.
    pub retain_intermediates: bool,
    /// Worker threads for partition-parallel operators. `0` (the
    /// default) = auto: the `POLYGEN_THREADS` environment variable when
    /// set, otherwise [`std::thread::available_parallelism`]. `1` =
    /// exactly the sequential engine. Answers are identical on every
    /// setting — the plan annotations, EXPLAIN output and cost estimates
    /// reflect the chosen parallelism.
    pub threads: usize,
    /// Partition count for parallel operators (`0` = thread count; larger
    /// values over-partition to rebalance key-skewed loads).
    pub partitions: usize,
    /// Columnar batch execution for eligible pipelines. `None` = auto
    /// (the `POLYGEN_BATCH` environment variable, on unless set to
    /// `0`/`false`/`off`/`no`); `Some(_)` forces the batch or row
    /// engine. Answers are byte-identical on every setting.
    pub batch: Option<bool>,
}

impl Default for PqpOptions {
    fn default() -> Self {
        PqpOptions {
            lowering: LoweringOptions::default(),
            conflict_policy: ConflictPolicy::Strict,
            optimize: false,
            retain_intermediates: false,
            threads: 0,
            partitions: 0,
            batch: None,
        }
    }
}

impl PqpOptions {
    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style batch-engine override (`true` forces the columnar
    /// path, `false` forces the row engine).
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = Some(batch);
        self
    }
}

/// Everything the translation pipeline produced for one query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The algebra expression (parsed or lowered).
    pub expr: AlgebraExpr,
    /// Table-1-style operation matrix.
    pub pom: Pom,
    /// The half-processed matrix after pass one (Table 2).
    pub half: Iom,
    /// The full IOM after pass two (Table 3).
    pub iom: Iom,
    /// The optimizer's output (equal to `iom` when optimization is off).
    pub plan: Iom,
    /// What the optimizer changed.
    pub optimizer_report: OptimizerReport,
    /// The physical operator DAG lowered from `plan` — what actually
    /// executes (hash joins, k-way hash merge, fused pipelines).
    pub physical: PhysicalPlan,
}

/// One executed query: the answer plus every intermediate relation.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The compiled pipeline stages.
    pub compiled: CompiledQuery,
    /// The tagged composite answer.
    pub answer: PolygenRelation,
    /// Per-row intermediate relations (Tables 4–9 for the paper query).
    pub trace: ExecutionTrace,
}

/// The PQP.
pub struct Pqp {
    dictionary: Arc<DataDictionary>,
    registry: Arc<LqpRegistry>,
    options: PqpOptions,
    indexes: Option<Arc<IndexCatalog>>,
}

impl Pqp {
    /// Build a PQP over a dictionary and an LQP registry.
    pub fn new(dictionary: Arc<DataDictionary>, registry: Arc<LqpRegistry>) -> Self {
        Pqp {
            dictionary,
            registry,
            options: PqpOptions::default(),
            indexes: None,
        }
    }

    /// Stand up the paper's MIT scenario end to end.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let registry = Arc::new(scenario_registry(scenario));
        Pqp::new(Arc::new(scenario.dictionary.clone()), registry)
    }

    /// Override options.
    pub fn with_options(mut self, options: PqpOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a secondary-index catalog: [`Pqp::compile`] routes
    /// eligible Scan leaves onto it and [`Pqp::run_compiled`] probes it.
    /// The catalog must stay in sync with the registry's data — the
    /// serving layer guarantees this by owning both in one immutable
    /// snapshot; direct users rebuild the catalog when they swap LQPs.
    pub fn with_indexes(mut self, indexes: Arc<IndexCatalog>) -> Self {
        self.indexes = Some(indexes);
        self
    }

    /// The attached index catalog, if any.
    pub fn indexes(&self) -> Option<&Arc<IndexCatalog>> {
        self.indexes.as_ref()
    }

    /// The data dictionary.
    pub fn dictionary(&self) -> &DataDictionary {
        &self.dictionary
    }

    /// The LQP registry.
    pub fn registry(&self) -> &LqpRegistry {
        &self.registry
    }

    /// Current options.
    pub fn options(&self) -> PqpOptions {
        self.options
    }

    /// Translate SQL text into a polygen algebra expression using the
    /// polygen schema as the lowering resolver. The resolver borrows the
    /// dictionary's schema — no per-query clone of the whole
    /// `PolygenSchema` (this runs once per served query).
    pub fn translate_sql(&self, sql: &str) -> Result<AlgebraExpr, PqpError> {
        let query = parse_query(sql)?;
        let schema = self.dictionary.schema();
        let resolver = |rel: &str| -> Option<Vec<String>> {
            schema
                .scheme(rel)
                .map(|s| s.attr_names().map(str::to_string).collect())
        };
        Ok(lower(&query, &resolver, self.options.lowering)?)
    }

    /// Compile an algebra expression through POM, the two interpreter
    /// passes and the optimizer.
    pub fn compile(&self, expr: AlgebraExpr) -> Result<CompiledQuery, PqpError> {
        let pom = analyze(&expr)?;
        let (half, iom) = interpret(&pom, self.dictionary.schema())?;
        let (plan, optimizer_report) = if self.options.optimize {
            optimize(&iom, &self.registry, &self.dictionary)?
        } else {
            (iom.clone(), OptimizerReport::default())
        };
        let mut physical = lower_plan(
            &plan,
            &self.registry,
            &self.dictionary,
            LowerOptions {
                fuse: !self.options.retain_intermediates,
                partitions: polygen_core::stream::ParallelOptions::resolved(
                    self.options.threads,
                    self.options.partitions,
                )
                .partitions,
            },
        )?;
        // Index pushdown: swap eligible Scan leaves for probes. Skipped
        // in retention mode — the golden-table trace expects every
        // `R(n)` to materialize from full scans.
        if let Some(catalog) = &self.indexes {
            if !self.options.retain_intermediates {
                physical = crate::plan::route_index_scans(&physical, catalog);
            }
        }
        Ok(CompiledQuery {
            expr,
            pom,
            half,
            iom,
            plan,
            optimizer_report,
            physical,
        })
    }

    /// Execute a *borrowed* compiled query — the reusable-plan-handle
    /// entry point. A plan cache compiles once and replays the same
    /// `CompiledQuery` across sessions; the runtime thread/partition
    /// knobs come from the executing PQP's options, not from the plan
    /// (the lowered plan's partition annotations are presentation/costing
    /// metadata — the executor re-resolves parallelism per run), so one
    /// cached plan serves every concurrency level.
    pub fn run_compiled(
        &self,
        compiled: &CompiledQuery,
    ) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
        self.run_compiled_traced(compiled, &Trace::disabled())
    }

    /// [`Pqp::run_compiled`] with a span recorder attached: an enabled
    /// `trace` collects one span per physical node (rows out, kernel
    /// taken, partitions). Execution is byte-identical either way —
    /// spans observe, never steer.
    pub fn run_compiled_traced(
        &self,
        compiled: &CompiledQuery,
        trace: &Trace,
    ) -> Result<(PolygenRelation, ExecutionTrace), PqpError> {
        execute_plan_indexed(
            &compiled.physical,
            &self.registry,
            &self.dictionary,
            self.indexes.as_deref(),
            ExecOptions {
                conflict_policy: self.options.conflict_policy,
                retain_intermediates: self.options.retain_intermediates,
                threads: self.options.threads,
                partitions: self.options.partitions,
                batch: self.options.batch,
                trace: trace.clone(),
            },
        )
    }

    /// Execute a compiled query on the physical-plan engine.
    pub fn run(&self, compiled: CompiledQuery) -> Result<QueryOutcome, PqpError> {
        let (answer, trace) = self.run_compiled(&compiled)?;
        Ok(QueryOutcome {
            compiled,
            answer,
            trace,
        })
    }

    /// EXPLAIN ANALYZE a compiled query: execute it under an enabled
    /// trace and render the physical tree with the cost model's
    /// estimates beside the measured per-node actuals
    /// (`est=(µs, ~rows)  act=(µs, rows)` on every line).
    pub fn explain_analyze_compiled(&self, compiled: &CompiledQuery) -> Result<String, PqpError> {
        let trace = Trace::enabled();
        self.run_compiled_traced(compiled, &trace)?;
        let report = trace.report().unwrap_or_default();
        Ok(crate::explain::render_analyzed_plan(
            &compiled.physical,
            &self.registry,
            &report,
        ))
    }

    /// EXPLAIN ANALYZE for SQL text (compile, execute traced, render).
    pub fn explain_analyze(&self, sql: &str) -> Result<String, PqpError> {
        let compiled = self.compile(self.translate_sql(sql)?)?;
        self.explain_analyze_compiled(&compiled)
    }

    /// SQL in, tagged composite answer out.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome, PqpError> {
        let expr = self.translate_sql(sql)?;
        self.run(self.compile(expr)?)
    }

    /// Algebra-expression text in, tagged composite answer out.
    pub fn query_algebra(&self, text: &str) -> Result<QueryOutcome, PqpError> {
        let expr = parse_algebra(text)?;
        self.run(self.compile(expr)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_catalog::scenario;
    use polygen_flat::value::Value;
    use polygen_sql::algebra_expr::PAPER_EXPRESSION;

    const PAPER_SQL: &str = "SELECT ONAME, CEO \
        FROM PORGANIZATION, PALUMNUS \
        WHERE CEO = ANAME AND ONAME IN \
        (SELECT ONAME FROM PCAREER WHERE AID# IN \
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"MBA\"))";

    #[test]
    fn sql_and_algebra_paths_agree() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let via_sql = pqp.query(PAPER_SQL).unwrap();
        let via_algebra = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        assert!(via_sql.answer.tagged_set_eq(&via_algebra.answer));
        assert_eq!(via_sql.compiled.pom, via_algebra.compiled.pom);
    }

    #[test]
    fn optimizing_pqp_returns_same_answer() {
        let s = scenario::build();
        let naive = Pqp::for_scenario(&s);
        let opt = Pqp::for_scenario(&s).with_options(PqpOptions {
            optimize: true,
            ..PqpOptions::default()
        });
        let a = naive.query(PAPER_SQL).unwrap();
        let b = opt.query(PAPER_SQL).unwrap();
        assert!(a.answer.tagged_set_eq(&b.answer));
    }

    #[test]
    fn outcome_exposes_pipeline_stages() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        assert_eq!(out.compiled.pom.cardinality(), 5);
        assert_eq!(out.compiled.half.cardinality(), 5);
        assert_eq!(out.compiled.iom.cardinality(), 10);
        assert_eq!(out.answer.len(), 3);
        // Production default: fused physical plan, final-only trace.
        assert!(out.compiled.physical.fused_rows() > 0);
        assert_eq!(out.trace.results.len(), 1);
    }

    #[test]
    fn retained_outcome_exposes_full_trace() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s).with_options(PqpOptions {
            retain_intermediates: true,
            ..PqpOptions::default()
        });
        let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        assert_eq!(out.trace.results.len(), 10);
        assert_eq!(
            out.compiled.physical.fused_rows(),
            0,
            "retention disables fusion"
        );
        assert!(out.trace.result(10).unwrap().tagged_set_eq(&out.answer));
    }

    #[test]
    fn thread_knob_keeps_answers_identical_and_annotates_plans() {
        let s = scenario::build();
        let sequential = Pqp::for_scenario(&s).with_options(PqpOptions::default().with_threads(1));
        let a = sequential.query_algebra(PAPER_EXPRESSION).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel =
                Pqp::for_scenario(&s).with_options(PqpOptions::default().with_threads(threads));
            let b = parallel.query_algebra(PAPER_EXPRESSION).unwrap();
            assert!(
                a.answer.tagged_set_eq(&b.answer),
                "threads = {threads} changed the answer"
            );
            let shown = crate::plan::render_plan(&b.compiled.physical);
            assert!(
                shown.contains(&format!("[hash(ONAME) x{threads}]")),
                "{shown}"
            );
        }
        let shown = crate::plan::render_plan(&a.compiled.physical);
        assert!(!shown.contains("[hash("), "1 thread stays serial: {shown}");
    }

    #[test]
    fn indexed_pqp_routes_and_matches_unindexed_byte_for_byte() {
        use polygen_index::{IndexCatalog, IndexSpec};
        use std::sync::Arc;
        let s = scenario::build();
        let plain = Pqp::for_scenario(&s);
        let catalog = Arc::new(
            IndexCatalog::build(
                &[
                    IndexSpec::hash("AD", "ALUMNUS", "DEG"),
                    IndexSpec::sorted("AD", "ALUMNUS", "AID#"),
                ],
                plain.registry(),
                plain.dictionary(),
            )
            .unwrap(),
        );
        for threads in [1usize, 4] {
            let indexed = Pqp::for_scenario(&s)
                .with_options(PqpOptions::default().with_threads(threads))
                .with_indexes(Arc::clone(&catalog));
            for expr in [
                PAPER_EXPRESSION,
                "PALUMNUS [DEGREE = \"MBA\"] [AID#, ANAME]",
                "PALUMNUS [AID# >= \"200\"] [AID# <= \"600\"]",
                "PALUMNUS [DEGREE <> \"MBA\"]",
            ] {
                let a = plain.query_algebra(expr).unwrap();
                let b = indexed.query_algebra(expr).unwrap();
                assert_eq!(
                    a.answer.tuples(),
                    b.answer.tuples(),
                    "indexed execution diverged on `{expr}` (threads = {threads})"
                );
            }
            // The selective queries actually routed.
            let routed = indexed
                .compile(parse_algebra("PALUMNUS [DEGREE = \"MBA\"]").unwrap())
                .unwrap();
            assert_eq!(routed.physical.index_scans(), 1);
        }
        // Retention mode (golden tables) never routes.
        let retained = Pqp::for_scenario(&s)
            .with_options(PqpOptions {
                retain_intermediates: true,
                ..PqpOptions::default()
            })
            .with_indexes(Arc::clone(&catalog));
        let out = retained.query_algebra(PAPER_EXPRESSION).unwrap();
        assert_eq!(out.compiled.physical.index_scans(), 0);
        assert_eq!(out.trace.results.len(), 10);
    }

    #[test]
    fn routed_plan_without_catalog_fails_loudly() {
        use polygen_index::{IndexCatalog, IndexSpec};
        use std::sync::Arc;
        let s = scenario::build();
        let indexed = Pqp::for_scenario(&s).with_indexes(Arc::new(
            IndexCatalog::build(
                &[IndexSpec::hash("AD", "ALUMNUS", "DEG")],
                Pqp::for_scenario(&s).registry(),
                &s.dictionary,
            )
            .unwrap(),
        ));
        let compiled = indexed
            .compile(parse_algebra("PALUMNUS [DEGREE = \"MBA\"]").unwrap())
            .unwrap();
        assert_eq!(compiled.physical.index_scans(), 1);
        // Executing the routed plan on a catalog-less PQP must not
        // silently fall back to scanning.
        let bare = Pqp::for_scenario(&s);
        let err = bare.run_compiled(&compiled).unwrap_err();
        assert!(err.to_string().contains("index"), "{err}");
    }

    #[test]
    fn answer_has_paper_tags() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        let out = pqp.query_algebra(PAPER_EXPRESSION).unwrap();
        let reg = pqp.dictionary().registry();
        let (ad, pd, cd) = (
            reg.lookup("AD").unwrap(),
            reg.lookup("PD").unwrap(),
            reg.lookup("CD").unwrap(),
        );
        // Genentech, {AD, CD}, {AD, CD}
        let g = out
            .answer
            .cell("ONAME", &Value::str("Genentech"), "ONAME")
            .unwrap();
        assert!(g.origin.contains(ad) && g.origin.contains(cd) && !g.origin.contains(pd));
        assert!(g.intermediate.contains(ad) && g.intermediate.contains(cd));
        // Bob Swanson, {CD}, {AD, CD}
        let bs = out
            .answer
            .cell("ONAME", &Value::str("Genentech"), "CEO")
            .unwrap();
        assert_eq!(bs.datum, Value::str("Bob Swanson"));
        assert!(bs.origin.contains(cd) && !bs.origin.contains(ad));
        assert!(bs.intermediate.contains(ad) && bs.intermediate.contains(cd));
    }

    #[test]
    fn errors_propagate() {
        let s = scenario::build();
        let pqp = Pqp::for_scenario(&s);
        assert!(pqp.query("SELECT").is_err());
        assert!(pqp.query("SELECT X FROM NOPE").is_err());
        assert!(pqp.query_algebra("NOPE [X = 1]").is_err());
    }
}
