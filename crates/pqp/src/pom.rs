//! The Polygen Operation Matrix (POM) — Table 1's data structure.
//!
//! "The Syntax Analyzer parses a polygen algebraic expression and
//! generates a Polygen Operation Matrix" (§III). Each row is one polygen
//! operation: a result id `R(n)`, the operator, a Left-Hand Relation, a
//! Left-Hand Attribute (list, for Project), the θ relation, a Right-Hand
//! Attribute (or constant), and a Right-Hand Relation.

use polygen_flat::value::{Cmp, Value};
use std::fmt;

/// The operator of one POM/IOM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `p[x θ const]`
    Select,
    /// `p[x θ y]`
    Restrict,
    /// `p1 [x θ y] p2`
    Join,
    /// `p[X]`
    Project,
    /// `p1 ∪ p2`
    Union,
    /// `p1 − p2`
    Difference,
    /// `p1 × p2`
    Product,
    /// `p1 ∩ p2`
    Intersect,
    /// `p1 ⊲ [x = y] p2` (extension; lowering target of `NOT IN`)
    AntiJoin,
    /// Fetch a local relation to the PQP (appears in IOMs only).
    Retrieve,
    /// Merge ≥2 retrieved relations of a multi-source scheme (IOMs only).
    Merge,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Select => "Select",
            Op::Restrict => "Restrict",
            Op::Join => "Join",
            Op::Project => "Project",
            Op::Union => "Union",
            Op::Difference => "Difference",
            Op::Product => "Product",
            Op::Intersect => "Intersect",
            Op::AntiJoin => "AntiJoin",
            Op::Retrieve => "Retrieve",
            Op::Merge => "Merge",
        };
        f.write_str(s)
    }
}

/// A relation operand of a POM/IOM row.
#[derive(Debug, Clone, PartialEq)]
pub enum RelRef {
    /// A named relation: a polygen scheme in POMs; a local scheme in IOM
    /// rows executed at an LQP.
    Named(String),
    /// `R(n)` — the result of row `n`.
    Derived(usize),
    /// `{R(i), …, R(j)}` — Merge inputs.
    DerivedList(Vec<usize>),
    /// nil.
    Nil,
}

impl fmt::Display for RelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelRef::Named(n) => write!(f, "{n}"),
            RelRef::Derived(i) => write!(f, "R({i})"),
            RelRef::DerivedList(ids) => {
                for (k, i) in ids.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "R({i})")?;
                }
                Ok(())
            }
            RelRef::Nil => write!(f, "nil"),
        }
    }
}

/// The RHA column: an attribute, a constant, or nil.
#[derive(Debug, Clone, PartialEq)]
pub enum Rha {
    /// An attribute name.
    Attr(String),
    /// A constant (Select rows; Table 1 prints `"MBA"`).
    Const(Value),
    /// nil.
    Nil,
}

impl fmt::Display for Rha {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rha::Attr(a) => write!(f, "{a}"),
            Rha::Const(Value::Str(s)) => write!(f, "\"{s}\""),
            Rha::Const(v) => write!(f, "{v}"),
            Rha::Nil => write!(f, "nil"),
        }
    }
}

/// One row of the Polygen Operation Matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PomRow {
    /// Result id: `R(pr)`.
    pub pr: usize,
    /// The operator.
    pub op: Op,
    /// Left-hand relation.
    pub lhr: RelRef,
    /// Left-hand attribute(s) — a list only for Project.
    pub lha: Vec<String>,
    /// θ (None for Project and set operators).
    pub theta: Option<Cmp>,
    /// Right-hand attribute or constant.
    pub rha: Rha,
    /// Right-hand relation.
    pub rhr: RelRef,
}

/// The Polygen Operation Matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pom {
    /// Rows in execution order; row `i` defines `R(i+1)`.
    pub rows: Vec<PomRow>,
}

impl Pom {
    /// Number of rows (the paper's `Cardinality(POM)`).
    pub fn cardinality(&self) -> usize {
        self.rows.len()
    }

    /// The result id of the final row — the query answer.
    pub fn final_result(&self) -> Option<usize> {
        self.rows.last().map(|r| r.pr)
    }
}

/// Render rows Table-1 style: `PR | OP | LHR | LHA | θ | RHA | RHR`.
pub fn render_pom(pom: &Pom) -> String {
    let headers = ["PR", "OP", "LHR", "LHA", "θ", "RHA", "RHR"];
    let body: Vec<[String; 7]> = pom
        .rows
        .iter()
        .map(|r| {
            [
                format!("R({})", r.pr),
                r.op.to_string(),
                r.lhr.to_string(),
                if r.lha.is_empty() {
                    "nil".to_string()
                } else {
                    r.lha.join(", ")
                },
                r.theta.map_or("nil".to_string(), |c| c.to_string()),
                r.rha.to_string(),
                r.rhr.to_string(),
            ]
        })
        .collect();
    render_table(&headers, &body)
}

pub(crate) fn render_table<const N: usize>(headers: &[&str; N], body: &[[String; N]]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, " {:w$} |", c, w = widths[i]);
        }
        out.push('\n');
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    emit(&mut out, &hdr);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{:-<w$}|", "", w = w + 2);
    }
    out.push('\n');
    for row in body {
        emit(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relref_display() {
        assert_eq!(RelRef::Named("PALUMNUS".into()).to_string(), "PALUMNUS");
        assert_eq!(RelRef::Derived(3).to_string(), "R(3)");
        assert_eq!(
            RelRef::DerivedList(vec![4, 5, 6]).to_string(),
            "R(4), R(5), R(6)"
        );
        assert_eq!(RelRef::Nil.to_string(), "nil");
    }

    #[test]
    fn rha_display_quotes_strings() {
        assert_eq!(Rha::Const(Value::str("MBA")).to_string(), "\"MBA\"");
        assert_eq!(Rha::Const(Value::int(1989)).to_string(), "1989");
        assert_eq!(Rha::Attr("ANAME".into()).to_string(), "ANAME");
        assert_eq!(Rha::Nil.to_string(), "nil");
    }

    #[test]
    fn render_contains_table1_shape() {
        let pom = Pom {
            rows: vec![PomRow {
                pr: 1,
                op: Op::Select,
                lhr: RelRef::Named("PALUMNUS".into()),
                lha: vec!["DEGREE".into()],
                theta: Some(Cmp::Eq),
                rha: Rha::Const(Value::str("MBA")),
                rhr: RelRef::Nil,
            }],
        };
        let shown = render_pom(&pom);
        assert!(shown.contains("R(1)"));
        assert!(shown.contains("Select"));
        assert!(shown.contains("\"MBA\""));
        assert_eq!(pom.cardinality(), 1);
        assert_eq!(pom.final_result(), Some(1));
    }
}
