//! # polygen-serve — the mediator as a service
//!
//! The paper's CIS workstation answers one query for one user. This
//! crate turns it into what the architecture was drawn for: a mediator
//! *service* that many sessions query concurrently, amortizing work
//! across users. Three ideas carry the design:
//!
//! * [`snapshot`] — an immutable [`snapshot::FederationSnapshot`]
//!   (`Arc`-shared dictionary + LQP registry) with a per-source version
//!   vector; updating a source swaps in a successor snapshot and bumps
//!   one version. Sessions never deep-clone federation state.
//! * [`cache`] — a plan cache keyed on canonical query text (compile
//!   once, replay everywhere) and a tagged-result cache keyed on
//!   `(plan fingerprint × the versions of exactly the sources the plan
//!   reads)`. Because the polygen model makes provenance *data* —
//!   origin and intermediate tags ride in every cell, deterministically
//!   — a cached answer is byte-identical to a cold re-execution, and a
//!   version bump invalidates precisely the answers that read the
//!   updated source.
//! * [`request`] — the transport-agnostic envelope:
//!   [`request::Request`] (text + language + options) in,
//!   [`request::Response`] (`Rows` / `Explain` / `Empty` / `Error` with
//!   a stable numeric [`request::ErrorCode`]) out — the same shape
//!   served in-process, over the `polygen-net` wire, and by the
//!   examples.
//! * [`service`] — sessions, admission control (bounded concurrency +
//!   bounded queue + load shedding), and a shared thread budget: each
//!   admitted query gets `max(1, budget / active)` workers for its
//!   partition-parallel operators, so inter- and intra-query
//!   parallelism spend one pool. [`metrics`] counts hits, latencies and
//!   peaks.
//! * [`sys`] — the mediator as its own tagged source: six `sys.*`
//!   polygen schemes (slow queries, live sessions, windowed stats,
//!   sources, caches, indexes) materialized from live service state at
//!   query admission and answered through the ordinary front doors,
//!   every row origin-tagged `sys`.
//!
//! The differential guarantee the property suite
//! (`tests/properties_service.rs`) locks down: with caches on and N
//! concurrent sessions, every answer — data, origin tags, intermediate
//! tags — is byte-identical to single-client, cache-off execution,
//! including across a mid-run source update.

pub mod cache;
pub mod metrics;
pub mod request;
pub mod service;
pub mod snapshot;
pub mod sys;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cache::{PlanCache, PlanEntry, ResultCache, ResultKey};
    pub use crate::metrics::{MetricsSnapshot, ServiceMetrics};
    pub use crate::request::{
        ErrorCode, ExplainOptions, Lang, Request, RequestOptions, Response, ResponseInfo,
    };
    pub use crate::service::{QueryService, ServeError, ServeOptions, ServeOutcome, Session};
    pub use crate::snapshot::{Federation, FederationSnapshot, VersionVector};
    pub use crate::sys::{SysCatalog, SYS_DB};
    pub use polygen_index::{IndexCatalog, IndexKind, IndexSpec};
    pub use polygen_obs::prelude::*;
}

pub use request::{ErrorCode, ExplainOptions, Lang, Request, Response};
pub use service::{QueryService, ServeOptions};
pub use snapshot::{Federation, FederationSnapshot};
