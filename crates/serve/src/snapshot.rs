//! Immutable federation snapshots with per-source versioning.
//!
//! Every query in the service executes against a [`FederationSnapshot`]:
//! an `Arc`-shared data dictionary plus an `Arc`-shared LQP registry,
//! stamped with a *version vector* — one monotone counter per local
//! database. Sessions never deep-clone catalog or source state; opening
//! a snapshot is two `Arc` clones, and a query holds its snapshot alive
//! for exactly as long as it runs, so a concurrent source update can
//! never mutate state out from under an executing plan.
//!
//! The mutable head lives in [`Federation`]: updating a source builds a
//! *new* snapshot (re-pointing every unchanged LQP by `Arc`, swapping
//! the updated one in) and bumps that source's version. Old snapshots
//! stay valid for in-flight queries; the version bump is what makes the
//! result cache's `(plan fingerprint × version vector)` keys precise —
//! a cached tagged answer is served only while every source it was
//! computed from is still at the version it was read at.

use polygen_catalog::dictionary::DataDictionary;
use polygen_catalog::scenario::Scenario;
use polygen_flat::relation::Relation;
use polygen_index::{IndexCatalog, IndexError, IndexSpec};
use polygen_lqp::engine::Lqp;
use polygen_lqp::memory::InMemoryLqp;
use polygen_lqp::registry::LqpRegistry;
use polygen_lqp::scenario_registry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

/// A sorted `(source, version)` list — the slice of federation state a
/// cached result depends on. Sorted so equal dependency sets compare and
/// hash equal regardless of plan shape.
pub type VersionVector = Vec<(String, u64)>;

/// One immutable view of the federation.
#[derive(Clone)]
pub struct FederationSnapshot {
    dictionary: Arc<DataDictionary>,
    registry: Arc<LqpRegistry>,
    /// Secondary indexes over this snapshot's source data. Immutable
    /// like everything else here: queries pin the catalog with the
    /// snapshot, and a source update derives a successor catalog
    /// rebuilding only the bumped source's indexes.
    indexes: Arc<IndexCatalog>,
    /// Bumped on every *re-declaration* of the index set (never on
    /// source updates — those bump versions). A cached plan records the
    /// epoch it was routed under; a hit is only served when it matches,
    /// which closes the race where a compile against the pre-declare
    /// catalog re-inserts (after the declare-time cache purge) a plan
    /// routed through an index the new catalog dropped.
    index_epoch: u64,
    versions: BTreeMap<String, u64>,
    epoch: u64,
}

impl FederationSnapshot {
    /// Wrap shared federation state; every source starts at version 0.
    pub fn from_parts(dictionary: Arc<DataDictionary>, registry: Arc<LqpRegistry>) -> Self {
        let versions = registry.names().into_iter().map(|n| (n, 0)).collect();
        FederationSnapshot {
            dictionary,
            registry,
            indexes: Arc::new(IndexCatalog::empty()),
            index_epoch: 0,
            versions,
            epoch: 0,
        }
    }

    /// Stand up a scenario (the paper's MIT databases or a synthetic
    /// federation) as the initial snapshot. The dictionary is cloned
    /// once, here — never again per session or per query.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        let registry = Arc::new(scenario_registry(scenario));
        Self::from_parts(Arc::new(scenario.dictionary.clone()), registry)
    }

    /// The shared data dictionary.
    pub fn dictionary(&self) -> &Arc<DataDictionary> {
        &self.dictionary
    }

    /// The shared LQP registry.
    pub fn registry(&self) -> &Arc<LqpRegistry> {
        &self.registry
    }

    /// The snapshot's secondary-index catalog (empty unless declared).
    pub fn indexes(&self) -> &Arc<IndexCatalog> {
        &self.indexes
    }

    /// The index-declaration epoch (see the field docs): stamped into
    /// cached plans and re-validated at plan-cache hit time.
    pub fn index_epoch(&self) -> u64 {
        self.index_epoch
    }

    /// Declare (replacing any previous declarations) the snapshot's
    /// secondary indexes, building them against this snapshot's data.
    /// Versions and epoch are untouched — indexes are derived state, so
    /// declaring them invalidates no cached *answers* — but the index
    /// epoch bumps so cached *plans* routed against the previous
    /// catalog can never be served against this one.
    pub fn with_indexes(mut self, specs: &[IndexSpec]) -> Result<Self, IndexError> {
        self.indexes = Arc::new(IndexCatalog::build(
            specs,
            &self.registry,
            &self.dictionary,
        )?);
        self.index_epoch += 1;
        Ok(self)
    }

    /// The snapshot's global epoch (bumped once per update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A source's current version (0 for sources never updated; also 0
    /// for unknown names, which therefore never spuriously invalidate).
    pub fn version_of(&self, source: &str) -> u64 {
        self.versions.get(source).copied().unwrap_or(0)
    }

    /// The version vector restricted to `sources` — the dependency stamp
    /// for a plan that reads exactly those local databases.
    pub fn version_vector(&self, sources: &BTreeSet<String>) -> VersionVector {
        sources
            .iter()
            .map(|s| (s.clone(), self.version_of(s)))
            .collect()
    }

    /// Derive the successor snapshot with `lqp` replacing (or joining)
    /// the registry under its own name, and its version bumped. Only
    /// the updated source's secondary indexes are rebuilt (against the
    /// successor registry); every other source's are re-pointed by
    /// `Arc`, exactly like the unchanged LQPs.
    fn with_updated_source(&self, lqp: Arc<dyn Lqp>) -> FederationSnapshot {
        let name = lqp.name().to_string();
        let registry = LqpRegistry::new();
        for existing in self.registry.names() {
            if existing != name {
                if let Some(l) = self.registry.get(&existing) {
                    registry.register(l);
                }
            }
        }
        registry.register(lqp);
        let registry = Arc::new(registry);
        let indexes = if self.indexes.is_empty() {
            Arc::clone(&self.indexes)
        } else {
            Arc::new(
                self.indexes
                    .rebuilt_for_source(&name, &registry, &self.dictionary),
            )
        };
        let mut versions = self.versions.clone();
        *versions.entry(name).or_insert(0) += 1;
        FederationSnapshot {
            dictionary: Arc::clone(&self.dictionary),
            registry,
            indexes,
            // Same declaration set, maintained — not a re-declaration.
            // The version bump is what guards cached plans here.
            index_epoch: self.index_epoch,
            versions,
            epoch: self.epoch + 1,
        }
    }

    /// Derive a successor with `lqp` joining (or replacing) the registry
    /// under its own name at exactly `version`, and the dictionary
    /// swapped for `dictionary`. Unlike a source *update* this is not a
    /// data refresh: secondary indexes are re-pointed untouched, the
    /// global epoch does not move, and the caller picks the version.
    /// These are the hooks a *virtual* source needs — one whose
    /// relations the mediator itself materializes rather than an
    /// upstream owning. The serving layer uses this twice for its `sys`
    /// catalog: once at construction (schema-bearing empty placeholder,
    /// version 0, dictionary extended with the `sys` schemas, published
    /// to the head) and then ephemerally per query that reads `sys.*`
    /// (live rows under a monotone version, never published — the
    /// spliced snapshot lives exactly as long as the query executes).
    pub fn with_virtual_source(
        &self,
        lqp: Arc<dyn Lqp>,
        dictionary: Arc<DataDictionary>,
        version: u64,
    ) -> FederationSnapshot {
        let name = lqp.name().to_string();
        let registry = LqpRegistry::new();
        for existing in self.registry.names() {
            if existing != name {
                if let Some(l) = self.registry.get(&existing) {
                    registry.register(l);
                }
            }
        }
        registry.register(lqp);
        let mut versions = self.versions.clone();
        versions.insert(name, version);
        FederationSnapshot {
            dictionary,
            registry: Arc::new(registry),
            indexes: Arc::clone(&self.indexes),
            index_epoch: self.index_epoch,
            versions,
            epoch: self.epoch,
        }
    }
}

/// The mutable head: an atomically swappable [`FederationSnapshot`].
pub struct Federation {
    head: RwLock<Arc<FederationSnapshot>>,
}

impl Federation {
    /// Start from an initial snapshot.
    pub fn new(snapshot: FederationSnapshot) -> Self {
        Federation {
            head: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// Start from a scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self::new(FederationSnapshot::from_scenario(scenario))
    }

    /// The current snapshot — O(1), two pointer copies under a read
    /// lock. Queries pin the snapshot they start on.
    pub fn snapshot(&self) -> Arc<FederationSnapshot> {
        Arc::clone(&self.head.read().expect("federation head poisoned"))
    }

    /// Replace (or add) a source's LQP, bumping its version. Returns the
    /// source's new version. In-flight queries keep executing against
    /// the snapshot they pinned; queries admitted after the swap see the
    /// new data.
    ///
    /// The successor — including any secondary-index rebuild, which
    /// sweeps the updated source — is built *outside* the head lock, so
    /// concurrent query admission never stalls behind a rebuild; the
    /// write lock covers only the pointer swap. A racing writer is
    /// detected by pointer identity and the build retried against the
    /// newer head, so no update is ever lost.
    pub fn update_source(&self, lqp: Arc<dyn Lqp>) -> u64 {
        let name = lqp.name().to_string();
        loop {
            let base = self.snapshot();
            let next = base.with_updated_source(Arc::clone(&lqp));
            let version = next.version_of(&name);
            let mut head = self.head.write().expect("federation head poisoned");
            if Arc::ptr_eq(&*head, &base) {
                *head = Arc::new(next);
                return version;
            }
            // Another writer swapped the head mid-build; rebuild on top
            // of their snapshot so neither update is lost.
        }
    }

    /// Convenience: swap a source's relations wholesale through a fresh
    /// in-memory LQP (how the demo and tests model an upstream refresh).
    pub fn update_source_relations(&self, name: &str, relations: Vec<Relation>) -> u64 {
        self.update_source(Arc::new(InMemoryLqp::new(name, relations)))
    }

    /// Declare the federation's secondary indexes: the head snapshot is
    /// replaced by one carrying a catalog built against current data
    /// (versions and epoch unchanged — answers never depend on routing —
    /// but the *index epoch* bumps, which is what lets a plan cache
    /// refuse entries routed against a previous catalog). Subsequent
    /// source updates maintain the declared indexes automatically,
    /// source by source. Like [`Federation::update_source`], the builds
    /// run outside the head lock with a pointer-identity retry.
    pub fn declare_indexes(&self, specs: &[IndexSpec]) -> Result<(), IndexError> {
        loop {
            let base = self.snapshot();
            let next = base.as_ref().clone().with_indexes(specs)?;
            let mut head = self.head.write().expect("federation head poisoned");
            if Arc::ptr_eq(&*head, &base) {
                *head = Arc::new(next);
                return Ok(());
            }
        }
    }

    /// Publish a virtual source at the head (see
    /// [`FederationSnapshot::with_virtual_source`]): same build-outside,
    /// pointer-identity-retry swap as [`Federation::update_source`], but
    /// no version bump, no epoch move, no index rebuild. The serving
    /// layer calls this once at construction to register the `sys`
    /// catalog's schemas and schema-bearing empty placeholder.
    pub fn install_virtual_source(
        &self,
        lqp: Arc<dyn Lqp>,
        dictionary: Arc<DataDictionary>,
        version: u64,
    ) {
        loop {
            let base = self.snapshot();
            let next = base.with_virtual_source(Arc::clone(&lqp), Arc::clone(&dictionary), version);
            let mut head = self.head.write().expect("federation head poisoned");
            if Arc::ptr_eq(&*head, &base) {
                *head = Arc::new(next);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_catalog::scenario;

    #[test]
    fn snapshot_shares_state_and_versions_start_at_zero() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        let snap = fed.snapshot();
        assert_eq!(snap.epoch(), 0);
        for db in ["AD", "PD", "CD"] {
            assert_eq!(snap.version_of(db), 0);
        }
        // Snapshot acquisition is Arc sharing, not copying.
        let again = fed.snapshot();
        assert!(Arc::ptr_eq(snap.registry(), again.registry()));
        assert!(Arc::ptr_eq(snap.dictionary(), again.dictionary()));
    }

    #[test]
    fn update_bumps_only_the_touched_source() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        let before = fed.snapshot();
        let cd = s.database("CD").unwrap();
        let v = fed.update_source_relations("CD", cd.relations.clone());
        assert_eq!(v, 1);
        let after = fed.snapshot();
        assert_eq!(after.version_of("CD"), 1);
        assert_eq!(after.version_of("AD"), 0);
        assert_eq!(after.epoch(), 1);
        // The pinned snapshot is untouched.
        assert_eq!(before.version_of("CD"), 0);
        // Unchanged LQPs are the same objects, re-pointed.
        let ad_before = before.registry().get("AD").unwrap();
        let ad_after = after.registry().get("AD").unwrap();
        assert!(Arc::ptr_eq(&ad_before, &ad_after));
        let cd_before = before.registry().get("CD").unwrap();
        let cd_after = after.registry().get("CD").unwrap();
        assert!(!Arc::ptr_eq(&cd_before, &cd_after));
    }

    #[test]
    fn update_rebuilds_only_the_touched_sources_indexes() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        fed.declare_indexes(&[
            IndexSpec::hash("AD", "ALUMNUS", "DEG"),
            IndexSpec::sorted("CD", "FIRM", "FNAME"),
        ])
        .unwrap();
        let before = fed.snapshot();
        assert_eq!(before.indexes().len(), 2);
        assert_eq!(before.epoch(), 0, "declaring indexes bumps nothing");
        let cd = s.database("CD").unwrap();
        fed.update_source_relations("CD", cd.relations.clone());
        let after = fed.snapshot();
        assert_eq!(after.indexes().len(), 2);
        let ad_before = before.indexes().lookup("AD", "ALUMNUS", "DEG").unwrap();
        let ad_after = after.indexes().lookup("AD", "ALUMNUS", "DEG").unwrap();
        assert!(Arc::ptr_eq(ad_before, ad_after), "AD index re-pointed");
        let cd_before = before.indexes().lookup("CD", "FIRM", "FNAME").unwrap();
        let cd_after = after.indexes().lookup("CD", "FIRM", "FNAME").unwrap();
        assert!(!Arc::ptr_eq(cd_before, cd_after), "CD index rebuilt");
        // The pinned snapshot still serves its own catalog.
        assert_eq!(before.indexes().len(), 2);
        // Unknown specs fail loudly at declaration.
        assert!(fed
            .declare_indexes(&[IndexSpec::hash("XX", "T", "C")])
            .is_err());
    }

    #[test]
    fn index_epoch_bumps_on_redeclaration_only() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        assert_eq!(fed.snapshot().index_epoch(), 0);
        fed.declare_indexes(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        assert_eq!(fed.snapshot().index_epoch(), 1);
        // A source update maintains indexes but is NOT a re-declaration:
        // the version bump already guards cached plans, and bumping the
        // index epoch here would needlessly refuse plans for untouched
        // sources.
        let ad = s.database("AD").unwrap();
        fed.update_source_relations("AD", ad.relations.clone());
        assert_eq!(fed.snapshot().index_epoch(), 1);
        assert_eq!(fed.snapshot().version_of("AD"), 1);
        // Re-declaring (even the same set) bumps, so a plan compiled
        // against the old catalog and re-inserted behind the declare-
        // time purge can never validate against the new snapshot.
        fed.declare_indexes(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        assert_eq!(fed.snapshot().index_epoch(), 2);
    }

    #[test]
    fn virtual_source_splice_moves_nothing_else() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        fed.declare_indexes(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        let base = fed.snapshot();
        let lqp: Arc<dyn Lqp> = Arc::new(InMemoryLqp::new("virt", Vec::new()));
        // Ephemeral splice: base is untouched, successor differs only
        // in registry membership and the virtual source's version.
        let spliced = base.with_virtual_source(Arc::clone(&lqp), Arc::clone(base.dictionary()), 7);
        assert_eq!(spliced.version_of("virt"), 7);
        assert_eq!(spliced.epoch(), base.epoch());
        assert_eq!(spliced.index_epoch(), base.index_epoch());
        assert!(Arc::ptr_eq(spliced.indexes(), base.indexes()));
        assert!(Arc::ptr_eq(spliced.dictionary(), base.dictionary()));
        let ad_base = base.registry().get("AD").unwrap();
        let ad_spliced = spliced.registry().get("AD").unwrap();
        assert!(Arc::ptr_eq(&ad_base, &ad_spliced), "real LQPs re-pointed");
        assert!(base.registry().get("virt").is_none(), "head untouched");
        // Published splice: the head now carries the virtual source at
        // the pinned version, and a later real-source update preserves
        // it (with_updated_source re-points every registered LQP).
        fed.install_virtual_source(lqp, Arc::clone(base.dictionary()), 0);
        assert_eq!(fed.snapshot().version_of("virt"), 0);
        assert!(fed.snapshot().registry().get("virt").is_some());
        let ad = s.database("AD").unwrap();
        fed.update_source_relations("AD", ad.relations.clone());
        let after = fed.snapshot();
        assert!(after.registry().get("virt").is_some());
        assert_eq!(after.version_of("virt"), 0, "updates leave virt at 0");
    }

    #[test]
    fn version_vector_is_sorted_and_restricted() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        fed.update_source_relations("PD", s.database("PD").unwrap().relations.clone());
        let snap = fed.snapshot();
        let deps: BTreeSet<String> = ["PD", "AD"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            snap.version_vector(&deps),
            vec![("AD".to_string(), 0), ("PD".to_string(), 1)]
        );
    }
}
