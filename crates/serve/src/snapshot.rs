//! Immutable federation snapshots with per-source versioning.
//!
//! Every query in the service executes against a [`FederationSnapshot`]:
//! an `Arc`-shared data dictionary plus an `Arc`-shared LQP registry,
//! stamped with a *version vector* — one monotone counter per local
//! database. Sessions never deep-clone catalog or source state; opening
//! a snapshot is two `Arc` clones, and a query holds its snapshot alive
//! for exactly as long as it runs, so a concurrent source update can
//! never mutate state out from under an executing plan.
//!
//! The mutable head lives in [`Federation`]: updating a source builds a
//! *new* snapshot (re-pointing every unchanged LQP by `Arc`, swapping
//! the updated one in) and bumps that source's version. Old snapshots
//! stay valid for in-flight queries; the version bump is what makes the
//! result cache's `(plan fingerprint × version vector)` keys precise —
//! a cached tagged answer is served only while every source it was
//! computed from is still at the version it was read at.

use polygen_catalog::dictionary::DataDictionary;
use polygen_catalog::scenario::Scenario;
use polygen_flat::relation::Relation;
use polygen_lqp::engine::Lqp;
use polygen_lqp::memory::InMemoryLqp;
use polygen_lqp::registry::LqpRegistry;
use polygen_lqp::scenario_registry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

/// A sorted `(source, version)` list — the slice of federation state a
/// cached result depends on. Sorted so equal dependency sets compare and
/// hash equal regardless of plan shape.
pub type VersionVector = Vec<(String, u64)>;

/// One immutable view of the federation.
#[derive(Clone)]
pub struct FederationSnapshot {
    dictionary: Arc<DataDictionary>,
    registry: Arc<LqpRegistry>,
    versions: BTreeMap<String, u64>,
    epoch: u64,
}

impl FederationSnapshot {
    /// Wrap shared federation state; every source starts at version 0.
    pub fn from_parts(dictionary: Arc<DataDictionary>, registry: Arc<LqpRegistry>) -> Self {
        let versions = registry.names().into_iter().map(|n| (n, 0)).collect();
        FederationSnapshot {
            dictionary,
            registry,
            versions,
            epoch: 0,
        }
    }

    /// Stand up a scenario (the paper's MIT databases or a synthetic
    /// federation) as the initial snapshot. The dictionary is cloned
    /// once, here — never again per session or per query.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        let registry = Arc::new(scenario_registry(scenario));
        Self::from_parts(Arc::new(scenario.dictionary.clone()), registry)
    }

    /// The shared data dictionary.
    pub fn dictionary(&self) -> &Arc<DataDictionary> {
        &self.dictionary
    }

    /// The shared LQP registry.
    pub fn registry(&self) -> &Arc<LqpRegistry> {
        &self.registry
    }

    /// The snapshot's global epoch (bumped once per update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A source's current version (0 for sources never updated; also 0
    /// for unknown names, which therefore never spuriously invalidate).
    pub fn version_of(&self, source: &str) -> u64 {
        self.versions.get(source).copied().unwrap_or(0)
    }

    /// The version vector restricted to `sources` — the dependency stamp
    /// for a plan that reads exactly those local databases.
    pub fn version_vector(&self, sources: &BTreeSet<String>) -> VersionVector {
        sources
            .iter()
            .map(|s| (s.clone(), self.version_of(s)))
            .collect()
    }

    /// Derive the successor snapshot with `lqp` replacing (or joining)
    /// the registry under its own name, and its version bumped.
    fn with_updated_source(&self, lqp: Arc<dyn Lqp>) -> FederationSnapshot {
        let name = lqp.name().to_string();
        let registry = LqpRegistry::new();
        for existing in self.registry.names() {
            if existing != name {
                if let Some(l) = self.registry.get(&existing) {
                    registry.register(l);
                }
            }
        }
        registry.register(lqp);
        let mut versions = self.versions.clone();
        *versions.entry(name).or_insert(0) += 1;
        FederationSnapshot {
            dictionary: Arc::clone(&self.dictionary),
            registry: Arc::new(registry),
            versions,
            epoch: self.epoch + 1,
        }
    }
}

/// The mutable head: an atomically swappable [`FederationSnapshot`].
pub struct Federation {
    head: RwLock<Arc<FederationSnapshot>>,
}

impl Federation {
    /// Start from an initial snapshot.
    pub fn new(snapshot: FederationSnapshot) -> Self {
        Federation {
            head: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// Start from a scenario.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Self::new(FederationSnapshot::from_scenario(scenario))
    }

    /// The current snapshot — O(1), two pointer copies under a read
    /// lock. Queries pin the snapshot they start on.
    pub fn snapshot(&self) -> Arc<FederationSnapshot> {
        Arc::clone(&self.head.read().expect("federation head poisoned"))
    }

    /// Replace (or add) a source's LQP, bumping its version. Returns the
    /// source's new version. In-flight queries keep executing against
    /// the snapshot they pinned; queries admitted after the swap see the
    /// new data.
    pub fn update_source(&self, lqp: Arc<dyn Lqp>) -> u64 {
        let mut head = self.head.write().expect("federation head poisoned");
        let name = lqp.name().to_string();
        let next = head.with_updated_source(lqp);
        let version = next.version_of(&name);
        *head = Arc::new(next);
        version
    }

    /// Convenience: swap a source's relations wholesale through a fresh
    /// in-memory LQP (how the demo and tests model an upstream refresh).
    pub fn update_source_relations(&self, name: &str, relations: Vec<Relation>) -> u64 {
        self.update_source(Arc::new(InMemoryLqp::new(name, relations)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_catalog::scenario;

    #[test]
    fn snapshot_shares_state_and_versions_start_at_zero() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        let snap = fed.snapshot();
        assert_eq!(snap.epoch(), 0);
        for db in ["AD", "PD", "CD"] {
            assert_eq!(snap.version_of(db), 0);
        }
        // Snapshot acquisition is Arc sharing, not copying.
        let again = fed.snapshot();
        assert!(Arc::ptr_eq(snap.registry(), again.registry()));
        assert!(Arc::ptr_eq(snap.dictionary(), again.dictionary()));
    }

    #[test]
    fn update_bumps_only_the_touched_source() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        let before = fed.snapshot();
        let cd = s.database("CD").unwrap();
        let v = fed.update_source_relations("CD", cd.relations.clone());
        assert_eq!(v, 1);
        let after = fed.snapshot();
        assert_eq!(after.version_of("CD"), 1);
        assert_eq!(after.version_of("AD"), 0);
        assert_eq!(after.epoch(), 1);
        // The pinned snapshot is untouched.
        assert_eq!(before.version_of("CD"), 0);
        // Unchanged LQPs are the same objects, re-pointed.
        let ad_before = before.registry().get("AD").unwrap();
        let ad_after = after.registry().get("AD").unwrap();
        assert!(Arc::ptr_eq(&ad_before, &ad_after));
        let cd_before = before.registry().get("CD").unwrap();
        let cd_after = after.registry().get("CD").unwrap();
        assert!(!Arc::ptr_eq(&cd_before, &cd_after));
    }

    #[test]
    fn version_vector_is_sorted_and_restricted() {
        let s = scenario::build();
        let fed = Federation::from_scenario(&s);
        fed.update_source_relations("PD", s.database("PD").unwrap().relations.clone());
        let snap = fed.snapshot();
        let deps: BTreeSet<String> = ["PD", "AD"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            snap.version_vector(&deps),
            vec![("AD".to_string(), 0), ("PD".to_string(), 1)]
        );
    }
}
