//! The transport-agnostic request/response envelope.
//!
//! PR 4's service grew three parallel entry points (`query`,
//! `query_algebra`, `query_app`), each returning an ad-hoc
//! [`ServeOutcome`] or a [`ServeError`] whose variants are Rust-only
//! types — none of which can cross a process boundary. This module
//! collapses them into one shape:
//!
//! * [`Request`] — query text + [`Lang`] + per-request [`RequestOptions`].
//! * [`Response`] — a serializable enum: [`Response::Rows`] (the tagged
//!   answer plus [`ResponseInfo`]), [`Response::Explain`] (the rendered
//!   physical plan), [`Response::Empty`] (blank request text), and
//!   [`Response::Error`] carrying a stable numeric [`ErrorCode`] plus a
//!   human-readable message.
//!
//! The same envelope is served in-process
//! ([`QueryService::execute`](crate::service::QueryService::execute)),
//! over the wire (`polygen-net` encodes each response as a schema frame,
//! row batches, and a summary frame), and by the examples — which is what
//! lets differential tests assert byte-identical answers across
//! transports. Everything deterministic lives in the payload (schema,
//! rows, tags, plan text, error codes); everything timing-dependent
//! (latency, thread allotment, cache hits under concurrency) lives in
//! [`ResponseInfo`], which the wire protocol carries in a *summary* frame
//! that byte-level comparisons exclude.

use crate::service::{ServeError, ServeOutcome};
use polygen_core::relation::PolygenRelation;
use polygen_federation::aqp::AqpError;
use polygen_index::IndexError;
use polygen_pqp::error::PqpError;
use polygen_sql::normalize::NormalizeError;
use std::fmt;
use std::sync::Arc;

/// Which front-end language a request's text is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// Polygen-level SQL.
    Sql,
    /// Algebra bracket notation.
    Algebra,
    /// Application-level SQL through the attached application schema.
    App,
}

impl Lang {
    /// Stable wire discriminant.
    pub fn wire_tag(self) -> u8 {
        match self {
            Lang::Sql => 0,
            Lang::Algebra => 1,
            Lang::App => 2,
        }
    }

    /// Inverse of [`Lang::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Lang> {
        match tag {
            0 => Some(Lang::Sql),
            1 => Some(Lang::Algebra),
            2 => Some(Lang::App),
            _ => None,
        }
    }

    /// Stable lowercase label, shown in the session registry and the
    /// `sys.sessions` LANG column.
    pub fn label(self) -> &'static str {
        match self {
            Lang::Sql => "sql",
            Lang::Algebra => "algebra",
            Lang::App => "app",
        }
    }
}

/// Which EXPLAIN mode a request asked for. SQL text can also select a
/// mode with a leading `EXPLAIN` / `EXPLAIN ANALYZE` keyword — the
/// service peels the prefix into this option so the cache key is the
/// inner query either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExplainOptions {
    /// Execute normally.
    #[default]
    Off,
    /// Compile (or fetch the cached plan) and return the rendered
    /// physical plan as [`Response::Explain`]; run nothing.
    Plan,
    /// Execute the plan under a span trace and return the physical tree
    /// with cost estimates *and* measured actuals (`est=… act=…`) as
    /// [`Response::Explain`].
    Analyze,
}

impl ExplainOptions {
    /// Stable wire discriminant.
    pub fn wire_tag(self) -> u8 {
        match self {
            ExplainOptions::Off => 0,
            ExplainOptions::Plan => 1,
            ExplainOptions::Analyze => 2,
        }
    }

    /// Inverse of [`ExplainOptions::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<ExplainOptions> {
        match tag {
            0 => Some(ExplainOptions::Off),
            1 => Some(ExplainOptions::Plan),
            2 => Some(ExplainOptions::Analyze),
            _ => None,
        }
    }
}

/// Per-request execution options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// EXPLAIN mode (off / plan-only / analyze).
    pub explain: ExplainOptions,
    /// Record a span waterfall for this request. The service opens
    /// serve-layer spans (queue wait, parse, plan, caches, execute) and
    /// the executor one span per physical node; the trace feeds the
    /// slow-query log and, over the wire, the transport's decode/flush
    /// spans complete the waterfall. Results are byte-identical with
    /// tracing on or off.
    pub trace: bool,
}

/// One query request: text, language, options. The single entry shape
/// every transport speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The query text.
    pub text: String,
    /// Which parser the text is for.
    pub lang: Lang,
    /// Per-request options.
    pub options: RequestOptions,
}

impl Request {
    /// A polygen-level SQL request.
    pub fn sql(text: impl Into<String>) -> Self {
        Request {
            text: text.into(),
            lang: Lang::Sql,
            options: RequestOptions::default(),
        }
    }

    /// An algebra-notation request.
    pub fn algebra(text: impl Into<String>) -> Self {
        Request {
            text: text.into(),
            lang: Lang::Algebra,
            options: RequestOptions::default(),
        }
    }

    /// An application-level SQL request.
    pub fn app(text: impl Into<String>) -> Self {
        Request {
            text: text.into(),
            lang: Lang::App,
            options: RequestOptions::default(),
        }
    }

    /// Builder-style EXPLAIN toggle (`true` = plan-only EXPLAIN).
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.options.explain = if explain {
            ExplainOptions::Plan
        } else {
            ExplainOptions::Off
        };
        self
    }

    /// Builder-style EXPLAIN mode selector.
    pub fn with_explain_mode(mut self, mode: ExplainOptions) -> Self {
        self.options.explain = mode;
        self
    }

    /// Builder-style trace toggle.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.options.trace = trace;
        self
    }
}

/// Stable numeric error codes — the wire-safe taxonomy every
/// [`ServeError`] variant maps onto. Codes are grouped by origin layer
/// and are part of the protocol: once assigned, a code never changes
/// meaning.
///
/// * `1xx` — normalization (parse / SQL lowering).
/// * `2xx` — application-schema rewriting.
/// * `3xx` — compilation / execution (PQP).
/// * `4xx` — secondary-index declaration.
/// * `5xx` — service-level (admission control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Query text failed to parse (SQL or algebra).
    SqlSyntax = 100,
    /// SQL parsed but did not lower against the schema.
    SqlLower = 101,
    /// Application query text failed to parse.
    AppSyntax = 200,
    /// A FROM relation is not in the application schema.
    AppUnknownRelation = 201,
    /// An attribute is not defined by any FROM view.
    AppUnknownAttribute = 202,
    /// Compile-time syntax error (canonical text failed to re-parse).
    PqpSyntax = 300,
    /// Compile-time lowering failure.
    PqpLower = 301,
    /// The expression was a bare relation with no operation.
    BareRelation = 302,
    /// A referenced relation is neither a scheme nor a derived result.
    UnknownRelation = 303,
    /// An attribute could not be resolved against a relation.
    UnresolvedAttribute = 304,
    /// An attribute resolved to several columns.
    AmbiguousAttribute = 305,
    /// A forward/dangling `R(n)` reference inside a matrix.
    DanglingReference = 306,
    /// A local query processor failed.
    Lqp = 307,
    /// A polygen algebra operation failed (e.g. a Strict-policy
    /// conflict).
    Algebra = 308,
    /// An interpreter invariant was violated.
    Internal = 309,
    /// Index declaration named an unregistered source.
    IndexUnknownSource = 400,
    /// The local system rejected an index build-time retrieve.
    IndexLqp = 401,
    /// The indexed column does not exist on the relation.
    IndexColumn = 402,
    /// Admission control shed the query: the service is at capacity
    /// with a full wait queue. Retry later — the overload response is
    /// structured, never a dropped connection.
    Overloaded = 503,
}

impl ErrorCode {
    /// The numeric wire form.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Inverse of [`ErrorCode::code`]; `None` for unassigned numbers.
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match code {
            100 => SqlSyntax,
            101 => SqlLower,
            200 => AppSyntax,
            201 => AppUnknownRelation,
            202 => AppUnknownAttribute,
            300 => PqpSyntax,
            301 => PqpLower,
            302 => BareRelation,
            303 => UnknownRelation,
            304 => UnresolvedAttribute,
            305 => AmbiguousAttribute,
            306 => DanglingReference,
            307 => Lqp,
            308 => Algebra,
            309 => Internal,
            400 => IndexUnknownSource,
            401 => IndexLqp,
            402 => IndexColumn,
            503 => Overloaded,
            _ => return None,
        })
    }

    /// A short stable mnemonic for dashboards and demo output.
    pub fn mnemonic(self) -> &'static str {
        use ErrorCode::*;
        match self {
            SqlSyntax => "sql-syntax",
            SqlLower => "sql-lower",
            AppSyntax => "app-syntax",
            AppUnknownRelation => "app-unknown-relation",
            AppUnknownAttribute => "app-unknown-attribute",
            PqpSyntax => "pqp-syntax",
            PqpLower => "pqp-lower",
            BareRelation => "bare-relation",
            UnknownRelation => "unknown-relation",
            UnresolvedAttribute => "unresolved-attribute",
            AmbiguousAttribute => "ambiguous-attribute",
            DanglingReference => "dangling-reference",
            Lqp => "lqp",
            Algebra => "algebra",
            Internal => "internal",
            IndexUnknownSource => "index-unknown-source",
            IndexLqp => "index-lqp",
            IndexColumn => "index-column",
            Overloaded => "overloaded",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.mnemonic())
    }
}

impl From<&ServeError> for ErrorCode {
    fn from(e: &ServeError) -> Self {
        match e {
            ServeError::Normalize(NormalizeError::Syntax(_)) => ErrorCode::SqlSyntax,
            ServeError::Normalize(NormalizeError::Lower(_)) => ErrorCode::SqlLower,
            ServeError::App(AqpError::Syntax(_)) => ErrorCode::AppSyntax,
            ServeError::App(AqpError::UnknownAppRelation(_)) => ErrorCode::AppUnknownRelation,
            ServeError::App(AqpError::UnknownAppAttribute(_)) => ErrorCode::AppUnknownAttribute,
            ServeError::Pqp(PqpError::Syntax(_)) => ErrorCode::PqpSyntax,
            ServeError::Pqp(PqpError::Lower(_)) => ErrorCode::PqpLower,
            ServeError::Pqp(PqpError::BareRelation(_)) => ErrorCode::BareRelation,
            ServeError::Pqp(PqpError::UnknownRelation(_)) => ErrorCode::UnknownRelation,
            ServeError::Pqp(PqpError::UnresolvedAttribute { .. }) => ErrorCode::UnresolvedAttribute,
            ServeError::Pqp(PqpError::AmbiguousAttribute { .. }) => ErrorCode::AmbiguousAttribute,
            ServeError::Pqp(PqpError::DanglingReference(_)) => ErrorCode::DanglingReference,
            ServeError::Pqp(PqpError::Lqp(_)) => ErrorCode::Lqp,
            ServeError::Pqp(PqpError::Polygen(_)) => ErrorCode::Algebra,
            ServeError::Pqp(PqpError::MalformedRow { .. }) => ErrorCode::Internal,
            ServeError::Index(IndexError::UnknownSource(_)) => ErrorCode::IndexUnknownSource,
            ServeError::Index(IndexError::Lqp(_)) => ErrorCode::IndexLqp,
            ServeError::Index(IndexError::Flat(_)) => ErrorCode::IndexColumn,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
        }
    }
}

impl ServeError {
    /// The stable numeric code this error maps onto.
    pub fn code(&self) -> ErrorCode {
        ErrorCode::from(self)
    }
}

/// What a served query reported besides its payload: cache/route/metrics
/// info. Deterministic fields (`canonical`, `fingerprint`,
/// `index_routed`) are stable across transports and runs;
/// timing-dependent fields (`plan_hit`/`result_hit` under concurrency,
/// `threads`, `latency_micros`) are not — which is why the wire protocol
/// ships this struct in a summary frame that differential byte
/// comparisons exclude.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseInfo {
    /// The canonical query text the caches keyed on.
    pub canonical: String,
    /// The physical plan's structural fingerprint.
    pub fingerprint: u64,
    /// Was the compiled plan reused from the plan cache?
    pub plan_hit: bool,
    /// Was the answer served from the result cache (no execution)?
    pub result_hit: bool,
    /// Did the plan route at least one Scan onto a secondary index?
    pub index_routed: bool,
    /// Worker threads allotted from the shared budget (0 for EXPLAIN).
    pub threads: usize,
    /// Wall-clock service time in microseconds, admission wait included.
    pub latency_micros: u64,
}

/// One served response — the transport-agnostic envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A tagged composite answer.
    Rows {
        /// The answer (shared — cache hits alias the cached relation).
        answer: Arc<PolygenRelation>,
        /// Cache/route/metrics info.
        info: ResponseInfo,
    },
    /// A rendered physical plan (the request asked for EXPLAIN).
    Explain {
        /// The rendered plan, `render_plan` form.
        plan: String,
        /// Cache/route/metrics info (`threads` is 0 — nothing ran).
        info: ResponseInfo,
    },
    /// The request text was blank.
    Empty,
    /// The query failed; `code` is stable across transports.
    Error {
        /// The stable numeric taxonomy entry.
        code: ErrorCode,
        /// Human-readable detail (not stable; diagnostics only).
        message: String,
    },
}

impl Response {
    /// The error code, if this is an error response.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Error { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// The answer relation, if this is a rows response.
    pub fn rows(&self) -> Option<&Arc<PolygenRelation>> {
        match self {
            Response::Rows { answer, .. } => Some(answer),
            _ => None,
        }
    }

    /// The info block, if the response carries one.
    pub fn info(&self) -> Option<&ResponseInfo> {
        match self {
            Response::Rows { info, .. } | Response::Explain { info, .. } => Some(info),
            _ => None,
        }
    }

    /// Was this query shed by admission control?
    pub fn is_overloaded(&self) -> bool {
        self.error_code() == Some(ErrorCode::Overloaded)
    }

    /// Deterministic-payload equality: schema, data, tags and tuple
    /// order for rows; plan text for explains; codes for errors —
    /// ignoring the timing-dependent [`ResponseInfo`] fields. This is
    /// the in-process spelling of the wire-level "byte-identical frames
    /// excluding the summary" comparison.
    pub fn payload_eq(&self, other: &Response) -> bool {
        match (self, other) {
            (Response::Rows { answer: a, .. }, Response::Rows { answer: b, .. }) => {
                a.schema() == b.schema() && a.tuples() == b.tuples()
            }
            (Response::Explain { plan: a, .. }, Response::Explain { plan: b, .. }) => a == b,
            (Response::Empty, Response::Empty) => true,
            (Response::Error { code: a, .. }, Response::Error { code: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl From<ServeOutcome> for Response {
    fn from(outcome: ServeOutcome) -> Self {
        let info = ResponseInfo {
            canonical: outcome.canonical,
            fingerprint: outcome.fingerprint,
            plan_hit: outcome.plan_hit,
            result_hit: outcome.result_hit,
            index_routed: outcome.index_routed,
            threads: outcome.threads,
            latency_micros: u64::try_from(outcome.latency.as_micros()).unwrap_or(u64::MAX),
        };
        Response::Rows {
            answer: outcome.answer,
            info,
        }
    }
}

impl From<ServeError> for Response {
    fn from(e: ServeError) -> Self {
        Response::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_stable() {
        use ErrorCode::*;
        let all = [
            SqlSyntax,
            SqlLower,
            AppSyntax,
            AppUnknownRelation,
            AppUnknownAttribute,
            PqpSyntax,
            PqpLower,
            BareRelation,
            UnknownRelation,
            UnresolvedAttribute,
            AmbiguousAttribute,
            DanglingReference,
            Lqp,
            Algebra,
            Internal,
            IndexUnknownSource,
            IndexLqp,
            IndexColumn,
            Overloaded,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for c in all {
            assert_eq!(ErrorCode::from_code(c.code()), Some(c));
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(!c.mnemonic().is_empty());
        }
        // The taxonomy is part of the wire protocol: pin the numbers.
        assert_eq!(SqlSyntax.code(), 100);
        assert_eq!(AppSyntax.code(), 200);
        assert_eq!(PqpSyntax.code(), 300);
        assert_eq!(IndexUnknownSource.code(), 400);
        assert_eq!(Overloaded.code(), 503);
        assert_eq!(ErrorCode::from_code(999), None);
    }

    #[test]
    fn serve_errors_map_to_their_bands() {
        let e = ServeError::Overloaded {
            active: 4,
            queued: 8,
        };
        assert_eq!(e.code(), ErrorCode::Overloaded);
        let r = Response::from(e);
        assert!(r.is_overloaded());
        assert!(matches!(r, Response::Error { ref message, .. } if message.contains("overloaded")));
    }

    #[test]
    fn lang_wire_tags_round_trip() {
        for lang in [Lang::Sql, Lang::Algebra, Lang::App] {
            assert_eq!(Lang::from_wire_tag(lang.wire_tag()), Some(lang));
        }
        assert_eq!(Lang::from_wire_tag(7), None);
    }

    #[test]
    fn request_builders_set_lang_and_options() {
        assert_eq!(Request::sql("S").lang, Lang::Sql);
        assert_eq!(Request::algebra("A").lang, Lang::Algebra);
        assert_eq!(Request::app("P").lang, Lang::App);
        assert_eq!(
            Request::sql("S").with_explain(true).options.explain,
            ExplainOptions::Plan
        );
        assert_eq!(
            Request::sql("S")
                .with_explain_mode(ExplainOptions::Analyze)
                .options
                .explain,
            ExplainOptions::Analyze
        );
        assert!(Request::sql("S").with_trace(true).options.trace);
    }

    #[test]
    fn explain_wire_tags_round_trip() {
        for mode in [
            ExplainOptions::Off,
            ExplainOptions::Plan,
            ExplainOptions::Analyze,
        ] {
            assert_eq!(ExplainOptions::from_wire_tag(mode.wire_tag()), Some(mode));
        }
        assert_eq!(ExplainOptions::from_wire_tag(3), None);
    }
}
