//! The service's two caches: compiled plans and tagged results.
//!
//! **Plan cache** — keyed on the *canonical query text* (see
//! `polygen_sql::normalize`): whitespace, parenthesization and SQL
//! surface variation collapse onto one key, and the canonical printer's
//! round-trip property (`parse(print(e)) == e`) makes the key injective
//! on expression identity, so two different plans can never collide.
//! Values are `Arc`-shared [`CompiledQuery`] handles — compile once,
//! replay across every session (the runtime thread allotment is an
//! executor option, not part of the plan).
//!
//! **Tagged-result cache** — keyed on `(plan fingerprint × the version
//! vector of exactly the sources the plan reads)`. The paper's tagged
//! answers are ideal cache values: origin and intermediate tags are
//! *data*, deterministic per (plan, source contents), locked down
//! cell-exactly by the golden tables and differential suites — so a
//! cache hit returns the byte-identical relation a cold run would
//! produce. Invalidation is precise: bumping one source's version makes
//! every key that mentions that source unreachable, and
//! [`ResultCache::invalidate_source`] / [`PlanCache::invalidate_source`]
//! eagerly purge those entries so the LRU doesn't carry dead weight.
//! (Plans cache schema resolution done against the snapshot's planned
//! schemas, so a source swap conservatively evicts plans reading it
//! too — an updated source may change relation schemas — and every
//! plan-cache hit is additionally validated against the serving
//! snapshot's versions via [`PlanEntry::compiled_versions`], so a plan
//! compiled against a pre-update snapshot and re-inserted after the
//! purge can never be served post-update.)
//!
//! Eviction is least-recently-used. The LRU here is a flat
//! map + recency tick with an O(capacity) eviction scan — eviction is
//! rare (only at capacity, on a miss) and capacities are service-sized
//! (hundreds), so the constant-time paths that matter (hit, insert
//! below capacity) stay a single hash probe under one mutex.

use crate::snapshot::VersionVector;
use polygen_core::relation::PolygenRelation;
use polygen_pqp::pqp::CompiledQuery;
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// One LRU slot: the value, its recency stamp, and how many times it
/// has been served (the `sys.cache` relation's per-entry hit column).
struct Slot<V> {
    value: V,
    used: u64,
    hits: u64,
}

/// A bounded least-recently-used map.
struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Slot<V>>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.used = tick;
            slot.hits += 1;
            &slot.value
        })
    }

    fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            key,
            Slot {
                value,
                used: self.tick,
                hits: 0,
            },
        );
    }

    /// Drop every entry matching `stale`; returns how many went.
    fn purge(&mut self, stale: impl Fn(&K, &V) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|k, slot| !stale(k, &slot.value));
        before - self.map.len()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A compiled, reusable plan plus the metadata its cache entries need.
pub struct PlanEntry {
    /// The canonical query text this plan was compiled from (shared —
    /// cache keys and result keys alias it rather than copying).
    pub canonical: Arc<str>,
    /// The compiled pipeline (POM → IOM → physical plan).
    pub compiled: CompiledQuery,
    /// Structural fingerprint of the physical plan.
    pub fingerprint: u64,
    /// The local databases the plan scans.
    pub reads: BTreeSet<String>,
    /// The versions of `reads` at compile time. A cache hit is only
    /// valid while the serving snapshot still agrees — this is what
    /// closes the insert-after-invalidate race: a plan compiled against
    /// a pre-update snapshot can be re-inserted after `update_source`
    /// purged the cache, but it can never be *served* against the
    /// post-update versions.
    pub compiled_versions: VersionVector,
    /// The snapshot's index-declaration epoch at compile time. Source
    /// updates bump versions, but *re-declaring* the index set does not
    /// — so this is the guard that keeps a plan routed against a
    /// previous catalog (possibly through a since-dropped index) from
    /// being served after `declare_indexes`, even if a racing compile
    /// re-inserts it behind the declare-time purge.
    pub index_epoch: u64,
}

/// Canonical-text → shared compiled plan.
pub struct PlanCache {
    inner: Mutex<Lru<Arc<str>, Arc<PlanEntry>>>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Lru::new(capacity)),
        }
    }

    /// Look a canonical text up, refreshing its recency. Callers must
    /// check the entry's [`PlanEntry::compiled_versions`] against their
    /// snapshot before executing it.
    pub fn get(&self, canonical: &str) -> Option<Arc<PlanEntry>> {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .get(canonical)
            .cloned()
    }

    /// Insert a freshly compiled plan (replacing any entry under the
    /// same canonical text — last writer wins; staleness is caught at
    /// hit time via [`PlanEntry::compiled_versions`]).
    pub fn insert(&self, entry: Arc<PlanEntry>) {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .insert(Arc::clone(&entry.canonical), entry);
    }

    /// Evict every plan that reads `source` (its schemas may have
    /// changed under an update). Returns the number evicted.
    pub fn invalidate_source(&self, source: &str) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .purge(|_, entry| entry.reads.contains(source))
    }

    /// Evict everything — called when the index catalog is re-declared,
    /// so cached plans routed through dropped indexes (or compiled
    /// before new ones existed) recompile against the current catalog.
    /// Returns the number evicted.
    pub fn clear(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .purge(|_, _| true)
    }

    /// Snapshot the cached entries (recency untouched) — the traffic
    /// record the auto-index heuristic mines for hot sargable columns.
    pub fn entries(&self) -> Vec<Arc<PlanEntry>> {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .map
            .values()
            .map(|slot| Arc::clone(&slot.value))
            .collect()
    }

    /// Snapshot the cached entries with their per-entry hit counts
    /// (recency untouched) — the `sys.cache` relation's view.
    pub fn entries_with_hits(&self) -> Vec<(Arc<PlanEntry>, u64)> {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .map
            .values()
            .map(|slot| (Arc::clone(&slot.value), slot.hits))
            .collect()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What identifies one cached tagged answer: which plan, compiled from
/// which canonical text (belt and braces against the u64 fingerprint
/// ever colliding), executed against which source versions.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// [`polygen_pqp::plan::PhysicalPlan::fingerprint`] of the plan.
    pub fingerprint: u64,
    /// The plan's canonical query text (shared with its [`PlanEntry`]).
    pub canonical: Arc<str>,
    /// Versions of exactly the sources the plan reads, sorted.
    pub versions: VersionVector,
}

/// `(plan × source versions)` → shared tagged answer.
pub struct ResultCache {
    inner: Mutex<Lru<ResultKey, Arc<PolygenRelation>>>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` answers.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Lru::new(capacity)),
        }
    }

    /// Look up a cached tagged answer.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<PolygenRelation>> {
        self.inner
            .lock()
            .expect("result cache poisoned")
            .get(key)
            .cloned()
    }

    /// Cache an answer under its plan/version identity.
    pub fn insert(&self, key: ResultKey, answer: Arc<PolygenRelation>) {
        self.inner
            .lock()
            .expect("result cache poisoned")
            .insert(key, answer);
    }

    /// Evict every answer whose dependency vector mentions `source` —
    /// called on a version bump, when all such entries are stale by
    /// construction. Returns the number evicted.
    pub fn invalidate_source(&self, source: &str) -> usize {
        self.inner
            .lock()
            .expect("result cache poisoned")
            .purge(|key, _| key.versions.iter().any(|(s, _)| s == source))
    }

    /// Snapshot the cached answer *keys* with their per-entry hit
    /// counts and row counts (recency untouched) — the `sys.cache`
    /// relation's view. Answers themselves stay in the cache.
    pub fn entries_with_hits(&self) -> Vec<(ResultKey, u64, usize)> {
        self.inner
            .lock()
            .expect("result cache poisoned")
            .map
            .iter()
            .map(|(k, slot)| (k.clone(), slot.hits, slot.value.len()))
            .collect()
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache poisoned").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_flat::schema::Schema;

    fn answer(name: &str) -> Arc<PolygenRelation> {
        Arc::new(PolygenRelation::empty(Arc::new(
            Schema::new(name, &["A"]).unwrap(),
        )))
    }

    fn key(fp: u64, versions: &[(&str, u64)]) -> ResultKey {
        ResultKey {
            fingerprint: fp,
            canonical: Arc::from(format!("Q{fp}").as_str()),
            versions: versions.iter().map(|(s, v)| (s.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        let (a, b, c) = (key(1, &[]), key(2, &[]), key(3, &[]));
        cache.insert(a.clone(), answer("A"));
        cache.insert(b.clone(), answer("B"));
        // Touch A so B is the eviction victim.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), answer("C"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, &[("CD", 0)]), answer("A"));
        assert!(cache.get(&key(1, &[("CD", 0)])).is_some());
        assert!(cache.get(&key(1, &[("CD", 1)])).is_none());
    }

    #[test]
    fn hit_counts_track_gets_not_inserts() {
        let cache = ResultCache::new(4);
        let k = key(1, &[("CD", 0)]);
        cache.insert(k.clone(), answer("A"));
        let entries = cache.entries_with_hits();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, 0, "insertion is not a hit");
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&key(9, &[])).is_none(), "miss counts nothing");
        let entries = cache.entries_with_hits();
        assert_eq!(entries[0].1, 2);
        assert_eq!(entries[0].2, 0, "empty answer has zero rows");
        // Re-inserting under the same key resets the entry's count.
        cache.insert(k.clone(), answer("A"));
        assert_eq!(cache.entries_with_hits()[0].1, 0);
    }

    #[test]
    fn invalidate_source_purges_exactly_the_dependents() {
        let cache = ResultCache::new(8);
        cache.insert(key(1, &[("AD", 0), ("CD", 0)]), answer("A"));
        cache.insert(key(2, &[("AD", 0)]), answer("B"));
        assert_eq!(cache.invalidate_source("CD"), 1);
        assert!(cache.get(&key(1, &[("AD", 0), ("CD", 0)])).is_none());
        assert!(cache.get(&key(2, &[("AD", 0)])).is_some());
    }
}
