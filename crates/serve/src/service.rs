//! The concurrent query service: sessions, admission, shared thread
//! budget, and the cache-through query path.
//!
//! One [`QueryService`] serves many sessions against a shared
//! [`Federation`]. A served query walks:
//!
//! 1. **Admission** — at most `max_concurrent` queries execute at once;
//!    up to `max_queue` more wait; beyond that the service sheds load
//!    with [`ServeError::Overloaded`] instead of melting down.
//! 2. **Snapshot pinning** — the query `Arc`-clones the federation head
//!    (O(1), no catalog copies) and executes against it even if a source
//!    update lands mid-flight.
//! 3. **Normalization** — SQL (or algebra text) collapses to canonical
//!    algebra text, the collision-free plan-cache key.
//! 4. **Plan cache** — hit: reuse the compiled [`PhysicalPlan`] handle;
//!    miss: compile once, share via `Arc`.
//! 5. **Result cache** — keyed `(plan fingerprint × version vector of
//!    the sources the plan reads)`; a hit returns the cached tagged
//!    answer (byte-identical to a cold run — tags are deterministic
//!    data) without executing anything.
//! 6. **Execution** — the plan runs with a *thread allotment* reserved
//!    from the shared budget at admission: the fair share at the
//!    current concurrency, capped by what earlier admissions still
//!    hold, floored at one. Inter-query concurrency and PR 3's
//!    intra-query partition parallelism spend the same pool — the
//!    combined reservation never exceeds the budget beyond the
//!    one-thread-per-query minimum.
//!
//! [`PhysicalPlan`]: polygen_pqp::plan::PhysicalPlan

use crate::cache::{PlanCache, PlanEntry, ResultCache, ResultKey};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::request::{ExplainOptions, Lang, Request, Response, ResponseInfo};
use crate::snapshot::{Federation, FederationSnapshot};
use crate::sys::{self, SysCatalog, SYS_DB};
use polygen_catalog::scenario::Scenario;
use polygen_core::relation::PolygenRelation;
use polygen_core::stream::default_thread_count;
use polygen_federation::app_schema::AppSchema;
use polygen_federation::aqp::{translate_app_query, AqpError};
use polygen_flat::relation::Relation;
use polygen_flat::value::Cmp;
use polygen_index::{IndexError, IndexKind, IndexSpec};
use polygen_lqp::engine::Lqp;
use polygen_obs::ring::CumulativeMark;
use polygen_obs::session::{SessionRegistry, SessionStats};
use polygen_obs::slowlog::{QueryDetail, SlowQueryLog, SlowQueryReport};
use polygen_obs::trace::{Note, Trace};
use polygen_pqp::error::PqpError;
use polygen_pqp::plan::PhysOp;
use polygen_pqp::pqp::{Pqp, PqpOptions};
use polygen_sql::normalize::{canonicalize_algebra, canonicalize_sql, NormalizeError};
use polygen_sql::parse_algebra;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service-level errors.
#[derive(Debug)]
pub enum ServeError {
    /// The query text failed to normalize (parse or lowering).
    Normalize(NormalizeError),
    /// Application-schema rewriting failed.
    App(AqpError),
    /// Compilation or execution failed.
    Pqp(PqpError),
    /// Declared secondary indexes failed to build.
    Index(IndexError),
    /// Admission control shed this query: the service is at
    /// `max_concurrent` executing queries with a full wait queue.
    Overloaded {
        /// Queries executing when the request was refused.
        active: usize,
        /// Queries already waiting.
        queued: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Normalize(e) => write!(f, "{e}"),
            ServeError::App(e) => write!(f, "{e}"),
            ServeError::Pqp(e) => write!(f, "{e}"),
            ServeError::Index(e) => write!(f, "{e}"),
            ServeError::Overloaded { active, queued } => write!(
                f,
                "service overloaded: {active} queries executing, {queued} queued"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NormalizeError> for ServeError {
    fn from(e: NormalizeError) -> Self {
        ServeError::Normalize(e)
    }
}
impl From<AqpError> for ServeError {
    fn from(e: AqpError) -> Self {
        ServeError::App(e)
    }
}
impl From<PqpError> for ServeError {
    fn from(e: PqpError) -> Self {
        ServeError::Pqp(e)
    }
}
impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> Self {
        ServeError::Index(e)
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// The engine options every query runs under (conflict policy,
    /// optimizer, SQL lowering mode). The service owns the thread knob —
    /// `pqp.threads` is ignored in favor of the shared budget — and
    /// forces `retain_intermediates` off (serving keeps answers, not
    /// paper-table traces).
    pub pqp: PqpOptions,
    /// Plan-cache capacity in entries; `0` disables plan caching.
    pub plan_cache: usize,
    /// Result-cache capacity in entries; `0` disables result caching.
    pub result_cache: usize,
    /// Most queries executing concurrently.
    pub max_concurrent: usize,
    /// Most queries waiting for admission before load-shedding.
    pub max_queue: usize,
    /// Total worker threads shared between concurrent queries and each
    /// query's partition-parallel operators; `0` = auto
    /// (`POLYGEN_THREADS` / available parallelism). Each admitted query
    /// reserves `min(budget / active, budget - reserved)` threads
    /// (floored at one — the only way the pool can oversubscribe) and
    /// returns them on completion; reservations are not re-divided
    /// mid-flight, so a long-running early query keeps its allotment.
    pub thread_budget: usize,
    /// Slow-query log capacity: the N worst traced requests are kept
    /// (ring of worst, not most recent). `0` disables the log.
    pub slow_log_capacity: usize,
    /// Only requests at least this slow enter the slow-query log.
    /// `0` admits everything (the log still keeps only the worst N).
    pub slow_log_threshold_micros: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            pqp: PqpOptions::default(),
            plan_cache: 256,
            result_cache: 1024,
            max_concurrent: 16,
            max_queue: 64,
            thread_budget: 0,
            slow_log_capacity: 8,
            slow_log_threshold_micros: 0,
        }
    }
}

impl ServeOptions {
    /// Disable both caches (the differential baseline).
    pub fn without_caches(mut self) -> Self {
        self.plan_cache = 0;
        self.result_cache = 0;
        self
    }

    /// Override both cache capacities.
    pub fn with_caches(mut self, plan: usize, result: usize) -> Self {
        self.plan_cache = plan;
        self.result_cache = result;
        self
    }

    /// Override admission limits.
    pub fn with_admission(mut self, max_concurrent: usize, max_queue: usize) -> Self {
        self.max_concurrent = max_concurrent.max(1);
        self.max_queue = max_queue;
        self
    }

    /// Override the shared thread budget.
    pub fn with_thread_budget(mut self, budget: usize) -> Self {
        self.thread_budget = budget;
        self
    }

    /// Override the slow-query log knobs (capacity, admission threshold).
    pub fn with_slow_log(mut self, capacity: usize, threshold: Duration) -> Self {
        self.slow_log_capacity = capacity;
        self.slow_log_threshold_micros = u64::try_from(threshold.as_micros()).unwrap_or(u64::MAX);
        self
    }

    /// Override the engine options.
    pub fn with_pqp(mut self, pqp: PqpOptions) -> Self {
        self.pqp = pqp;
        self
    }
}

/// One served answer plus where it came from.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The tagged composite answer (shared — cache hits alias the cached
    /// relation rather than cloning cells).
    pub answer: Arc<PolygenRelation>,
    /// The canonical query text the caches keyed on.
    pub canonical: String,
    /// The physical plan's structural fingerprint.
    pub fingerprint: u64,
    /// Was the compiled plan reused from the plan cache?
    pub plan_hit: bool,
    /// Was the answer served from the result cache (no execution)?
    pub result_hit: bool,
    /// Did the plan route at least one Scan leaf onto a secondary
    /// index?
    pub index_routed: bool,
    /// Worker threads this query was allotted from the shared budget.
    pub threads: usize,
    /// Wall-clock service time, admission wait included.
    pub latency: Duration,
    /// Time spent waiting for admission, microseconds.
    pub queue_micros: u64,
    /// Time spent executing the physical plan, microseconds (0 for
    /// result-cache hits — nothing executed).
    pub exec_micros: u64,
}

/// Admission state: executing and waiting query counts, plus how many
/// budget threads the executing queries currently hold.
struct AdmissionState {
    active: usize,
    queued: usize,
    budget_used: usize,
}

/// The gate in front of execution. `admit` blocks while `max_concurrent`
/// queries run and fewer than `max_queue` wait; the returned permit
/// releases a slot (and wakes one waiter) on drop.
struct Admission {
    max_concurrent: usize,
    max_queue: usize,
    thread_budget: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

/// An admitted query's slot + thread allotment.
struct Permit<'a> {
    admission: &'a Admission,
    threads: usize,
}

impl Admission {
    fn new(max_concurrent: usize, max_queue: usize, thread_budget: usize) -> Self {
        Admission {
            max_concurrent: max_concurrent.max(1),
            max_queue,
            thread_budget: if thread_budget == 0 {
                default_thread_count()
            } else {
                thread_budget
            },
            state: Mutex::new(AdmissionState {
                active: 0,
                queued: 0,
                budget_used: 0,
            }),
            freed: Condvar::new(),
        }
    }

    fn admit(&self, metrics: &ServiceMetrics) -> Result<Permit<'_>, ServeError> {
        let mut st = self.state.lock().expect("admission state poisoned");
        // Queue whenever the slots are full *or* earlier arrivals are
        // already waiting — a newcomer must not barge past the queue
        // into a slot a waiter was just woken for.
        if st.active >= self.max_concurrent || st.queued > 0 {
            if st.queued >= self.max_queue {
                return Err(ServeError::Overloaded {
                    active: st.active,
                    queued: st.queued,
                });
            }
            st.queued += 1;
            metrics.observe_queue_depth(st.queued);
            while st.active >= self.max_concurrent {
                st = self.freed.wait(st).expect("admission state poisoned");
            }
            st.queued -= 1;
        }
        st.active += 1;
        metrics.observe_concurrency(st.active);
        // The shared budget splits across whoever is running: the fair
        // share at this concurrency, capped by what earlier admissions
        // have not already reserved (reservations return on completion,
        // they are not re-divided mid-flight). Every admitted query is
        // guaranteed at least one thread, which is the only way the
        // combined reservation can exceed the budget.
        let fair = self.thread_budget / st.active;
        let unreserved = self.thread_budget.saturating_sub(st.budget_used);
        let threads = fair.min(unreserved).max(1);
        st.budget_used += threads;
        Ok(Permit {
            admission: self,
            threads,
        })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self
            .admission
            .state
            .lock()
            .expect("admission state poisoned");
        st.active -= 1;
        st.budget_used -= self.threads;
        drop(st);
        self.admission.freed.notify_one();
    }
}

/// The concurrent query service.
pub struct QueryService {
    federation: Federation,
    options: ServeOptions,
    app_schema: Option<AppSchema>,
    plan_cache: Option<PlanCache>,
    result_cache: Option<ResultCache>,
    admission: Admission,
    metrics: ServiceMetrics,
    slow_log: SlowQueryLog,
    sys: SysCatalog,
}

impl QueryService {
    /// Serve a federation. Construction registers the `sys` system
    /// catalog at the federation head: the six `sys.*` schemes join the
    /// dictionary and a schema-bearing empty placeholder joins the
    /// registry at version 0, so plain SQL/algebra over `sys.*` plans
    /// like any other scheme. Live rows are spliced in per query (see
    /// [`QueryService::spliced_sys_snapshot`]); the head's `sys`
    /// version never moves, which is what lets cached `sys` *plans*
    /// stay valid while `sys` *answers* are never cached at all.
    pub fn new(federation: Federation, options: ServeOptions) -> Self {
        let head = federation.snapshot();
        let mut dictionary = head.dictionary().as_ref().clone();
        dictionary.intern_source(SYS_DB);
        if !dictionary.schema().contains("sys.queries") {
            for scheme in sys::sys_schemes() {
                dictionary.schema_mut().push(scheme);
            }
        }
        federation.install_virtual_source(sys::placeholder_lqp(), Arc::new(dictionary), 0);
        QueryService {
            plan_cache: (options.plan_cache > 0).then(|| PlanCache::new(options.plan_cache)),
            result_cache: (options.result_cache > 0)
                .then(|| ResultCache::new(options.result_cache)),
            admission: Admission::new(
                options.max_concurrent,
                options.max_queue,
                options.thread_budget,
            ),
            metrics: ServiceMetrics::default(),
            slow_log: SlowQueryLog::new(
                options.slow_log_capacity,
                Duration::from_micros(options.slow_log_threshold_micros),
            ),
            sys: SysCatalog::new(),
            app_schema: None,
            federation,
            options,
        }
    }

    /// Serve a scenario (the paper's MIT federation or a generated one).
    pub fn for_scenario(scenario: &Scenario, options: ServeOptions) -> Self {
        Self::new(Federation::from_scenario(scenario), options)
    }

    /// Attach an application schema, enabling [`Session::query_app`] /
    /// [`QueryService::query_app`].
    pub fn with_app_schema(mut self, app_schema: AppSchema) -> Self {
        self.app_schema = Some(app_schema);
        self
    }

    /// Declare secondary indexes at construction: built against current
    /// data, owned by the head snapshot, and maintained automatically —
    /// every [`QueryService::update_source`] rebuilds exactly the
    /// updated source's indexes in the successor snapshot.
    pub fn with_index_specs(self, specs: &[IndexSpec]) -> Result<Self, ServeError> {
        self.declare_indexes(specs)?;
        Ok(self)
    }

    /// Re-declare the index set mid-flight. The plan cache is cleared —
    /// cached plans may be routed through dropped indexes, or may
    /// predate new ones — while cached *results* stay valid (indexes
    /// never change answers, only routes). Queries already executing
    /// keep their pinned snapshot and its catalog.
    pub fn declare_indexes(&self, specs: &[IndexSpec]) -> Result<(), ServeError> {
        // The sys placeholder is registered like a real source, so the
        // index builder would happily (and uselessly) index its empty
        // relations — refuse instead: sys relations are materialized
        // fresh per query, an index over them could never be consulted.
        if specs.iter().any(|s| s.source == SYS_DB) {
            return Err(ServeError::Index(IndexError::UnknownSource(format!(
                "{SYS_DB} (the system catalog is materialized per query and cannot be indexed)"
            ))));
        }
        self.federation.declare_indexes(specs)?;
        if let Some(cache) = &self.plan_cache {
            cache.clear();
        }
        Ok(())
    }

    /// The auto-index heuristic: mine the plan cache for sargable
    /// predicates over source columns, and index every column at least
    /// `min_plans` distinct cached plans probe — hash postings when only
    /// equality shapes appear, sorted when any range does. Newly
    /// derived specs are declared *in addition to* the already-declared
    /// set; returns the new specs (empty when traffic justifies
    /// nothing). Cached results stay valid; affected plans recompile on
    /// their next miss and route.
    pub fn auto_index(&self, min_plans: usize) -> Result<Vec<IndexSpec>, ServeError> {
        let Some(cache) = &self.plan_cache else {
            return Ok(Vec::new());
        };
        let snapshot = self.federation.snapshot();
        let existing = snapshot.indexes().specs();
        // (source, relation, column) → (plans referencing it, saw a range θ).
        let mut hot: std::collections::BTreeMap<(String, String, String), (usize, bool)> =
            std::collections::BTreeMap::new();
        for entry in cache.entries() {
            let mut seen_in_plan = std::collections::BTreeSet::new();
            for node in &entry.compiled.physical.nodes {
                let PhysOp::Scan { db, op } = &node.op else {
                    continue;
                };
                // Catalog scans are index-ineligible: sys relations are
                // rebuilt per materialization, so never derive specs
                // from them (declare_indexes would refuse them anyway).
                if db == SYS_DB {
                    continue;
                }
                let Some((attr, cmp, _)) = &op.filter else {
                    continue;
                };
                let sargable = matches!(cmp, Cmp::Eq | Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge);
                if !sargable || op.restrict.is_some() || op.projection.is_some() {
                    continue;
                }
                let key = (db.clone(), op.relation.clone(), attr.clone());
                if seen_in_plan.insert(key.clone()) {
                    let slot = hot.entry(key).or_insert((0, false));
                    slot.0 += 1;
                    slot.1 |= *cmp != Cmp::Eq;
                }
            }
        }
        // One index per column: a column that already carries an index
        // — of either kind — is never re-derived, so traffic that only
        // shows equality shapes can't downgrade an existing Sorted
        // index to Hash (the catalog keys postings per column,
        // later-spec-wins).
        let covered: std::collections::BTreeSet<(String, String, String)> = existing
            .iter()
            .map(|s| (s.source.clone(), s.relation.clone(), s.column.clone()))
            .collect();
        let new_specs: Vec<IndexSpec> = hot
            .into_iter()
            .filter(|(key, (plans, _))| *plans >= min_plans.max(1) && !covered.contains(key))
            .map(|((source, relation, column), (_, ranged))| IndexSpec {
                source,
                relation,
                column,
                kind: if ranged {
                    IndexKind::Sorted
                } else {
                    IndexKind::Hash
                },
            })
            .collect();
        if new_specs.is_empty() {
            return Ok(Vec::new());
        }
        let mut all = existing;
        all.extend(new_specs.iter().cloned());
        self.declare_indexes(&all)?;
        Ok(new_specs)
    }

    /// The federation behind the service.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The configured options.
    pub fn options(&self) -> ServeOptions {
        self.options
    }

    /// Frozen metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live counters, for recorders outside this crate — the
    /// transport front door feeds its connection-level telemetry
    /// (accepted / open / backpressure-closed) into the same registry
    /// the query path uses, so one snapshot tells the whole story.
    pub fn live_metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// `(plans, results)` currently cached.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.plan_cache.as_ref().map_or(0, PlanCache::len),
            self.result_cache.as_ref().map_or(0, ResultCache::len),
        )
    }

    /// Open a session. Sessions are lightweight (an id plus counters);
    /// every session shares the service's caches and snapshots. The
    /// session registers in the live-session registry — it has a
    /// `sys.sessions` row, peer `"local"`, until dropped.
    pub fn open_session(&self) -> Session<'_> {
        Session {
            service: self,
            stats: self.sys.sessions().register("local"),
            queries: 0,
        }
    }

    /// The live-session registry backing `sys.sessions`. Transports
    /// register each connection on accept (peer address as the label)
    /// and deregister on close; the per-connection
    /// [`SessionStats`] handle publishes in-flight query text around
    /// each execute.
    pub fn sessions(&self) -> &Arc<SessionRegistry> {
        self.sys.sessions()
    }

    /// The system catalog's own state (ring, materialization counter).
    pub fn sys_catalog(&self) -> &SysCatalog {
        &self.sys
    }

    /// Replace a source's LQP: bump its version, then eagerly evict
    /// every cached plan and answer that reads it. Queries already
    /// executing finish on their pinned snapshot; a late re-insert of a
    /// pre-update answer is harmless because its key carries the old
    /// version, which no post-update lookup can produce.
    pub fn update_source(&self, lqp: Arc<dyn Lqp>) -> u64 {
        let name = lqp.name().to_string();
        let version = self.federation.update_source(lqp);
        let plans = self
            .plan_cache
            .as_ref()
            .map_or(0, |c| c.invalidate_source(&name));
        let results = self
            .result_cache
            .as_ref()
            .map_or(0, |c| c.invalidate_source(&name));
        self.metrics.record_invalidation(plans, results);
        version
    }

    /// Replace a source's relations wholesale (an upstream refresh).
    pub fn update_source_relations(&self, name: &str, relations: Vec<Relation>) -> u64 {
        self.update_source(Arc::new(polygen_lqp::memory::InMemoryLqp::new(
            name, relations,
        )))
    }

    /// Serve one [`Request`] — the transport-agnostic entry point. The
    /// returned [`Response`] is the same envelope whether the caller is
    /// in-process, a `polygen-net` wire session, or an example: errors
    /// come back as [`Response::Error`] with a stable numeric
    /// [`ErrorCode`](crate::request::ErrorCode) (overload included —
    /// shedding is a structured response, never a refusal to answer),
    /// blank text comes back as [`Response::Empty`], and the EXPLAIN
    /// modes return the rendered plan ([`ExplainOptions::Plan`] runs
    /// nothing; [`ExplainOptions::Analyze`] executes under a trace and
    /// renders `est=… act=…` per node). SQL text may also spell the mode
    /// as a leading `EXPLAIN [ANALYZE]` keyword.
    pub fn execute(&self, request: Request) -> Response {
        self.execute_traced(request, &Trace::disabled())
    }

    /// [`QueryService::execute`] with a caller-supplied span recorder —
    /// what the wire front door uses so its decode/queue/flush spans and
    /// the service's parse/plan/execute spans land on one waterfall. A
    /// request with `options.trace` set but a disabled handle gets a
    /// service-owned recorder so the slow-query log still captures a
    /// waterfall. A caller that passes an *enabled* recorder owns
    /// slow-log observation (it keeps recording spans — e.g. the wire
    /// flush — after this returns; see
    /// [`QueryService::observe_slow`]). Tracing never changes results.
    pub fn execute_traced(&self, mut request: Request, trace: &Trace) -> Response {
        let start = Instant::now();
        let caller_traced = trace.is_enabled();
        if request.lang == Lang::Sql {
            peel_explain_prefix(&mut request);
        }
        if request.text.trim().is_empty() {
            return Response::Empty;
        }
        let owned;
        let trace = if request.options.trace && !trace.is_enabled() {
            owned = Trace::enabled();
            &owned
        } else {
            trace
        };
        let mut detail = QueryDetail::default();
        let response = match request.options.explain {
            ExplainOptions::Plan => match self.explain_request(&request) {
                Ok(response) => response,
                Err(e) => {
                    self.metrics.record_error_code(e.code());
                    detail.error = Some((e.code().code(), e.code().mnemonic()));
                    e.into()
                }
            },
            ExplainOptions::Analyze => match self.analyze_request(&request, trace) {
                Ok(response) => response,
                Err(e) => {
                    if !matches!(e, ServeError::Overloaded { .. }) {
                        self.metrics.record_error();
                    }
                    self.metrics.record_error_code(e.code());
                    detail.error = Some((e.code().code(), e.code().mnemonic()));
                    e.into()
                }
            },
            ExplainOptions::Off => match self.serve_traced(&request.text, request.lang, trace) {
                Ok(outcome) => {
                    detail = QueryDetail {
                        queue_micros: outcome.queue_micros,
                        exec_micros: outcome.exec_micros,
                        cache: if outcome.result_hit {
                            "result"
                        } else if outcome.plan_hit {
                            "plan"
                        } else {
                            "miss"
                        },
                        error: None,
                    };
                    outcome.into()
                }
                Err(e) => {
                    detail.error = Some((e.code().code(), e.code().mnemonic()));
                    e.into()
                }
            },
        };
        if !caller_traced {
            self.slow_log
                .observe_detailed(&request.text, start.elapsed(), trace, detail);
        }
        response
    }

    /// Feed a completed request into the slow-query log. Transports
    /// that call [`QueryService::execute_traced`] with their own
    /// recorder use this *after* their post-execution spans (response
    /// flush) close, so the logged waterfall is complete.
    pub fn observe_slow(&self, query: &str, elapsed: Duration, trace: &Trace) {
        self.slow_log.observe(query, elapsed, trace);
    }

    /// The EXPLAIN ANALYZE path: admitted like a real query (it executes
    /// one), compiled through the plan cache, run under an enabled span
    /// recorder, and rendered as the physical tree with the cost model's
    /// estimates beside the measured actuals. The result cache is
    /// bypassed in both directions — the point is fresh measurements,
    /// and an analyze answer is never materialized for reuse.
    fn analyze_request(&self, request: &Request, trace: &Trace) -> Result<Response, ServeError> {
        let start = Instant::now();
        let queue_span = trace.begin("serve/queue");
        let permit = match self.admission.admit(&self.metrics) {
            Ok(p) => p,
            Err(e) => {
                self.metrics.record_rejected();
                return Err(e);
            }
        };
        trace.end(queue_span);
        self.metrics.record_queue_wait(start.elapsed());
        let snapshot = self.federation.snapshot();
        let parse_span = trace.begin("serve/parse");
        let canonical = self.canonicalize(&snapshot, &request.text, request.lang)?;
        trace.end(parse_span);
        let plan_span = trace.begin("serve/plan");
        let (entry, plan_hit) = self.plan_for(&snapshot, canonical)?;
        if !plan_span.is_none() {
            trace.annotate(
                plan_span,
                "cache",
                Note::str(if plan_hit { "hit" } else { "miss" }),
            );
        }
        trace.end(plan_span);
        // The act= column needs executor spans even when the caller did
        // not ask for a full trace — run under our own recorder then.
        let exec_trace = if trace.is_enabled() {
            trace.clone()
        } else {
            Trace::enabled()
        };
        // EXPLAIN ANALYZE executes, so a sys-reading plan measures a
        // real materialization + scan, exactly like a served query.
        let spliced;
        let snapshot = if entry.reads.contains(SYS_DB) {
            let sys_span = trace.begin("serve/sys-materialize");
            spliced = self.spliced_sys_snapshot(&snapshot);
            trace.end(sys_span);
            &spliced
        } else {
            snapshot.as_ref()
        };
        let engine = Pqp::new(
            Arc::clone(snapshot.dictionary()),
            Arc::clone(snapshot.registry()),
        )
        .with_options(PqpOptions {
            threads: permit.threads,
            retain_intermediates: false,
            ..self.options.pqp
        })
        .with_indexes(Arc::clone(snapshot.indexes()));
        let exec_span = trace.begin("serve/execute");
        let exec_start = Instant::now();
        let run = engine.run_compiled_traced(&entry.compiled, &exec_trace);
        self.metrics.record_execute(exec_start.elapsed());
        trace.end(exec_span);
        run?;
        let report = exec_trace.report().unwrap_or_default();
        let plan_text = polygen_pqp::explain::render_analyzed_plan(
            &entry.compiled.physical,
            snapshot.registry(),
            &report,
        );
        let latency = start.elapsed();
        self.metrics.record_query(latency, false);
        Ok(Response::Explain {
            plan: plan_text,
            info: ResponseInfo {
                canonical: entry.canonical.to_string(),
                fingerprint: entry.fingerprint,
                plan_hit,
                result_hit: false,
                index_routed: entry.compiled.physical.index_scans() > 0,
                threads: permit.threads,
                latency_micros: u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            },
        })
    }

    /// The full metrics surface in Prometheus text exposition format,
    /// slow-query log appended as `#` comment lines (worst first, each
    /// with its span waterfall when the request was traced). This is
    /// what the wire `Stats` frame carries.
    pub fn scrape(&self) -> String {
        // A scrape boundary is a window boundary: close the current
        // stats window so `sys.stats` and external collectors advance
        // on the same cadence.
        self.sys.advance(self.cumulative_mark());
        let mut out = self.metrics().render_prometheus();
        self.slow_log.render(&mut out);
        out
    }

    /// The slow-query log's current contents, worst first.
    pub fn slow_queries(&self) -> Vec<SlowQueryReport> {
        self.slow_log.snapshot()
    }

    /// The EXPLAIN path: canonicalize and compile (or fetch the cached
    /// plan) against the head snapshot, render the physical plan, run
    /// nothing. Cheap enough to skip admission — there is no execution
    /// to bound.
    fn explain_request(&self, request: &Request) -> Result<Response, ServeError> {
        let start = Instant::now();
        let snapshot = self.federation.snapshot();
        let canonical = self.canonicalize(&snapshot, &request.text, request.lang)?;
        let (entry, plan_hit) = self.plan_for(&snapshot, canonical)?;
        Ok(Response::Explain {
            plan: polygen_pqp::plan::render_plan(&entry.compiled.physical),
            info: ResponseInfo {
                canonical: entry.canonical.to_string(),
                fingerprint: entry.fingerprint,
                plan_hit,
                result_hit: false,
                index_routed: entry.compiled.physical.index_scans() > 0,
                threads: 0,
                latency_micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            },
        })
    }

    /// Serve a polygen-level SQL query.
    ///
    /// Deprecated shim kept for in-process convenience: prefer
    /// [`QueryService::execute`] with [`Request::sql`], which returns
    /// the wire-stable [`Response`] envelope instead of Rust-only types.
    pub fn query(&self, sql: &str) -> Result<ServeOutcome, ServeError> {
        self.serve(sql, Lang::Sql)
    }

    /// Serve an algebra-notation query.
    ///
    /// Deprecated shim: prefer [`QueryService::execute`] with
    /// [`Request::algebra`].
    pub fn query_algebra(&self, text: &str) -> Result<ServeOutcome, ServeError> {
        self.serve(text, Lang::Algebra)
    }

    /// Serve an *application-level* SQL query through the attached
    /// application schema (see [`QueryService::with_app_schema`]).
    ///
    /// Deprecated shim: prefer [`QueryService::execute`] with
    /// [`Request::app`].
    pub fn query_app(&self, sql: &str) -> Result<ServeOutcome, ServeError> {
        self.serve(sql, Lang::App)
    }

    /// The one serving path all entry points share — [`execute`] wraps
    /// its result into the [`Response`] envelope, the legacy shims
    /// return it raw. Shim queries land on the slow-query log here so
    /// `sys.queries` sees every entry point ([`execute_traced`] observes
    /// its own requests with the same detail).
    ///
    /// [`execute`]: QueryService::execute
    /// [`execute_traced`]: QueryService::execute_traced
    fn serve(&self, text: &str, lang: Lang) -> Result<ServeOutcome, ServeError> {
        let start = Instant::now();
        let trace = Trace::disabled();
        let out = self.serve_traced(text, lang, &trace);
        let detail = match &out {
            Ok(o) => QueryDetail {
                queue_micros: o.queue_micros,
                exec_micros: o.exec_micros,
                cache: if o.result_hit {
                    "result"
                } else if o.plan_hit {
                    "plan"
                } else {
                    "miss"
                },
                error: None,
            },
            Err(e) => QueryDetail {
                error: Some((e.code().code(), e.code().mnemonic())),
                ..QueryDetail::default()
            },
        };
        self.slow_log
            .observe_detailed(text, start.elapsed(), &trace, detail);
        out
    }

    /// [`serve`](QueryService::serve) with a span recorder: queue wait,
    /// parse, plan lookup, result-cache probe, and execution each get a
    /// span (one branch apiece when the trace is disabled).
    fn serve_traced(
        &self,
        text: &str,
        lang: Lang,
        trace: &Trace,
    ) -> Result<ServeOutcome, ServeError> {
        let start = Instant::now();
        let queue_span = trace.begin("serve/queue");
        let permit = match self.admission.admit(&self.metrics) {
            Ok(p) => p,
            Err(e) => {
                self.metrics.record_rejected();
                self.metrics.record_error_code(e.code());
                return Err(e);
            }
        };
        trace.end(queue_span);
        let queue = start.elapsed();
        self.metrics.record_queue_wait(queue);
        let snapshot = self.federation.snapshot();
        let served = self.serve_pinned(&snapshot, text, lang, permit.threads, start, queue, trace);
        if let Err(e) = &served {
            self.metrics.record_error();
            self.metrics.record_error_code(e.code());
        }
        served
    }

    /// The cache-through path, pinned to one snapshot.
    #[allow(clippy::too_many_arguments)]
    fn serve_pinned(
        &self,
        snapshot: &FederationSnapshot,
        text: &str,
        lang: Lang,
        threads: usize,
        start: Instant,
        queue: Duration,
        trace: &Trace,
    ) -> Result<ServeOutcome, ServeError> {
        let parse_span = trace.begin("serve/parse");
        let canonical = self.canonicalize(snapshot, text, lang)?;
        trace.end(parse_span);
        let plan_span = trace.begin("serve/plan");
        let (entry, plan_hit) = self.plan_for(snapshot, canonical)?;
        if !plan_span.is_none() {
            trace.annotate(
                plan_span,
                "cache",
                Note::str(if plan_hit { "hit" } else { "miss" }),
            );
        }
        trace.end(plan_span);
        let queue_micros = u64::try_from(queue.as_micros()).unwrap_or(u64::MAX);
        // Plans that read the sys catalog bypass the result cache in
        // *both* directions — no probe, no insert, no hit/miss counter
        // movement. Telemetry must never be served stale, and the
        // bypass keeps user-facing cache-hit rates untouched by
        // catalog traffic.
        let sys_read = entry.reads.contains(SYS_DB);
        // `plan_for` guarantees the entry's compile-time versions match
        // this snapshot, so they *are* the result key's version vector.
        let key = ResultKey {
            fingerprint: entry.fingerprint,
            canonical: Arc::clone(&entry.canonical),
            versions: entry.compiled_versions.clone(),
        };
        if let (Some(cache), false) = (&self.result_cache, sys_read) {
            let probe_span = trace.begin("serve/result-cache");
            let cached = cache.get(&key);
            if !probe_span.is_none() {
                trace.annotate(
                    probe_span,
                    "cache",
                    Note::str(if cached.is_some() { "hit" } else { "miss" }),
                );
            }
            trace.end(probe_span);
            if let Some(answer) = cached {
                self.metrics.record_result_lookup(true);
                let latency = start.elapsed();
                self.metrics.record_query(latency, true);
                return Ok(ServeOutcome {
                    answer,
                    canonical: entry.canonical.to_string(),
                    fingerprint: entry.fingerprint,
                    plan_hit,
                    result_hit: true,
                    index_routed: entry.compiled.physical.index_scans() > 0,
                    threads,
                    latency,
                    queue_micros,
                    exec_micros: 0,
                });
            }
            self.metrics.record_result_lookup(false);
        }
        // A sys-reading plan executes against an ephemeral successor
        // snapshot carrying the live catalog rows; everything else runs
        // on the pinned snapshot unchanged.
        let spliced;
        let snapshot = if sys_read {
            let sys_span = trace.begin("serve/sys-materialize");
            spliced = self.spliced_sys_snapshot(snapshot);
            trace.end(sys_span);
            &spliced
        } else {
            snapshot
        };
        let engine = Pqp::new(
            Arc::clone(snapshot.dictionary()),
            Arc::clone(snapshot.registry()),
        )
        .with_options(PqpOptions {
            threads,
            retain_intermediates: false,
            ..self.options.pqp
        })
        // The snapshot's catalog: guaranteed in sync with the plan,
        // because a plan-cache hit is only served when the entry's
        // compile-time source versions match this snapshot's.
        .with_indexes(Arc::clone(snapshot.indexes()));
        let exec_span = trace.begin("serve/execute");
        let exec_start = Instant::now();
        let run = engine.run_compiled_traced(&entry.compiled, trace);
        let exec_elapsed = exec_start.elapsed();
        self.metrics.record_execute(exec_elapsed);
        trace.end(exec_span);
        let (answer, _trace) = run?;
        let answer = Arc::new(answer);
        if !sys_read {
            if let Some(cache) = &self.result_cache {
                cache.insert(key, Arc::clone(&answer));
            }
        }
        let latency = start.elapsed();
        self.metrics.record_query(latency, false);
        Ok(ServeOutcome {
            answer,
            canonical: entry.canonical.to_string(),
            fingerprint: entry.fingerprint,
            plan_hit,
            result_hit: false,
            index_routed: entry.compiled.physical.index_scans() > 0,
            threads,
            latency,
            queue_micros,
            exec_micros: u64::try_from(exec_elapsed.as_micros()).unwrap_or(u64::MAX),
        })
    }

    fn canonicalize(
        &self,
        snapshot: &FederationSnapshot,
        text: &str,
        lang: Lang,
    ) -> Result<String, ServeError> {
        let schema = snapshot.dictionary().schema();
        let resolver = |rel: &str| -> Option<Vec<String>> {
            schema
                .scheme(rel)
                .map(|s| s.attr_names().map(str::to_string).collect())
        };
        match lang {
            Lang::Algebra => Ok(canonicalize_algebra(text)?),
            Lang::Sql => Ok(canonicalize_sql(
                text,
                &resolver,
                self.options.pqp.lowering,
            )?),
            Lang::App => {
                let app_schema = self.app_schema.as_ref().ok_or_else(|| {
                    ServeError::App(AqpError::UnknownAppRelation(
                        "no application schema attached to this service".to_string(),
                    ))
                })?;
                let polygen_query = translate_app_query(text, app_schema)?;
                Ok(canonicalize_sql(
                    &polygen_query.to_string(),
                    &resolver,
                    self.options.pqp.lowering,
                )?)
            }
        }
    }

    /// Fetch or compile the shared plan for a canonical text. Two racing
    /// misses may both compile; one insert wins and both queries run a
    /// correct plan — cheaper than holding a lock across compilation.
    /// A hit only counts if the entry's compile-time source versions
    /// match this snapshot: `update_source` eagerly purges stale plans,
    /// but a racing pre-update compile can re-insert one afterwards, and
    /// this check is what keeps such an entry from ever being served.
    fn plan_for(
        &self,
        snapshot: &FederationSnapshot,
        canonical: String,
    ) -> Result<(Arc<PlanEntry>, bool), ServeError> {
        if let Some(cache) = &self.plan_cache {
            if let Some(entry) = cache.get(&canonical) {
                if snapshot.version_vector(&entry.reads) == entry.compiled_versions
                    && snapshot.index_epoch() == entry.index_epoch
                {
                    self.metrics.record_plan_lookup(true);
                    return Ok((entry, true));
                }
            }
            self.metrics.record_plan_lookup(false);
            let entry = Arc::new(self.compile(snapshot, canonical)?);
            cache.insert(Arc::clone(&entry));
            Ok((entry, false))
        } else {
            Ok((Arc::new(self.compile(snapshot, canonical)?), false))
        }
    }

    /// Compile canonical text into a cacheable plan entry. Compilation
    /// always lowers with `threads = 1` so the plan's partition
    /// annotations (presentation/costing metadata) are stable — the
    /// executor takes its real parallelism from per-run options.
    fn compile(
        &self,
        snapshot: &FederationSnapshot,
        canonical: String,
    ) -> Result<PlanEntry, ServeError> {
        let expr = parse_algebra(&canonical).map_err(NormalizeError::from)?;
        let compiler = Pqp::new(
            Arc::clone(snapshot.dictionary()),
            Arc::clone(snapshot.registry()),
        )
        .with_options(PqpOptions {
            threads: 1,
            partitions: 1,
            retain_intermediates: false,
            ..self.options.pqp
        })
        .with_indexes(Arc::clone(snapshot.indexes()));
        let compiled = compiler.compile(expr)?;
        let reads = compiled.physical.source_dbs();
        Ok(PlanEntry {
            fingerprint: compiled.physical.fingerprint(),
            compiled_versions: snapshot.version_vector(&reads),
            index_epoch: snapshot.index_epoch(),
            canonical: Arc::from(canonical.as_str()),
            reads,
            compiled,
        })
    }

    /// The service counters as one cumulative mark — what the stats
    /// ring differences consecutive observations of. "Latency" is the
    /// end-to-end distribution over every answered query, hit and miss
    /// paths merged.
    fn cumulative_mark(&self) -> CumulativeMark {
        let m = self.metrics.snapshot();
        let mut latency = m.hit_latency;
        latency.merge(&m.miss_latency);
        CumulativeMark {
            queries: m.queries,
            errors: m.errors,
            rejected: m.rejected,
            plan_hits: m.plan_hits,
            result_hits: m.result_hits,
            executed: m.executed,
            latency,
        }
    }

    /// Materialize the six `sys.*` relations from live service state —
    /// one consistent snapshot read across every subsystem — and splice
    /// them into `base` as an ephemeral successor snapshot under a
    /// fresh monotone version. The successor is never published to the
    /// head: it lives exactly as long as the one query executing
    /// against it, so no two queries can ever observe the same
    /// materialization and the result cache (bypassed anyway for sys
    /// plans) could never alias one.
    fn spliced_sys_snapshot(&self, base: &FederationSnapshot) -> FederationSnapshot {
        self.sys.maybe_advance(self.cumulative_mark());
        let relations = vec![
            sys::queries_relation(&self.slow_log.snapshot()),
            sys::sessions_relation(&self.sys.sessions().snapshot()),
            sys::stats_relation(&self.sys.ring().windows()),
            sys::sources_relation(base),
            sys::cache_relation(
                &self
                    .plan_cache
                    .as_ref()
                    .map_or_else(Vec::new, PlanCache::entries_with_hits),
                &self
                    .result_cache
                    .as_ref()
                    .map_or_else(Vec::new, ResultCache::entries_with_hits),
            ),
            sys::indexes_relation(base),
        ];
        let lqp: Arc<dyn Lqp> = Arc::new(polygen_lqp::memory::InMemoryLqp::new(SYS_DB, relations));
        base.with_virtual_source(lqp, Arc::clone(base.dictionary()), self.sys.next_version())
    }
}

/// Peel a leading `EXPLAIN` / `EXPLAIN ANALYZE` keyword off SQL text
/// into the request's [`ExplainOptions`], leaving the inner query as the
/// text — so the canonical cache key is the same whether the mode came
/// from the keyword or the options. Case-insensitive, whitespace-robust;
/// text that merely *contains* the word (e.g. a string literal) is left
/// alone because the keyword must lead.
fn peel_explain_prefix(request: &mut Request) {
    let Some(rest) = strip_leading_keyword(&request.text, "EXPLAIN") else {
        return;
    };
    if let Some(inner) = strip_leading_keyword(rest, "ANALYZE") {
        request.options.explain = ExplainOptions::Analyze;
        request.text = inner.to_string();
    } else {
        request.options.explain = ExplainOptions::Plan;
        request.text = rest.to_string();
    }
}

/// `Some(remainder)` when `text` starts (after whitespace) with the
/// keyword as a whole word, case-insensitively.
fn strip_leading_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let t = text.trim_start();
    if t.len() < keyword.len() || !t[..keyword.len()].eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = &t[keyword.len()..];
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// A client session: an identity plus per-session counters over the
/// shared service. Cheap to open (no catalog copies — the federation is
/// snapshot-shared), cheap to drop. Registered in the live-session
/// registry for its lifetime, so `SELECT * FROM sys.sessions` shows it —
/// including the query it is running *right now*.
pub struct Session<'s> {
    service: &'s QueryService,
    stats: Arc<SessionStats>,
    queries: u64,
}

impl Session<'_> {
    /// The session id (registry-assigned, never reused).
    pub fn id(&self) -> u64 {
        self.stats.id()
    }

    /// Queries served on this session.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Serve one [`Request`] through the shared service — the envelope
    /// a wire session speaks, counted against this session.
    pub fn execute(&mut self, request: Request) -> Response {
        self.queries += 1;
        self.stats.begin_query(&request.text, request.lang.label());
        let response = self.service.execute(request);
        let rows = response.rows().map_or(0, |r| r.len() as u64);
        self.stats
            .finish_query(rows, response.error_code().is_some());
        response
    }

    fn finish(&self, outcome: &Result<ServeOutcome, ServeError>) {
        match outcome {
            Ok(o) => self.stats.finish_query(o.answer.len() as u64, false),
            Err(_) => self.stats.finish_query(0, true),
        }
    }

    /// Serve a polygen-level SQL query (deprecated shim: prefer
    /// [`Session::execute`]).
    pub fn query(&mut self, sql: &str) -> Result<ServeOutcome, ServeError> {
        self.queries += 1;
        self.stats.begin_query(sql, Lang::Sql.label());
        let out = self.service.query(sql);
        self.finish(&out);
        out
    }

    /// Serve an algebra-notation query.
    pub fn query_algebra(&mut self, text: &str) -> Result<ServeOutcome, ServeError> {
        self.queries += 1;
        self.stats.begin_query(text, Lang::Algebra.label());
        let out = self.service.query_algebra(text);
        self.finish(&out);
        out
    }

    /// Serve an application-level query.
    pub fn query_app(&mut self, sql: &str) -> Result<ServeOutcome, ServeError> {
        self.queries += 1;
        self.stats.begin_query(sql, Lang::App.label());
        let out = self.service.query_app(sql);
        self.finish(&out);
        out
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.service.sys.sessions().deregister(self.stats.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_catalog::scenario;
    use polygen_flat::value::Value;

    const PAPER_SQL: &str = "SELECT ONAME, CEO \
        FROM PORGANIZATION, PALUMNUS \
        WHERE CEO = ANAME AND ONAME IN \
        (SELECT ONAME FROM PCAREER WHERE AID# IN \
        (SELECT AID# FROM PALUMNUS WHERE DEGREE = \"MBA\"))";

    fn service() -> QueryService {
        QueryService::for_scenario(&scenario::build(), ServeOptions::default())
    }

    #[test]
    fn cold_then_hot_path() {
        let svc = service();
        let cold = svc.query(PAPER_SQL).unwrap();
        assert!(!cold.plan_hit && !cold.result_hit);
        assert_eq!(cold.answer.len(), 3);
        let warm = svc.query(PAPER_SQL).unwrap();
        assert!(warm.plan_hit && warm.result_hit);
        // The hit aliases the cached relation — no cell clones.
        assert!(Arc::ptr_eq(&cold.answer, &warm.answer) || *cold.answer == *warm.answer);
        assert_eq!(svc.metrics().result_hits, 1);
        assert_eq!(svc.cache_sizes(), (1, 1));
    }

    #[test]
    fn whitespace_variants_share_one_plan() {
        let svc = service();
        svc.query("SELECT ONAME FROM PORGANIZATION WHERE CEO = \"John Reed\"")
            .unwrap();
        let out = svc
            .query("SELECT   ONAME\nFROM PORGANIZATION\nWHERE CEO   = \"John Reed\"")
            .unwrap();
        assert!(out.plan_hit && out.result_hit);
        assert_eq!(svc.cache_sizes(), (1, 1));
    }

    #[test]
    fn sql_and_algebra_agree_under_caching() {
        let svc = service();
        let a = svc.query(PAPER_SQL).unwrap();
        let b = svc
            .query_algebra(polygen_sql::algebra_expr::PAPER_EXPRESSION)
            .unwrap();
        assert!(a.answer.tagged_set_eq(&b.answer));
    }

    #[test]
    fn source_update_invalidates_and_refreshes() {
        let svc = service();
        let sql = "SELECT ONAME, CEO FROM PORGANIZATION WHERE CEO = \"John Reed\"";
        let before = svc.query(sql).unwrap();
        assert_eq!(before.answer.len(), 1);
        assert!(svc.query(sql).unwrap().result_hit);
        // CD's FIRM relation changes its Citicorp CEO.
        let mut cd = scenario::company_database();
        for rel in &mut cd.relations {
            if rel.name() == "FIRM" {
                *rel = Relation::build("FIRM", &["FNAME", "CEO", "HQ"])
                    .key(&["FNAME"])
                    .row(&["Citicorp", "Jane Doe", "NY, NY"])
                    .finish()
                    .unwrap();
            }
        }
        let v = svc.update_source_relations("CD", cd.relations);
        assert_eq!(v, 1);
        let m = svc.metrics();
        assert!(m.invalidated_results >= 1, "{m}");
        let after = svc.query(sql).unwrap();
        assert!(!after.result_hit, "update must force re-execution");
        assert!(
            after.answer.is_empty(),
            "John Reed is no longer a CEO anywhere"
        );
        let doe = svc
            .query("SELECT ONAME, CEO FROM PORGANIZATION WHERE CEO = \"Jane Doe\"")
            .unwrap();
        assert_eq!(doe.answer.len(), 1);
        assert!(doe
            .answer
            .cell("ONAME", &Value::str("Citicorp"), "CEO")
            .is_some());
    }

    #[test]
    fn cache_off_matches_cache_on() {
        let s = scenario::build();
        let on = QueryService::for_scenario(&s, ServeOptions::default());
        let off = QueryService::for_scenario(&s, ServeOptions::default().without_caches());
        for _ in 0..2 {
            let a = on.query(PAPER_SQL).unwrap();
            let b = off.query(PAPER_SQL).unwrap();
            assert_eq!(*a.answer, *b.answer, "byte-identical, tags included");
            assert!(!b.plan_hit && !b.result_hit);
        }
        assert_eq!(off.cache_sizes(), (0, 0));
    }

    #[test]
    fn sessions_count_and_share_caches() {
        let svc = service();
        let mut s1 = svc.open_session();
        let mut s2 = svc.open_session();
        assert_ne!(s1.id(), s2.id());
        s1.query(PAPER_SQL).unwrap();
        let out = s2.query(PAPER_SQL).unwrap();
        assert!(out.result_hit, "sessions share the service caches");
        assert_eq!(s1.queries(), 1);
        assert_eq!(s2.queries(), 1);
    }

    #[test]
    fn overload_sheds_rather_than_queues_unboundedly() {
        let svc = QueryService::for_scenario(
            &scenario::build(),
            ServeOptions::default().with_admission(1, 0),
        );
        // Hold the single slot from another thread, then watch a second
        // query get shed.
        let gate = Admission::new(1, 0, 1);
        let _held = gate.admit(&ServiceMetrics::default()).unwrap();
        assert!(matches!(
            gate.admit(&ServiceMetrics::default()),
            Err(ServeError::Overloaded { .. })
        ));
        // The service itself still serves sequentially.
        assert!(svc.query(PAPER_SQL).is_ok());
    }

    #[test]
    fn thread_allotment_reserves_and_returns_the_budget() {
        let adm = Admission::new(8, 8, 8);
        let m = ServiceMetrics::default();
        let p1 = adm.admit(&m).unwrap();
        assert_eq!(p1.threads, 8, "alone: the whole budget");
        let p2 = adm.admit(&m).unwrap();
        assert_eq!(
            p2.threads, 1,
            "the first query holds the budget; later arrivals get the floor"
        );
        drop(p1);
        let p3 = adm.admit(&m).unwrap();
        assert_eq!(
            p3.threads, 4,
            "released reservations are available again (fair share of 2 active)"
        );
        drop(p2);
        drop(p3);
        let again = adm.admit(&m).unwrap();
        assert_eq!(again.threads, 8, "everything returns on drop");
        assert_eq!(m.snapshot().peak_concurrency, 2);
    }

    #[test]
    fn staggered_admissions_never_overdraw_the_budget() {
        let adm = Admission::new(4, 4, 6);
        let m = ServiceMetrics::default();
        let p1 = adm.admit(&m).unwrap(); // 6 of 6
        let p2 = adm.admit(&m).unwrap(); // floor
        let p3 = adm.admit(&m).unwrap(); // floor
        assert_eq!(p1.threads + p2.threads + p3.threads, 8, "6 + floor + floor");
        assert!(p2.threads == 1 && p3.threads == 1);
        drop(p1);
        // 2 active holding 2; fair share 6/3 = 2, unreserved 4 → 2.
        let p4 = adm.admit(&m).unwrap();
        assert_eq!(p4.threads, 2);
        drop(p2);
        drop(p3);
        drop(p4);
    }

    #[test]
    fn app_queries_flow_through_the_caches() {
        use polygen_federation::app_schema::AppRelation;
        let mut app = AppSchema::new();
        app.push(AppRelation::new(
            "COMPANIES",
            "PORGANIZATION",
            &[("COMPANY", "ONAME"), ("CHIEF", "CEO")],
        ));
        let svc = service().with_app_schema(app);
        let sql = "SELECT COMPANY FROM COMPANIES WHERE CHIEF = \"John Reed\"";
        let cold = svc.query_app(sql).unwrap();
        assert_eq!(cold.answer.len(), 1);
        let warm = svc.query_app(sql).unwrap();
        assert!(warm.result_hit);
        // The same polygen-level query shares the entry.
        let direct = svc
            .query("SELECT ONAME FROM PORGANIZATION WHERE CEO = \"John Reed\"")
            .unwrap();
        assert!(direct.result_hit, "app and polygen paths share one key");
    }

    #[test]
    fn indexed_service_routes_and_stays_byte_identical() {
        let s = scenario::build();
        let indexed = QueryService::for_scenario(&s, ServeOptions::default())
            .with_index_specs(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        let plain = QueryService::for_scenario(&s, ServeOptions::default().without_caches());
        let sql = "SELECT AID#, ANAME FROM PALUMNUS WHERE DEGREE = \"MBA\"";
        let cold = indexed.query(sql).unwrap();
        assert!(cold.index_routed, "the selective scan must route");
        assert_eq!(*cold.answer, *plain.query(sql).unwrap().answer);
        let warm = indexed.query(sql).unwrap();
        assert!(warm.result_hit && warm.index_routed);
        // The paper query routes its MBA select too — same answers.
        let paper = indexed.query(PAPER_SQL).unwrap();
        assert!(paper.index_routed);
        assert_eq!(*paper.answer, *plain.query(PAPER_SQL).unwrap().answer);
    }

    #[test]
    fn source_update_rebuilds_indexes_and_serves_fresh_data() {
        let s = scenario::build();
        let indexed = QueryService::for_scenario(&s, ServeOptions::default())
            .with_index_specs(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        let sql = "SELECT ANAME FROM PALUMNUS WHERE DEGREE = \"MBA\"";
        let before = indexed.query(sql).unwrap();
        assert!(before.index_routed);
        assert_eq!(before.answer.len(), 5);
        // AD refresh: one alumna switches to an MBA.
        let mut ad = scenario::alumni_database();
        for rel in &mut ad.relations {
            if rel.name() == "ALUMNUS" {
                let attrs: Vec<&str> = rel.schema().attrs().iter().map(|a| a.as_ref()).collect();
                let mut b = Relation::build("ALUMNUS", &attrs).key(&["AID#"]);
                for row in rel.rows() {
                    let mut row = row.clone();
                    if row[1] == Value::str("Ken Olsen") {
                        row[2] = Value::str("MBA");
                    }
                    b = b.vrow(row);
                }
                *rel = b.finish().unwrap();
            }
        }
        indexed.update_source_relations("AD", ad.relations);
        let after = indexed.query(sql).unwrap();
        assert!(!after.result_hit, "version bump invalidates");
        assert!(after.index_routed, "rebuilt index keeps routing");
        assert_eq!(after.answer.len(), 6, "the refreshed base is probed");
    }

    #[test]
    fn auto_index_mines_cached_plans_for_hot_columns() {
        let svc = service();
        for deg in ["MBA", "MS", "PhD"] {
            let out = svc
                .query(&format!(
                    "SELECT ANAME FROM PALUMNUS WHERE DEGREE = \"{deg}\"",
                ))
                .unwrap();
            assert!(!out.index_routed, "nothing declared yet");
        }
        // Below threshold: nothing indexed.
        assert!(svc.auto_index(5).unwrap().is_empty());
        let specs = svc.auto_index(2).unwrap();
        assert_eq!(specs, vec![IndexSpec::hash("AD", "ALUMNUS", "DEG")]);
        // The plan cache was cleared, so the next query recompiles and
        // routes; answers are unchanged.
        let routed = svc
            .query("SELECT ANAME FROM PALUMNUS WHERE DEGREE = \"MBA\"")
            .unwrap();
        assert!(routed.index_routed);
        assert_eq!(routed.answer.len(), 5);
        // Idempotent: the derived spec is already declared.
        assert!(svc.auto_index(2).unwrap().is_empty());
    }

    #[test]
    fn errors_surface_and_count() {
        let svc = service();
        assert!(matches!(svc.query("SELECT"), Err(ServeError::Normalize(_))));
        assert!(svc.query_app("SELECT X FROM Y").is_err());
        assert!(svc.metrics().errors >= 2);
    }

    #[test]
    fn execute_envelope_covers_every_variant() {
        use crate::request::{ErrorCode, Request, Response};
        let svc = service();
        let rows = svc.execute(Request::sql(PAPER_SQL));
        let Response::Rows { answer, info } = &rows else {
            panic!("expected rows, got {rows:?}");
        };
        assert_eq!(answer.len(), 3);
        assert!(!info.result_hit && !info.plan_hit);
        // The shim and the envelope share one serving path — identical
        // payloads, outcome convertible.
        let shim = svc.query(PAPER_SQL).unwrap();
        assert!(rows.payload_eq(&Response::from(shim)));

        assert!(matches!(svc.execute(Request::sql("   ")), Response::Empty));

        let err = svc.execute(Request::sql("SELECT"));
        assert_eq!(err.error_code(), Some(ErrorCode::SqlSyntax));
        let app_err = svc.execute(Request::app("SELECT X FROM Y"));
        assert_eq!(app_err.error_code(), Some(ErrorCode::AppUnknownRelation));

        let explained = svc.execute(Request::sql(PAPER_SQL).with_explain(true));
        let Response::Explain { plan, info } = &explained else {
            panic!("expected explain, got {explained:?}");
        };
        assert!(plan.contains("Scan"), "{plan}");
        assert!(info.plan_hit, "plan was cached by the rows query");
        assert_eq!(info.threads, 0, "explain executes nothing");

        // The metrics taxonomy saw both failures under their codes.
        let m = svc.metrics();
        assert_eq!(m.errors_with_code(ErrorCode::SqlSyntax), 1);
        assert_eq!(m.errors_with_code(ErrorCode::AppUnknownRelation), 1);
        assert_eq!(m.shed(), 0);
    }

    #[test]
    fn session_speaks_the_envelope() {
        use crate::request::{Request, Response};
        let svc = service();
        let mut session = svc.open_session();
        let first = session.execute(Request::sql(PAPER_SQL));
        assert!(matches!(first, Response::Rows { .. }));
        let again = session.execute(Request::sql(PAPER_SQL));
        let Response::Rows { info, .. } = &again else {
            panic!("expected rows");
        };
        assert!(info.result_hit, "sessions share the service caches");
        assert!(first.payload_eq(&again), "hit is byte-identical to cold");
        assert_eq!(session.queries(), 2);
    }

    #[test]
    fn explain_keyword_peels_into_plan_mode() {
        use crate::request::{Request, Response};
        let svc = service();
        let explained = svc.execute(Request::sql(format!("explain {PAPER_SQL}")));
        let Response::Explain { plan, info } = &explained else {
            panic!("expected explain, got {explained:?}");
        };
        assert!(plan.contains("Scan"), "{plan}");
        assert!(!plan.contains("act=("), "plan mode never executes");
        assert_eq!(info.threads, 0);
        // The canonical key is the inner query: a plain run shares it.
        let Response::Rows { info, .. } = svc.execute(Request::sql(PAPER_SQL)) else {
            panic!("expected rows");
        };
        assert!(info.plan_hit, "EXPLAIN warmed the plan cache");
        // A string literal merely containing the word is left alone.
        let lit = svc.execute(Request::sql(
            "SELECT ONAME FROM PORGANIZATION WHERE CEO = \"EXPLAIN\"",
        ));
        assert!(matches!(lit, Response::Rows { .. }));
    }

    #[test]
    fn explain_analyze_executes_and_renders_actuals() {
        use crate::request::{ExplainOptions, Request, Response};
        let svc = service();
        let resp = svc.execute(Request::sql(format!("EXPLAIN ANALYZE {PAPER_SQL}")));
        let Response::Explain { plan, info } = &resp else {
            panic!("expected explain, got {resp:?}");
        };
        assert!(plan.contains("est=("), "{plan}");
        assert!(plan.contains("act=("), "{plan}");
        assert!(plan.contains("◀ answer"), "{plan}");
        assert!(info.threads > 0, "analyze executes under admission");
        assert!(!info.result_hit);
        // The options spelling renders identically (same canonical key,
        // actual row counts are deterministic even though times vary).
        let again = svc.execute(Request::sql(PAPER_SQL).with_explain_mode(ExplainOptions::Analyze));
        let Response::Explain {
            info: again_info, ..
        } = &again
        else {
            panic!("expected explain");
        };
        assert!(again_info.plan_hit, "analyze shares the plan cache");
        // Analyze executed but never touched the result cache.
        let m = svc.metrics();
        assert_eq!(m.result_hits + m.result_misses, 0);
        assert!(m.execute_latency.count() >= 2, "{m}");
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn traced_requests_feed_the_slow_query_log() {
        use crate::request::{Request, Response};
        let svc = service();
        let traced = svc.execute(Request::sql(PAPER_SQL).with_trace(true));
        assert!(matches!(traced, Response::Rows { .. }));
        let slow = svc.slow_queries();
        assert_eq!(slow.len(), 1);
        let waterfall = slow[0].waterfall.as_deref().expect("traced request");
        for site in ["serve/queue", "serve/parse", "serve/plan", "serve/execute"] {
            assert!(waterfall.contains(site), "{waterfall}");
        }
        assert!(waterfall.contains("exec/"), "executor spans: {waterfall}");
        // An untraced request still lands (worst-N ring), sans waterfall.
        svc.execute(Request::sql("SELECT ONAME FROM PORGANIZATION"));
        assert_eq!(svc.slow_queries().len(), 2);
        // The scrape carries both the exposition and the slowlog.
        let scrape = svc.scrape();
        assert!(scrape.contains("polygen_queries_total 2"), "{scrape}");
        assert!(scrape.contains("polygen_miss_latency_micros_count"));
        assert!(scrape.contains("# slowlog"), "{scrape}");
    }

    #[test]
    fn tracing_does_not_change_results() {
        use crate::request::{Request, Response};
        let svc = service();
        let plain = svc.execute(Request::sql(PAPER_SQL));
        let svc2 = service();
        let traced = svc2.execute(Request::sql(PAPER_SQL).with_trace(true));
        assert!(plain.payload_eq(&traced), "trace on ≡ trace off");
        let Response::Rows { answer: a, .. } = &plain else {
            panic!()
        };
        let Response::Rows { answer: b, .. } = &traced else {
            panic!()
        };
        assert_eq!(**a, **b, "byte-identical, tags included");
    }

    #[test]
    fn execute_traced_records_a_well_formed_waterfall() {
        use crate::request::Request;
        use polygen_obs::trace::Trace;
        let svc = service();
        let trace = Trace::enabled();
        svc.execute_traced(Request::sql(PAPER_SQL), &trace);
        let report = trace.report().unwrap();
        report.well_formed().unwrap();
        assert!(report.span("serve/queue").is_some());
        assert!(report.span("serve/execute").is_some());
        let exec_parent = report
            .spans
            .iter()
            .position(|s| s.name == "serve/execute")
            .unwrap();
        // Executor node spans nest under the service's execute span.
        assert!(report
            .spans
            .iter()
            .filter(|s| s.name.starts_with("exec/"))
            .all(|s| s.parent == Some(exec_parent)));
    }

    #[test]
    fn overload_is_a_structured_response() {
        use crate::request::{ErrorCode, Request, Response};
        let svc = QueryService::for_scenario(
            &scenario::build(),
            ServeOptions::default().with_admission(1, 0),
        );
        // Hold the only slot, then execute: the envelope must carry a
        // structured Overloaded error, and the metrics must bucket it.
        let permit = svc.admission.admit(&svc.metrics).unwrap();
        let shed = svc.execute(Request::sql(PAPER_SQL));
        assert!(shed.is_overloaded());
        assert!(matches!(
            shed,
            Response::Error { code: ErrorCode::Overloaded, ref message }
                if message.contains("overloaded")
        ));
        drop(permit);
        assert_eq!(svc.metrics().shed(), 1);
        assert_eq!(svc.metrics().rejected, 1);
        // The slot freed: the same request now serves.
        assert!(matches!(
            svc.execute(Request::sql(PAPER_SQL)),
            Response::Rows { .. }
        ));
    }

    #[test]
    fn sys_sources_answer_sql_with_sys_provenance() {
        use polygen_core::tuple::origins_of;
        let svc = service();
        svc.query(PAPER_SQL).unwrap();
        let out = svc
            .query("SELECT SOURCE, VERSION FROM sys.sources")
            .unwrap();
        assert!(!out.result_hit && !out.index_routed);
        for src in ["AD", "CD", "PD", SYS_DB] {
            assert!(
                out.answer
                    .cell("SOURCE", &Value::str(src), "VERSION")
                    .is_some(),
                "missing {src} row in sys.sources"
            );
        }
        let head = svc.federation().snapshot();
        let sys_id = head.dictionary().registry().lookup(SYS_DB).unwrap();
        for tuple in out.answer.tuples() {
            assert!(
                origins_of(tuple).contains(sys_id),
                "every catalog cell is origin-tagged {SYS_DB}"
            );
        }
    }

    #[test]
    fn all_six_sys_relations_serve_over_sql() {
        let svc = service();
        svc.query(PAPER_SQL).unwrap();
        let mut session = svc.open_session();
        for (sql, nonempty) in [
            (
                "SELECT ORDINAL, QUERY, TOTAL_US, CACHE FROM sys.queries",
                true,
            ),
            (
                "SELECT SESSION_ID, PEER, QUERIES, LANG FROM sys.sessions",
                true,
            ),
            (
                "SELECT BUCKET, QUERIES, EXECUTED, P95_US FROM sys.stats",
                true,
            ),
            (
                "SELECT SOURCE, VERSION, RELATIONS, TUPLES FROM sys.sources",
                true,
            ),
            ("SELECT CACHE, ENTRY, HITS FROM sys.cache", true),
            (
                "SELECT SOURCE, RELATION, COLUMN, KIND FROM sys.indexes",
                false,
            ),
        ] {
            let out = session.query(sql).unwrap();
            assert!(!out.result_hit, "{sql}: sys answers never come from cache");
            assert_eq!(
                !out.answer.is_empty(),
                nonempty,
                "{sql}: got {} rows",
                out.answer.len()
            );
        }
        // With an index declared, sys.indexes gains its row too.
        svc.declare_indexes(&[IndexSpec::hash("AD", "ALUMNUS", "DEG")])
            .unwrap();
        let ix = session
            .query("SELECT SOURCE, RELATION, COLUMN, ENTRIES FROM sys.indexes")
            .unwrap();
        assert!(ix
            .answer
            .cell("RELATION", &Value::str("ALUMNUS"), "COLUMN")
            .is_some());
    }

    #[test]
    fn sys_answers_bypass_the_result_cache_and_stay_fresh() {
        let svc = service();
        let sql = "SELECT ORDINAL, QUERY FROM sys.queries";
        let a = svc.query(sql).unwrap();
        assert!(!a.plan_hit && !a.result_hit);
        assert!(a.answer.is_empty(), "the slow log was empty at admission");
        let b = svc.query(sql).unwrap();
        assert!(b.plan_hit, "sys plans cache like any other");
        assert!(!b.result_hit, "sys results are never cached");
        assert!(
            !b.answer.is_empty(),
            "the first catalog query itself is now on the slow log"
        );
        let (_plans, results) = svc.cache_sizes();
        assert_eq!(results, 0, "no sys answer was inserted");
        // A state change between reads is always visible.
        svc.query(PAPER_SQL).unwrap();
        let c = svc.query(sql).unwrap();
        assert!(
            c.answer
                .cell("QUERY", &Value::str(PAPER_SQL), "ORDINAL")
                .is_some(),
            "the user query appears on the next catalog read"
        );
        // User-facing caching is untouched by interleaved sys reads.
        assert!(svc.query(PAPER_SQL).unwrap().result_hit);
        assert_eq!(svc.metrics().result_hits, 1);
    }

    #[test]
    fn sys_sessions_show_the_in_flight_query_and_drain() {
        let svc = service();
        let probe = "SELECT SESSION_ID, QUERY, LANG FROM sys.sessions";
        let mut session = svc.open_session();
        // Materialization happens while this very query is in flight, so
        // the session's own row must carry it as current work.
        let out = session.query(probe).unwrap();
        assert_eq!(out.answer.len(), 1);
        let id = Value::int(i64::try_from(session.id()).unwrap());
        let q = out.answer.cell("SESSION_ID", &id, "QUERY").unwrap();
        assert_eq!(q.datum, Value::str(probe));
        let lang = out.answer.cell("SESSION_ID", &id, "LANG").unwrap();
        assert_eq!(lang.datum, Value::str("sql"));
        drop(session);
        assert!(
            svc.sessions().is_empty(),
            "dropped sessions leave the registry"
        );
        let after = svc.query(probe).unwrap();
        assert!(
            after.answer.cell("SESSION_ID", &id, "QUERY").is_none(),
            "a drained session no longer appears"
        );
    }

    #[test]
    fn sys_cannot_be_indexed_or_auto_indexed() {
        let svc = service();
        let err = svc.declare_indexes(&[IndexSpec::hash(SYS_DB, "stats", "BUCKET")]);
        assert!(matches!(err, Err(ServeError::Index(_))), "{err:?}");
        // Hot selective sys scans never mine an index either.
        for _ in 0..3 {
            svc.query("SELECT SOURCE, VERSION FROM sys.sources WHERE SOURCE = \"AD\"")
                .unwrap();
        }
        assert!(svc.auto_index(1).unwrap().is_empty());
    }

    #[test]
    fn explain_renders_sys_scan_leaves() {
        use crate::request::{Request, Response};
        let svc = service();
        let resp = svc.execute(Request::sql(
            "EXPLAIN SELECT BUCKET, QUERIES FROM sys.stats",
        ));
        let Response::Explain { plan, .. } = &resp else {
            panic!("expected explain, got {resp:?}");
        };
        assert!(plan.contains("Scan[sys]"), "{plan}");
        // ANALYZE executes against a live materialization.
        let resp = svc.execute(Request::sql(
            "EXPLAIN ANALYZE SELECT BUCKET, QUERIES FROM sys.stats",
        ));
        let Response::Explain { plan, .. } = &resp else {
            panic!("expected explain, got {resp:?}");
        };
        assert!(plan.contains("Scan[sys]"), "{plan}");
        assert!(plan.contains("act=("), "{plan}");
    }
}
