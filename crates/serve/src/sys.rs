//! The mediator as its own tagged source: the `sys` system catalog.
//!
//! Polygen's thesis is that heterogeneous sources become queryable by
//! mapping them into tagged polygen schemes — so the mediator's *own*
//! telemetry gets no bespoke API. The serving layer registers a virtual
//! local database `sys` whose relations are materialized from live
//! service state at query admission, then queried through the ordinary
//! front doors (SQL, algebra, the TCP Query frame): every answer row
//! carries the origin tag `sys`, EXPLAIN renders `Scan[sys]` leaves,
//! and the workload driver can mix `sys.stats` probes into ordinary
//! traffic.
//!
//! Six relations, each a flat view of one subsystem (the `SUBSYSTEM`
//! column records the producer):
//!
//! | relation       | contents                                        |
//! |----------------|-------------------------------------------------|
//! | `sys.queries`  | the slow-query log: worst queries + time split  |
//! | `sys.sessions` | live sessions, incl. what each runs *right now* |
//! | `sys.stats`    | windowed counter/percentile rollups (the ring)  |
//! | `sys.sources`  | per-source version, relation/tuple/index counts |
//! | `sys.cache`    | plan- and result-cache entries with hit counts  |
//! | `sys.indexes`  | declared secondary indexes + posting shape      |
//!
//! Materialization is a *consistent snapshot read*: the service gathers
//! every subsystem's state, builds the six relations, and splices them
//! into an ephemeral [`crate::snapshot::FederationSnapshot`] under a
//! monotone version (see [`SysCatalog::next_version`]) that exists only
//! for the duration of the one query. The head snapshot keeps a
//! schema-bearing empty placeholder at version 0, which is what lets
//! cached `sys` plans validate against the head while cached `sys`
//! *answers* are never created at all (the service bypasses the result
//! cache for any plan reading `sys` — telemetry must never be stale).

use crate::cache::{PlanEntry, ResultKey};
use crate::snapshot::FederationSnapshot;
use polygen_catalog::mapping::AttributeMapping;
use polygen_catalog::scheme::PolygenScheme;
use polygen_flat::relation::Relation;
use polygen_flat::value::Value;
use polygen_lqp::engine::Lqp;
use polygen_lqp::memory::InMemoryLqp;
use polygen_obs::ring::{CumulativeMark, MetricsRing, MetricsWindow};
use polygen_obs::session::{SessionRegistry, SessionSnapshot};
use polygen_obs::slowlog::SlowQueryReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The virtual local database name the catalog is registered under.
pub const SYS_DB: &str = "sys";

/// Windows the `sys.stats` ring retains.
pub const SYS_STATS_WINDOWS: usize = 32;

/// Minimum spacing between materialization-driven ring advances. A
/// scrape always closes a window; a `sys.stats` query only closes one
/// when the newest window is at least this old (or the ring is empty),
/// so a tight query loop reads stable windows instead of thousands of
/// near-empty ones.
pub const SYS_STATS_TICK: Duration = Duration::from_secs(1);

/// `(local relation, attributes)` for each sys relation. Local
/// attribute names equal polygen attribute names, so lowering never
/// relabels a sys column; the first flat-key attribute set below keeps
/// every row distinct under the flat layer's set semantics.
const SYS_RELATIONS: &[(&str, &[&str])] = &[
    (
        "queries",
        &[
            "ORDINAL",
            "QUERY",
            "TOTAL_US",
            "QUEUE_US",
            "EXEC_US",
            "CACHE",
            "ERROR_CODE",
            "ERROR",
            "SUBSYSTEM",
        ],
    ),
    (
        "sessions",
        &[
            "SESSION_ID",
            "PEER",
            "AGE_US",
            "QUERIES",
            "ROWS",
            "ERRORS",
            "QUERY",
            "LANG",
            "ELAPSED_US",
            "SUBSYSTEM",
        ],
    ),
    (
        "stats",
        &[
            "BUCKET",
            "QUERIES",
            "ERRORS",
            "REJECTED",
            "PLAN_HITS",
            "RESULT_HITS",
            "EXECUTED",
            "P50_US",
            "P95_US",
            "P99_US",
            "SUBSYSTEM",
        ],
    ),
    (
        "sources",
        &[
            "SOURCE",
            "VERSION",
            "RELATIONS",
            "TUPLES",
            "INDEXES",
            "INDEX_EPOCH",
            "SUBSYSTEM",
        ],
    ),
    (
        "cache",
        &[
            "ORDINAL",
            "CACHE",
            "ENTRY",
            "FINGERPRINT",
            "HITS",
            "ROWS",
            "SUBSYSTEM",
        ],
    ),
    (
        "indexes",
        &[
            "SOURCE",
            "RELATION",
            "COLUMN",
            "KIND",
            "ENTRIES",
            "DISTINCT_KEYS",
            "EPOCH",
            "SUBSYSTEM",
        ],
    ),
];

/// Flat key attributes per sys relation (same order as [`SYS_RELATIONS`]).
const SYS_KEYS: &[&[&str]] = &[
    &["ORDINAL"],
    &["SESSION_ID"],
    &["BUCKET"],
    &["SOURCE"],
    &["ORDINAL"],
    &["SOURCE", "RELATION", "COLUMN"],
];

/// Saturating `u64 → Value::Int` (counters never realistically exceed
/// `i64::MAX`, but telemetry must not panic if one does).
fn uint(v: u64) -> Value {
    Value::int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn usize_val(v: usize) -> Value {
    uint(v as u64)
}

/// The six `sys.*` polygen schemes, each mapping onto exactly one local
/// relation of the virtual `sys` database.
pub fn sys_schemes() -> Vec<PolygenScheme> {
    SYS_RELATIONS
        .iter()
        .map(|(rel, attrs)| {
            PolygenScheme::new(
                &format!("{SYS_DB}.{rel}"),
                attrs
                    .iter()
                    .map(|attr| (*attr, AttributeMapping::of(&[(SYS_DB, rel, attr)])))
                    .collect(),
            )
        })
        .collect()
}

fn empty_relation(i: usize) -> Relation {
    let (rel, attrs) = SYS_RELATIONS[i];
    Relation::build(rel, attrs)
        .key(SYS_KEYS[i])
        .finish()
        .expect("sys relation schema")
}

/// The schema-bearing empty placeholder registered at the head: plans
/// compile against these schemas; rows come from a per-query
/// materialization spliced in at admission.
pub fn placeholder_lqp() -> Arc<dyn Lqp> {
    Arc::new(InMemoryLqp::new(
        SYS_DB,
        (0..SYS_RELATIONS.len()).map(empty_relation).collect(),
    ))
}

/// `sys.queries` — the slow-query log, worst first.
pub fn queries_relation(reports: &[SlowQueryReport]) -> Relation {
    let mut b = Relation::build("queries", SYS_RELATIONS[0].1).key(SYS_KEYS[0]);
    for (i, r) in reports.iter().enumerate() {
        let (code, mnemonic) = r.detail.error.unwrap_or((0, ""));
        b = b.vrow(vec![
            usize_val(i),
            Value::str(&r.query),
            uint(r.micros),
            uint(r.detail.queue_micros),
            uint(r.detail.exec_micros),
            Value::str(r.detail.cache),
            Value::int(i64::from(code)),
            Value::str(mnemonic),
            Value::str("slowlog"),
        ]);
    }
    b.finish().expect("sys.queries rows")
}

/// `sys.sessions` — the live-session registry, including the query each
/// session is running right now (blank columns when idle).
pub fn sessions_relation(sessions: &[SessionSnapshot]) -> Relation {
    let mut b = Relation::build("sessions", SYS_RELATIONS[1].1).key(SYS_KEYS[1]);
    for s in sessions {
        let (query, lang, elapsed) = match &s.in_flight {
            Some((q, l, e)) => (q.as_str(), *l, *e),
            None => ("", "", 0),
        };
        b = b.vrow(vec![
            uint(s.id),
            Value::str(&s.peer),
            uint(s.age_micros),
            uint(s.queries),
            uint(s.rows),
            uint(s.errors),
            Value::str(query),
            Value::str(lang),
            uint(elapsed),
            Value::str("sessions"),
        ]);
    }
    b.finish().expect("sys.sessions rows")
}

/// `sys.stats` — windowed rollups, oldest window first; `BUCKET` is the
/// monotone time-bucket column.
pub fn stats_relation(windows: &[MetricsWindow]) -> Relation {
    let mut b = Relation::build("stats", SYS_RELATIONS[2].1).key(SYS_KEYS[2]);
    for w in windows {
        b = b.vrow(vec![
            uint(w.bucket),
            uint(w.queries),
            uint(w.errors),
            uint(w.rejected),
            uint(w.plan_hits),
            uint(w.result_hits),
            uint(w.executed),
            uint(w.latency.p50_micros()),
            uint(w.latency.p95_micros()),
            uint(w.latency.p99_micros()),
            Value::str("ring"),
        ]);
    }
    b.finish().expect("sys.stats rows")
}

/// `sys.sources` — one row per registered local database (including
/// `sys` itself), from the serving snapshot the query pinned.
pub fn sources_relation(snapshot: &FederationSnapshot) -> Relation {
    let mut names = snapshot.registry().names();
    names.sort();
    let specs = snapshot.indexes().specs();
    let mut b = Relation::build("sources", SYS_RELATIONS[3].1).key(SYS_KEYS[3]);
    for name in names {
        let (relations, tuples) = match snapshot.registry().get(&name) {
            Some(lqp) => {
                let rels = lqp.relation_names();
                let tuples: usize = rels
                    .iter()
                    .filter_map(|r| lqp.stats(r))
                    .map(|s| s.rows)
                    .sum();
                (rels.len(), tuples)
            }
            None => (0, 0),
        };
        let indexes = specs.iter().filter(|s| s.source == name).count();
        b = b.vrow(vec![
            Value::str(&name),
            uint(snapshot.version_of(&name)),
            usize_val(relations),
            usize_val(tuples),
            usize_val(indexes),
            uint(snapshot.index_epoch()),
            Value::str("federation"),
        ]);
    }
    b.finish().expect("sys.sources rows")
}

/// `sys.cache` — every plan- and result-cache entry with its per-entry
/// hit count; `ROWS` is 0 for plans (no materialized answer).
pub fn cache_relation(
    plans: &[(Arc<PlanEntry>, u64)],
    results: &[(ResultKey, u64, usize)],
) -> Relation {
    let mut b = Relation::build("cache", SYS_RELATIONS[4].1).key(SYS_KEYS[4]);
    let mut ordinal = 0usize;
    for (entry, hits) in plans {
        b = b.vrow(vec![
            usize_val(ordinal),
            Value::str("plan"),
            Value::str(entry.canonical.as_ref()),
            Value::str(format!("{:016x}", entry.fingerprint)),
            uint(*hits),
            Value::int(0),
            Value::str("cache"),
        ]);
        ordinal += 1;
    }
    for (key, hits, rows) in results {
        b = b.vrow(vec![
            usize_val(ordinal),
            Value::str("result"),
            Value::str(key.canonical.as_ref()),
            Value::str(format!("{:016x}", key.fingerprint)),
            uint(*hits),
            usize_val(*rows),
            Value::str("cache"),
        ]);
        ordinal += 1;
    }
    b.finish().expect("sys.cache rows")
}

/// `sys.indexes` — declared secondary indexes with posting statistics.
pub fn indexes_relation(snapshot: &FederationSnapshot) -> Relation {
    let mut b = Relation::build("indexes", SYS_RELATIONS[5].1).key(SYS_KEYS[5]);
    for spec in snapshot.indexes().specs() {
        let (entries, distinct) = snapshot
            .indexes()
            .lookup(&spec.source, &spec.relation, &spec.column)
            .map(|i| (i.len(), i.distinct_keys()))
            .unwrap_or((0, 0));
        b = b.vrow(vec![
            Value::str(&spec.source),
            Value::str(&spec.relation),
            Value::str(&spec.column),
            Value::str(spec.kind.to_string()),
            usize_val(entries),
            usize_val(distinct),
            uint(snapshot.index_epoch()),
            Value::str("index"),
        ]);
    }
    b.finish().expect("sys.indexes rows")
}

/// The serving layer's handle on the catalog's own state: who is
/// connected ([`SessionRegistry`]), the windowed rollup ring, and the
/// monotone materialization counter that versions each splice.
pub struct SysCatalog {
    sessions: Arc<SessionRegistry>,
    ring: MetricsRing,
    materializations: AtomicU64,
    last_tick: Mutex<Option<Instant>>,
}

impl Default for SysCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl SysCatalog {
    /// A fresh catalog: no sessions, an empty ring, version counter 0.
    pub fn new() -> Self {
        SysCatalog {
            sessions: Arc::new(SessionRegistry::new()),
            ring: MetricsRing::new(SYS_STATS_WINDOWS),
            materializations: AtomicU64::new(0),
            last_tick: Mutex::new(None),
        }
    }

    /// The live-session registry (shared with the transport layer).
    pub fn sessions(&self) -> &Arc<SessionRegistry> {
        &self.sessions
    }

    /// The windowed-rollup ring backing `sys.stats`.
    pub fn ring(&self) -> &MetricsRing {
        &self.ring
    }

    /// The next splice version — each materialization gets a fresh one,
    /// so no two `sys` snapshots ever share a version (defense in depth
    /// on top of the service's result-cache bypass).
    pub fn next_version(&self) -> u64 {
        self.materializations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// How many materializations have happened.
    pub fn materializations(&self) -> u64 {
        self.materializations.load(Ordering::Relaxed)
    }

    /// Unconditionally close the current window (a scrape boundary is
    /// always a window boundary).
    pub fn advance(&self, mark: CumulativeMark) {
        self.ring.advance(mark);
        *self.last_tick.lock().expect("sys tick lock") = Some(Instant::now());
    }

    /// Close the current window only if the ring is empty or the newest
    /// window is at least [`SYS_STATS_TICK`] old — the materialization
    /// path's coarse clock, so `SELECT` against `sys.stats` returns
    /// rows even on a service nobody ever scrapes.
    pub fn maybe_advance(&self, mark: CumulativeMark) {
        let mut last = self.last_tick.lock().expect("sys tick lock");
        let due = match *last {
            None => true,
            Some(at) => at.elapsed() >= SYS_STATS_TICK,
        };
        if due || self.ring.is_empty() {
            self.ring.advance(mark);
            *last = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygen_obs::hist::HistogramSnapshot;
    use polygen_obs::slowlog::QueryDetail;

    #[test]
    fn schemes_and_placeholder_agree_attribute_for_attribute() {
        let schemes = sys_schemes();
        assert_eq!(schemes.len(), 6);
        let lqp = placeholder_lqp();
        assert_eq!(lqp.name(), SYS_DB);
        for ((rel, attrs), scheme) in SYS_RELATIONS.iter().zip(&schemes) {
            assert_eq!(scheme.name(), format!("sys.{rel}"));
            let schema = lqp.schema_of(rel).expect("placeholder relation");
            let local: Vec<&str> = schema.attrs().iter().map(|a| a.as_ref()).collect();
            assert_eq!(&local, attrs, "local attrs mirror polygen attrs");
            for attr in *attrs {
                assert!(scheme.contains(attr), "{rel}.{attr} mapped");
            }
            assert_eq!(lqp.stats(rel).unwrap().rows, 0, "placeholder is empty");
        }
    }

    #[test]
    fn relation_builders_produce_distinct_rows() {
        let reports = vec![
            SlowQueryReport {
                query: "Q".into(),
                micros: 10,
                detail: QueryDetail::default(),
                waterfall: None,
            },
            // Same text and latency — only the ordinal distinguishes
            // them, which is exactly why the ordinal column exists.
            SlowQueryReport {
                query: "Q".into(),
                micros: 10,
                detail: QueryDetail {
                    error: Some((100, "sql-syntax")),
                    ..QueryDetail::default()
                },
                waterfall: None,
            },
        ];
        let rel = queries_relation(&reports);
        assert_eq!(rel.len(), 2);

        let windows = vec![
            MetricsWindow {
                bucket: 0,
                queries: 0,
                errors: 0,
                rejected: 0,
                plan_hits: 0,
                result_hits: 0,
                executed: 0,
                latency: HistogramSnapshot::default(),
            },
            MetricsWindow {
                bucket: 1,
                queries: 0,
                errors: 0,
                rejected: 0,
                plan_hits: 0,
                result_hits: 0,
                executed: 0,
                latency: HistogramSnapshot::default(),
            },
        ];
        assert_eq!(stats_relation(&windows).len(), 2, "buckets keep rows apart");
    }

    #[test]
    fn catalog_versions_are_monotone_and_tick_is_coarse() {
        let sys = SysCatalog::new();
        assert_eq!(sys.materializations(), 0);
        assert_eq!(sys.next_version(), 1);
        assert_eq!(sys.next_version(), 2);
        assert_eq!(sys.materializations(), 2);
        // First maybe_advance fills the empty ring; an immediate second
        // one is within the tick and does nothing.
        sys.maybe_advance(CumulativeMark::default());
        assert_eq!(sys.ring().len(), 1);
        sys.maybe_advance(CumulativeMark::default());
        assert_eq!(sys.ring().len(), 1);
        // A scrape always closes a window.
        sys.advance(CumulativeMark::default());
        assert_eq!(sys.ring().len(), 2);
    }
}
