//! Service-wide counters, cheap enough for the per-query hot path.
//!
//! Everything is a relaxed atomic: the numbers are operator telemetry
//! (hit rates, latency sums, queue/concurrency peaks), not
//! synchronization. [`ServiceMetrics::snapshot`] freezes a consistent
//! *enough* view for dashboards and the bench harness; exact cross-field
//! consistency is deliberately not promised.

use crate::request::ErrorCode;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live counters owned by the service.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Failures bucketed by the stable [`ErrorCode`] taxonomy — the
    /// structured replacement for string-matching `Display` output.
    /// Mutex-guarded (not atomic) because errors are off the hot path;
    /// shed queries land here under [`ErrorCode::Overloaded`].
    errors_by_code: Mutex<BTreeMap<ErrorCode, u64>>,
    queries: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    /// Queries that actually ran a plan (everything a result-cache hit
    /// did not short-circuit — including all queries on a cache-less
    /// service, which never probes and so never counts a result miss).
    executed: AtomicU64,
    invalidated_plans: AtomicU64,
    invalidated_results: AtomicU64,
    /// Latency split by path: a result-cache hit skips execution
    /// entirely, so the two sums make the hit-path speedup visible
    /// without a profiler.
    hit_latency_micros: AtomicU64,
    miss_latency_micros: AtomicU64,
    peak_queue_depth: AtomicU64,
    peak_concurrency: AtomicU64,
    /// Connection-level telemetry, recorded by whatever transport front
    /// door carries the service (the TCP server in `polygen-net`).
    /// `conns_open` is a gauge; the rest are monotone counters.
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    conns_peak_open: AtomicU64,
    conns_backpressure_closed: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn record_query(&self, latency: Duration, result_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let sum = if result_hit {
            &self.hit_latency_micros
        } else {
            self.executed.fetch_add(1, Ordering::Relaxed);
            &self.miss_latency_micros
        };
        sum.fetch_add(micros, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error_code(&self, code: ErrorCode) {
        let mut by_code = self.errors_by_code.lock().expect("metrics map poisoned");
        *by_code.entry(code).or_insert(0) += 1;
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_lookup(&self, hit: bool) {
        let c = if hit {
            &self.plan_hits
        } else {
            &self.plan_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_result_lookup(&self, hit: bool) {
        let c = if hit {
            &self.result_hits
        } else {
            &self.result_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_invalidation(&self, plans: usize, results: usize) {
        self.invalidated_plans
            .fetch_add(plans as u64, Ordering::Relaxed);
        self.invalidated_results
            .fetch_add(results as u64, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.peak_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn observe_concurrency(&self, active: usize) {
        self.peak_concurrency
            .fetch_max(active as u64, Ordering::Relaxed);
    }

    /// A transport accepted a connection. Public (unlike the query-path
    /// recorders) because the front door lives in a different crate.
    pub fn record_conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak_open.fetch_max(open, Ordering::Relaxed);
    }

    /// A connection ended (peer hangup, protocol violation, shutdown —
    /// any cause, including backpressure closes, which are *also*
    /// recorded separately).
    pub fn record_conn_closed(&self) {
        // Saturating: a stray extra close must not wrap the gauge.
        let _ = self
            .conns_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// A connection was closed because the peer stopped draining its
    /// responses and the outbound buffer hit the cap.
    pub fn record_conn_backpressure_close(&self) {
        self.conns_backpressure_closed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze the counters into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            errors_by_code: self
                .errors_by_code
                .lock()
                .expect("metrics map poisoned")
                .iter()
                .map(|(&code, &count)| (code, count))
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            invalidated_plans: self.invalidated_plans.load(Ordering::Relaxed),
            invalidated_results: self.invalidated_results.load(Ordering::Relaxed),
            hit_latency_micros: self.hit_latency_micros.load(Ordering::Relaxed),
            miss_latency_micros: self.miss_latency_micros.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            peak_concurrency: self.peak_concurrency.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak_open: self.conns_peak_open.load(Ordering::Relaxed),
            conns_backpressure_closed: self.conns_backpressure_closed.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Failures bucketed by stable [`ErrorCode`], ascending by code.
    /// Shed queries appear under [`ErrorCode::Overloaded`]; everything
    /// else mirrors the `errors` counter split by cause.
    pub errors_by_code: Vec<(ErrorCode, u64)>,
    /// Queries answered (hits and misses; excludes rejections/errors).
    pub queries: u64,
    /// Queries that failed (parse, lowering, execution).
    pub errors: u64,
    /// Queries refused by admission control.
    pub rejected: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations).
    pub plan_misses: u64,
    /// Result-cache hits (no execution).
    pub result_hits: u64,
    /// Result-cache misses (plan executed).
    pub result_misses: u64,
    /// Queries that executed a plan — every query a result-cache hit
    /// did not short-circuit, including all queries on a service whose
    /// result cache is disabled (those never probe, so they count here
    /// but not under `result_misses`).
    pub executed: u64,
    /// Plans evicted by source-update invalidation.
    pub invalidated_plans: u64,
    /// Cached answers evicted by source-update invalidation.
    pub invalidated_results: u64,
    /// Summed latency of result-cache-hit queries, in microseconds.
    pub hit_latency_micros: u64,
    /// Summed latency of executed (miss-path) queries, in microseconds.
    pub miss_latency_micros: u64,
    /// Deepest admission queue observed.
    pub peak_queue_depth: u64,
    /// Most queries observed executing at once.
    pub peak_concurrency: u64,
    /// Transport connections accepted over the service's lifetime.
    pub conns_accepted: u64,
    /// Transport connections open at snapshot time (a gauge).
    pub conns_open: u64,
    /// Most transport connections open at once.
    pub conns_peak_open: u64,
    /// Connections closed for refusing to drain their responses.
    pub conns_backpressure_closed: u64,
}

impl MetricsSnapshot {
    /// Failures recorded under one code.
    pub fn errors_with_code(&self, code: ErrorCode) -> u64 {
        self.errors_by_code
            .iter()
            .find(|(c, _)| *c == code)
            .map_or(0, |(_, n)| *n)
    }

    /// Queries shed by admission control
    /// ([`ErrorCode::Overloaded`] bucket — equals `rejected`).
    pub fn shed(&self) -> u64 {
        self.errors_with_code(ErrorCode::Overloaded)
    }

    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of plan lookups that were hits.
    pub fn plan_hit_rate(&self) -> f64 {
        Self::rate(self.plan_hits, self.plan_misses)
    }

    /// Fraction of result lookups that were hits.
    pub fn result_hit_rate(&self) -> f64 {
        Self::rate(self.result_hits, self.result_misses)
    }

    /// Mean latency of the result-cache-hit path, µs.
    pub fn mean_hit_latency_micros(&self) -> f64 {
        if self.result_hits == 0 {
            0.0
        } else {
            self.hit_latency_micros as f64 / self.result_hits as f64
        }
    }

    /// Mean latency of the executed path, µs.
    pub fn mean_miss_latency_micros(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.miss_latency_micros as f64 / self.executed as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries {} (errors {}, rejected {})",
            self.queries, self.errors, self.rejected
        )?;
        writeln!(
            f,
            "plan cache: {} hits / {} misses ({:.0}% hit), {} invalidated",
            self.plan_hits,
            self.plan_misses,
            self.plan_hit_rate() * 100.0,
            self.invalidated_plans
        )?;
        writeln!(
            f,
            "result cache: {} hits / {} misses ({:.0}% hit), {} invalidated",
            self.result_hits,
            self.result_misses,
            self.result_hit_rate() * 100.0,
            self.invalidated_results
        )?;
        writeln!(
            f,
            "latency: hit path {:.0} µs mean, executed path {:.0} µs mean",
            self.mean_hit_latency_micros(),
            self.mean_miss_latency_micros()
        )?;
        if !self.errors_by_code.is_empty() {
            let buckets: Vec<String> = self
                .errors_by_code
                .iter()
                .map(|(code, count)| format!("{code} ×{count}"))
                .collect();
            writeln!(f, "errors by code: {}", buckets.join(", "))?;
        }
        if self.conns_accepted > 0 {
            writeln!(
                f,
                "connections: {} accepted, {} open (peak {}), {} backpressure-closed",
                self.conns_accepted,
                self.conns_open,
                self.conns_peak_open,
                self.conns_backpressure_closed
            )?;
        }
        write!(
            f,
            "peaks: {} concurrent, queue depth {}",
            self.peak_concurrency, self.peak_queue_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_means() {
        let m = ServiceMetrics::default();
        m.record_plan_lookup(true);
        m.record_plan_lookup(false);
        m.record_result_lookup(true);
        m.record_result_lookup(true);
        m.record_result_lookup(false);
        m.record_query(Duration::from_micros(10), true);
        m.record_query(Duration::from_micros(30), true);
        m.record_query(Duration::from_micros(400), false);
        m.observe_concurrency(3);
        m.observe_concurrency(2);
        m.observe_queue_depth(5);
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.executed, 1);
        assert!((s.plan_hit_rate() - 0.5).abs() < 1e-9);
        assert!((s.result_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_hit_latency_micros() - 20.0).abs() < 1e-9);
        assert!((s.mean_miss_latency_micros() - 400.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency, 3);
        assert_eq!(s.peak_queue_depth, 5);
        assert!(s.to_string().contains("plan cache"));
    }

    #[test]
    fn connection_counters_track_gauge_and_peak() {
        let m = ServiceMetrics::default();
        m.record_conn_opened();
        m.record_conn_opened();
        m.record_conn_opened();
        m.record_conn_closed();
        m.record_conn_backpressure_close();
        m.record_conn_closed();
        // A stray extra close must saturate at zero, not wrap.
        m.record_conn_closed();
        m.record_conn_closed();
        let s = m.snapshot();
        assert_eq!(s.conns_accepted, 3);
        assert_eq!(s.conns_open, 0);
        assert_eq!(s.conns_peak_open, 3);
        assert_eq!(s.conns_backpressure_closed, 1);
        assert!(s.to_string().contains("connections: 3 accepted"));
    }

    #[test]
    fn empty_metrics_report_zero_rates() {
        let s = ServiceMetrics::default().snapshot();
        assert_eq!(s.plan_hit_rate(), 0.0);
        assert_eq!(s.result_hit_rate(), 0.0);
        assert_eq!(s.mean_hit_latency_micros(), 0.0);
    }
}
