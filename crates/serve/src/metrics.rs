//! Service-wide counters, cheap enough for the per-query hot path.
//!
//! Counters are relaxed atomics and latencies are lock-free log-bucketed
//! [`Histogram`]s (hit path, executed path, admission queue wait,
//! execution proper) — percentiles within bucket resolution, not just
//! sums. [`ServiceMetrics::snapshot`] freezes one coherent
//! [`MetricsSnapshot`]: the query-path recorders bump a write epoch
//! around their multi-counter updates and the snapshot re-reads (bounded
//! retries) until it lands between updates, so a snapshot's `queries`,
//! `executed`, and histogram counts tell one consistent story instead of
//! a mid-update tear. [`MetricsSnapshot::render_prometheus`] is the
//! wire-scrapable text form.

use crate::request::ErrorCode;
use polygen_obs::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live counters owned by the service.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Failures bucketed by the stable [`ErrorCode`] taxonomy — the
    /// structured replacement for string-matching `Display` output.
    /// Mutex-guarded (not atomic) because errors are off the hot path;
    /// shed queries land here under [`ErrorCode::Overloaded`].
    errors_by_code: Mutex<BTreeMap<ErrorCode, u64>>,
    queries: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    /// Queries that actually ran a plan (everything a result-cache hit
    /// did not short-circuit — including all queries on a cache-less
    /// service, which never probes and so never counts a result miss).
    executed: AtomicU64,
    invalidated_plans: AtomicU64,
    invalidated_results: AtomicU64,
    /// Latency distributions split by path: a result-cache hit skips
    /// execution entirely, so the two histograms make the hit-path
    /// speedup visible — p50/p95/p99, not just means.
    hit_latency: Histogram,
    miss_latency: Histogram,
    /// Time spent waiting for admission (queue wait), per admitted query.
    queue_wait: Histogram,
    /// Plan execution proper (excludes admission, parsing, caching).
    execute_latency: Histogram,
    /// Write epoch for snapshot coherence: incremented before and after
    /// every multi-counter query-path update (seqlock-style — odd means
    /// an update is in flight).
    epoch: AtomicU64,
    peak_queue_depth: AtomicU64,
    peak_concurrency: AtomicU64,
    /// Connection-level telemetry, recorded by whatever transport front
    /// door carries the service (the TCP server in `polygen-net`).
    /// `conns_open` is a gauge; the rest are monotone counters.
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    conns_peak_open: AtomicU64,
    conns_backpressure_closed: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn record_query(&self, latency: Duration, result_hit: bool) {
        self.epoch.fetch_add(1, Ordering::Acquire);
        self.queries.fetch_add(1, Ordering::Relaxed);
        let hist = if result_hit {
            &self.hit_latency
        } else {
            self.executed.fetch_add(1, Ordering::Relaxed);
            &self.miss_latency
        };
        hist.record(latency);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Time an admitted query spent waiting for its slot.
    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Plan execution proper (the `run_compiled` call alone).
    pub(crate) fn record_execute(&self, elapsed: Duration) {
        self.execute_latency.record(elapsed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error_code(&self, code: ErrorCode) {
        let mut by_code = self.errors_by_code.lock().expect("metrics map poisoned");
        *by_code.entry(code).or_insert(0) += 1;
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_lookup(&self, hit: bool) {
        let c = if hit {
            &self.plan_hits
        } else {
            &self.plan_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_result_lookup(&self, hit: bool) {
        let c = if hit {
            &self.result_hits
        } else {
            &self.result_misses
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_invalidation(&self, plans: usize, results: usize) {
        self.invalidated_plans
            .fetch_add(plans as u64, Ordering::Relaxed);
        self.invalidated_results
            .fetch_add(results as u64, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.peak_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn observe_concurrency(&self, active: usize) {
        self.peak_concurrency
            .fetch_max(active as u64, Ordering::Relaxed);
    }

    /// A transport accepted a connection. Public (unlike the query-path
    /// recorders) because the front door lives in a different crate.
    pub fn record_conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak_open.fetch_max(open, Ordering::Relaxed);
    }

    /// A connection ended (peer hangup, protocol violation, shutdown —
    /// any cause, including backpressure closes, which are *also*
    /// recorded separately).
    pub fn record_conn_closed(&self) {
        // Saturating: a stray extra close must not wrap the gauge.
        let _ = self
            .conns_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// A connection was closed because the peer stopped draining its
    /// responses and the outbound buffer hit the cap.
    pub fn record_conn_backpressure_close(&self) {
        self.conns_backpressure_closed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze the counters into one coherent [`MetricsSnapshot`]. The
    /// query-path recorders bump the write epoch around their
    /// multi-counter updates; this read re-runs (a few bounded retries)
    /// until a stable even epoch brackets it, so the returned snapshot's
    /// `queries`, `executed`, and latency-histogram counts never expose
    /// a half-applied `record_query`. Under pathological write pressure
    /// the last attempt is returned as-is — availability over exactness.
    pub fn snapshot(&self) -> MetricsSnapshot {
        for _ in 0..8 {
            let before = self.epoch.load(Ordering::Acquire);
            if before % 2 != 0 {
                std::hint::spin_loop();
                continue;
            }
            let snap = self.read_snapshot();
            if self.epoch.load(Ordering::Acquire) == before {
                return snap;
            }
        }
        self.read_snapshot()
    }

    fn read_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            errors_by_code: self
                .errors_by_code
                .lock()
                .expect("metrics map poisoned")
                .iter()
                .map(|(&code, &count)| (code, count))
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            invalidated_plans: self.invalidated_plans.load(Ordering::Relaxed),
            invalidated_results: self.invalidated_results.load(Ordering::Relaxed),
            hit_latency: self.hit_latency.snapshot(),
            miss_latency: self.miss_latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            execute_latency: self.execute_latency.snapshot(),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            peak_concurrency: self.peak_concurrency.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak_open: self.conns_peak_open.load(Ordering::Relaxed),
            conns_backpressure_closed: self.conns_backpressure_closed.load(Ordering::Relaxed),
        }
    }
}

/// Escape a Prometheus label value: backslash, double quote, and
/// newline must be escaped per the text exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// A frozen view of [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Failures bucketed by stable [`ErrorCode`], ascending by code.
    /// Shed queries appear under [`ErrorCode::Overloaded`]; everything
    /// else mirrors the `errors` counter split by cause.
    pub errors_by_code: Vec<(ErrorCode, u64)>,
    /// Queries answered (hits and misses; excludes rejections/errors).
    pub queries: u64,
    /// Queries that failed (parse, lowering, execution).
    pub errors: u64,
    /// Queries refused by admission control.
    pub rejected: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations).
    pub plan_misses: u64,
    /// Result-cache hits (no execution).
    pub result_hits: u64,
    /// Result-cache misses (plan executed).
    pub result_misses: u64,
    /// Queries that executed a plan — every query a result-cache hit
    /// did not short-circuit, including all queries on a service whose
    /// result cache is disabled (those never probe, so they count here
    /// but not under `result_misses`).
    pub executed: u64,
    /// Plans evicted by source-update invalidation.
    pub invalidated_plans: u64,
    /// Cached answers evicted by source-update invalidation.
    pub invalidated_results: u64,
    /// Latency distribution of result-cache-hit queries.
    pub hit_latency: HistogramSnapshot,
    /// Latency distribution of executed (miss-path) queries.
    pub miss_latency: HistogramSnapshot,
    /// Admission queue-wait distribution (admitted queries only).
    pub queue_wait: HistogramSnapshot,
    /// Plan-execution-proper distribution (the engine run alone,
    /// excluding admission, parsing, and cache probes).
    pub execute_latency: HistogramSnapshot,
    /// Deepest admission queue observed.
    pub peak_queue_depth: u64,
    /// Most queries observed executing at once.
    pub peak_concurrency: u64,
    /// Transport connections accepted over the service's lifetime.
    pub conns_accepted: u64,
    /// Transport connections open at snapshot time (a gauge).
    pub conns_open: u64,
    /// Most transport connections open at once.
    pub conns_peak_open: u64,
    /// Connections closed for refusing to drain their responses.
    pub conns_backpressure_closed: u64,
}

impl MetricsSnapshot {
    /// Failures recorded under one code.
    pub fn errors_with_code(&self, code: ErrorCode) -> u64 {
        self.errors_by_code
            .iter()
            .find(|(c, _)| *c == code)
            .map_or(0, |(_, n)| *n)
    }

    /// Queries shed by admission control
    /// ([`ErrorCode::Overloaded`] bucket — equals `rejected`).
    pub fn shed(&self) -> u64 {
        self.errors_with_code(ErrorCode::Overloaded)
    }

    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of plan lookups that were hits.
    pub fn plan_hit_rate(&self) -> f64 {
        Self::rate(self.plan_hits, self.plan_misses)
    }

    /// Fraction of result lookups that were hits.
    pub fn result_hit_rate(&self) -> f64 {
        Self::rate(self.result_hits, self.result_misses)
    }

    /// Mean latency of the result-cache-hit path, µs.
    pub fn mean_hit_latency_micros(&self) -> f64 {
        if self.result_hits == 0 {
            0.0
        } else {
            self.hit_latency.sum_micros() as f64 / self.result_hits as f64
        }
    }

    /// Mean latency of the executed path, µs.
    pub fn mean_miss_latency_micros(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.miss_latency.sum_micros() as f64 / self.executed as f64
        }
    }

    /// The whole snapshot in Prometheus text exposition format:
    /// monotone counters, the `conns_open` gauge, per-code error
    /// counters (labelled with the stable code and mnemonic), and the
    /// four latency histograms with cumulative buckets. This is what
    /// [`QueryService::scrape`](crate::service::QueryService::scrape)
    /// serves and the wire `Stats` frame carries.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn series(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            series(&mut out, name, "counter", help, value);
        };
        counter(
            "polygen_queries_total",
            "Queries answered (hits and misses; excludes rejections/errors)",
            self.queries,
        );
        counter("polygen_errors_total", "Queries that failed", self.errors);
        counter(
            "polygen_rejected_total",
            "Queries shed by admission control",
            self.rejected,
        );
        counter(
            "polygen_executed_total",
            "Queries that executed a plan",
            self.executed,
        );
        counter("polygen_plan_hits_total", "Plan-cache hits", self.plan_hits);
        counter(
            "polygen_plan_misses_total",
            "Plan-cache misses (compilations)",
            self.plan_misses,
        );
        counter(
            "polygen_result_hits_total",
            "Result-cache hits (no execution)",
            self.result_hits,
        );
        counter(
            "polygen_result_misses_total",
            "Result-cache misses (plan executed)",
            self.result_misses,
        );
        counter(
            "polygen_invalidated_plans_total",
            "Plans evicted by source-update invalidation",
            self.invalidated_plans,
        );
        counter(
            "polygen_invalidated_results_total",
            "Cached answers evicted by source-update invalidation",
            self.invalidated_results,
        );
        counter(
            "polygen_conns_accepted_total",
            "Transport connections accepted",
            self.conns_accepted,
        );
        counter(
            "polygen_conns_backpressure_closed_total",
            "Connections closed for refusing to drain responses",
            self.conns_backpressure_closed,
        );
        // High-water marks and the open-connection count can move in
        // either direction across restarts or resets: gauges, not
        // counters.
        series(
            &mut out,
            "polygen_peak_queue_depth",
            "gauge",
            "Deepest admission queue observed",
            self.peak_queue_depth,
        );
        series(
            &mut out,
            "polygen_peak_concurrency",
            "gauge",
            "Most queries observed executing at once",
            self.peak_concurrency,
        );
        series(
            &mut out,
            "polygen_conns_peak_open",
            "gauge",
            "Most transport connections open at once",
            self.conns_peak_open,
        );
        series(
            &mut out,
            "polygen_conns_open",
            "gauge",
            "Transport connections currently open",
            self.conns_open,
        );
        // The per-code family's metadata is emitted even with no
        // failures recorded yet, so scrapers learn the series exists
        // before the first error does.
        let _ = writeln!(
            out,
            "# HELP polygen_errors_by_code_total Failures by stable error code"
        );
        let _ = writeln!(out, "# TYPE polygen_errors_by_code_total counter");
        for (code, count) in &self.errors_by_code {
            let _ = writeln!(
                out,
                "polygen_errors_by_code_total{{code=\"{}\",mnemonic=\"{}\"}} {count}",
                escape_label(&code.code().to_string()),
                escape_label(code.mnemonic())
            );
        }
        self.hit_latency.render_prometheus(
            "polygen_hit_latency_micros",
            "Result-cache-hit query latency (µs)",
            &mut out,
        );
        self.miss_latency.render_prometheus(
            "polygen_miss_latency_micros",
            "Executed (miss-path) query latency (µs)",
            &mut out,
        );
        self.queue_wait.render_prometheus(
            "polygen_queue_wait_micros",
            "Admission queue wait (µs)",
            &mut out,
        );
        self.execute_latency.render_prometheus(
            "polygen_execute_micros",
            "Plan execution proper (µs)",
            &mut out,
        );
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries {} (errors {}, rejected {})",
            self.queries, self.errors, self.rejected
        )?;
        writeln!(
            f,
            "plan cache: {} hits / {} misses ({:.0}% hit), {} invalidated",
            self.plan_hits,
            self.plan_misses,
            self.plan_hit_rate() * 100.0,
            self.invalidated_plans
        )?;
        writeln!(
            f,
            "result cache: {} hits / {} misses ({:.0}% hit), {} invalidated",
            self.result_hits,
            self.result_misses,
            self.result_hit_rate() * 100.0,
            self.invalidated_results
        )?;
        writeln!(
            f,
            "latency: hit path {:.0} µs mean, executed path {:.0} µs mean \
             (p50/p95/p99 {}/{}/{} µs)",
            self.mean_hit_latency_micros(),
            self.mean_miss_latency_micros(),
            self.miss_latency.p50_micros(),
            self.miss_latency.p95_micros(),
            self.miss_latency.p99_micros()
        )?;
        if self.queue_wait.count() > 0 || self.execute_latency.count() > 0 {
            writeln!(
                f,
                "queue wait p95 {} µs, execute p50/p95 {}/{} µs",
                self.queue_wait.p95_micros(),
                self.execute_latency.p50_micros(),
                self.execute_latency.p95_micros()
            )?;
        }
        if !self.errors_by_code.is_empty() {
            let buckets: Vec<String> = self
                .errors_by_code
                .iter()
                .map(|(code, count)| format!("{code} ×{count}"))
                .collect();
            writeln!(f, "errors by code: {}", buckets.join(", "))?;
        }
        if self.conns_accepted > 0 {
            writeln!(
                f,
                "connections: {} accepted, {} open (peak {}), {} backpressure-closed",
                self.conns_accepted,
                self.conns_open,
                self.conns_peak_open,
                self.conns_backpressure_closed
            )?;
        }
        write!(
            f,
            "peaks: {} concurrent, queue depth {}",
            self.peak_concurrency, self.peak_queue_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_means() {
        let m = ServiceMetrics::default();
        m.record_plan_lookup(true);
        m.record_plan_lookup(false);
        m.record_result_lookup(true);
        m.record_result_lookup(true);
        m.record_result_lookup(false);
        m.record_query(Duration::from_micros(10), true);
        m.record_query(Duration::from_micros(30), true);
        m.record_query(Duration::from_micros(400), false);
        m.observe_concurrency(3);
        m.observe_concurrency(2);
        m.observe_queue_depth(5);
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.executed, 1);
        assert!((s.plan_hit_rate() - 0.5).abs() < 1e-9);
        assert!((s.result_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_hit_latency_micros() - 20.0).abs() < 1e-9);
        assert!((s.mean_miss_latency_micros() - 400.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency, 3);
        assert_eq!(s.peak_queue_depth, 5);
        assert!(s.to_string().contains("plan cache"));
    }

    #[test]
    fn connection_counters_track_gauge_and_peak() {
        let m = ServiceMetrics::default();
        m.record_conn_opened();
        m.record_conn_opened();
        m.record_conn_opened();
        m.record_conn_closed();
        m.record_conn_backpressure_close();
        m.record_conn_closed();
        // A stray extra close must saturate at zero, not wrap.
        m.record_conn_closed();
        m.record_conn_closed();
        let s = m.snapshot();
        assert_eq!(s.conns_accepted, 3);
        assert_eq!(s.conns_open, 0);
        assert_eq!(s.conns_peak_open, 3);
        assert_eq!(s.conns_backpressure_closed, 1);
        assert!(s.to_string().contains("connections: 3 accepted"));
    }

    #[test]
    fn empty_metrics_report_zero_rates() {
        let s = ServiceMetrics::default().snapshot();
        assert_eq!(s.plan_hit_rate(), 0.0);
        assert_eq!(s.result_hit_rate(), 0.0);
        assert_eq!(s.mean_hit_latency_micros(), 0.0);
    }

    #[test]
    fn every_prometheus_series_declares_help_and_type() {
        let m = ServiceMetrics::default();
        m.record_query(Duration::from_micros(10), false);
        m.record_error();
        m.record_error_code(ErrorCode::SqlSyntax);
        let shown = m.snapshot().render_prometheus();
        // Every sample line's metric name must have HELP and TYPE
        // metadata somewhere in the scrape.
        for line in shown.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                shown.contains(&format!("# HELP {base} ")),
                "{name} lacks HELP"
            );
            assert!(
                shown.contains(&format!("# TYPE {base} ")),
                "{name} lacks TYPE"
            );
        }
        // Peaks and open connections are gauges, not counters.
        for gauge in [
            "polygen_peak_queue_depth",
            "polygen_peak_concurrency",
            "polygen_conns_peak_open",
            "polygen_conns_open",
        ] {
            assert!(shown.contains(&format!("# TYPE {gauge} gauge")), "{gauge}");
        }
        assert!(
            shown.contains("polygen_errors_by_code_total{code=\"100\",mnemonic=\"sql-syntax\"} 1")
        );
    }

    #[test]
    fn error_code_family_present_even_when_empty() {
        let shown = ServiceMetrics::default().snapshot().render_prometheus();
        assert!(shown.contains("# TYPE polygen_errors_by_code_total counter"));
        assert!(shown.contains("# HELP polygen_errors_by_code_total "));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("two\nlines"), "two\\nlines");
    }
}
