//! Columnar batch execution with late tag materialization.
//!
//! The streaming kernels in [`crate::stream`] are tuple-at-a-time: every
//! fused stage walks `Vec<Cell>` rows, re-dispatches on the [`Value`]
//! enum per cell, and pushes mediator tags into every cell of every
//! surviving tuple at every stage. A [`ColumnBatch`] turns that inside
//! out:
//!
//! * **one vector per attribute** — each column's data portion is
//!   specialized to a typed vector ([`ColumnData`]) when the column is
//!   monomorphic, so a Select over an `INT` column is a tight `i64`
//!   comparison loop with no enum dispatch;
//! * **dedicated tag columns** — the origin and intermediate source sets
//!   live in their own vectors beside the data, untouched by filters;
//! * **a selection vector** — Select/Restrict only shrink a `Vec<u32>`
//!   of surviving row indices; no tuple is moved, cloned, or retagged
//!   mid-pipeline;
//! * **a scan-ordinal column** — each row remembers its position in the
//!   relation the batch was built from (index probes gather straight
//!   into a batch and keep the probed ordinals);
//! * **late tag materialization** — the paper's tag update (mediating
//!   sources join every surviving cell's intermediate set) is *recorded*
//!   in a pending mediator set and *applied* once per surviving row at
//!   emission ([`ColumnBatch::into_relation`]), not carried through
//!   every stage. Leaf scans retrieve whole columns from one source, so
//!   origin columns are detected as uniform at build time and a filter
//!   stage records its mediators with a single set union; per-row
//!   pending sets are allocated only when a filtered column's origins
//!   genuinely vary.
//!
//! Late tagging is byte-identical to the per-stage row semantics because
//! the predicates only read the data portion (tags never influence
//! filtering), and the tag update is a set union — associative,
//! commutative and idempotent — applied uniformly to all cells of a
//! surviving row. Folding the per-stage mediator sets into one pending
//! set per row and unioning it in at the end therefore produces exactly
//! the cells the row engine produces, in the same order (the selection
//! vector preserves scan order). Projection's duplicate collapse is the
//! executor's job at emission time — identical to the row engine, where
//! Project is fused last and dedups after all tag updates have landed.
//!
//! Every kernel here is differential-tested against the streaming and
//! eager counterparts; the row engine stays the reference semantics.

use crate::cell::Cell;
use crate::error::PolygenError;
use crate::relation::PolygenRelation;
use crate::source::SourceSet;
use crate::tuple::PolyTuple;
use polygen_flat::schema::Schema;
use polygen_flat::value::{Cmp, Value, F64};
use std::sync::Arc;

/// Is columnar batch execution enabled by default? Reads the
/// `POLYGEN_BATCH` environment variable once per process (mirroring
/// [`crate::stream::default_thread_count`]): `0`/`false`/`off`/`no`
/// force the row engine, anything else — including unset — enables the
/// batch kernels. CI pins both legs.
pub fn default_batch_enabled() -> bool {
    static RESOLVED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var("POLYGEN_BATCH") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    })
}

/// A column's data portion. Monomorphic columns are stored as flat typed
/// vectors so the filter kernels compare machine values without touching
/// the [`Value`] enum; mixed or nil-bearing columns fall back to
/// [`ColumnData::Values`], whose comparisons go through the reference
/// [`Value::satisfies`].
#[derive(Debug, Clone)]
enum ColumnData {
    Ints(Vec<i64>),
    Floats(Vec<F64>),
    Bools(Vec<bool>),
    Strs(Vec<Arc<str>>),
    Values(Vec<Value>),
}

impl ColumnData {
    /// Specialize a value vector: typed when every value shares the first
    /// value's (non-nil) variant, generic otherwise.
    fn specialize(values: Vec<Value>) -> ColumnData {
        match values.first() {
            Some(Value::Int(_)) if values.iter().all(|v| matches!(v, Value::Int(_))) => {
                ColumnData::Ints(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Int(i) => i,
                            _ => unreachable!("checked all-Int"),
                        })
                        .collect(),
                )
            }
            Some(Value::Float(_)) if values.iter().all(|v| matches!(v, Value::Float(_))) => {
                ColumnData::Floats(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Float(f) => f,
                            _ => unreachable!("checked all-Float"),
                        })
                        .collect(),
                )
            }
            Some(Value::Bool(_)) if values.iter().all(|v| matches!(v, Value::Bool(_))) => {
                ColumnData::Bools(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Bool(b) => b,
                            _ => unreachable!("checked all-Bool"),
                        })
                        .collect(),
                )
            }
            Some(Value::Str(_)) if values.iter().all(|v| matches!(v, Value::Str(_))) => {
                ColumnData::Strs(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) => s,
                            _ => unreachable!("checked all-Str"),
                        })
                        .collect(),
                )
            }
            _ => ColumnData::Values(values),
        }
    }

    /// Reconstitute row `r`'s datum as a [`Value`] (cheap: `Arc` bump for
    /// strings, copies for scalars).
    fn value_at(&self, r: usize) -> Value {
        match self {
            ColumnData::Ints(v) => Value::Int(v[r]),
            ColumnData::Floats(v) => Value::Float(v[r]),
            ColumnData::Bools(v) => Value::Bool(v[r]),
            ColumnData::Strs(v) => Value::Str(Arc::clone(&v[r])),
            ColumnData::Values(v) => v[r].clone(),
        }
    }
}

/// `selection ← selection ∩ {r | col[r] θ constant}`, mirroring
/// [`Value::theta_compare`] arm for arm: same numeric widening, same
/// "incomparable ⇒ unsatisfied (even for `<>`)" three-valued semantics.
/// The (column type, constant type) dispatch happens once out here; each
/// arm is a tight loop over one typed vector.
fn filter_const(selection: &mut Vec<u32>, data: &ColumnData, cmp: Cmp, constant: &Value) {
    match (data, constant) {
        (ColumnData::Ints(d), Value::Int(k)) => {
            selection.retain(|&r| cmp.admits(d[r as usize].cmp(k)));
        }
        (ColumnData::Ints(d), Value::Float(k)) => {
            selection.retain(|&r| cmp.admits(F64(d[r as usize] as f64).cmp(k)));
        }
        (ColumnData::Floats(d), Value::Float(k)) => {
            selection.retain(|&r| cmp.admits(d[r as usize].cmp(k)));
        }
        (ColumnData::Floats(d), Value::Int(k)) => {
            let k = F64(*k as f64);
            selection.retain(|&r| cmp.admits(d[r as usize].cmp(&k)));
        }
        (ColumnData::Strs(d), Value::Str(k)) => {
            selection.retain(|&r| cmp.admits(d[r as usize].as_ref().cmp(k.as_ref())));
        }
        (ColumnData::Bools(d), Value::Bool(k)) => {
            selection.retain(|&r| cmp.admits(d[r as usize].cmp(k)));
        }
        (ColumnData::Values(d), k) => {
            selection.retain(|&r| d[r as usize].satisfies(cmp, k));
        }
        // A typed column against a mismatched-type or nil constant:
        // θ-comparison is undefined, so no row satisfies it.
        _ => selection.clear(),
    }
}

/// `selection ← selection ∩ {r | a[r] θ b[r]}` (see [`filter_const`]).
fn filter_pair(selection: &mut Vec<u32>, a: &ColumnData, b: &ColumnData, cmp: Cmp) {
    match (a, b) {
        (ColumnData::Ints(x), ColumnData::Ints(y)) => {
            selection.retain(|&r| cmp.admits(x[r as usize].cmp(&y[r as usize])));
        }
        (ColumnData::Floats(x), ColumnData::Floats(y)) => {
            selection.retain(|&r| cmp.admits(x[r as usize].cmp(&y[r as usize])));
        }
        (ColumnData::Ints(x), ColumnData::Floats(y)) => {
            selection.retain(|&r| cmp.admits(F64(x[r as usize] as f64).cmp(&y[r as usize])));
        }
        (ColumnData::Floats(x), ColumnData::Ints(y)) => {
            selection.retain(|&r| cmp.admits(x[r as usize].cmp(&F64(y[r as usize] as f64))));
        }
        (ColumnData::Strs(x), ColumnData::Strs(y)) => {
            selection.retain(|&r| cmp.admits(x[r as usize].as_ref().cmp(y[r as usize].as_ref())));
        }
        (ColumnData::Bools(x), ColumnData::Bools(y)) => {
            selection.retain(|&r| cmp.admits(x[r as usize].cmp(&y[r as usize])));
        }
        (ColumnData::Values(x), y) => {
            selection.retain(|&r| x[r as usize].satisfies(cmp, &y.value_at(r as usize)));
        }
        (x, ColumnData::Values(y)) => {
            selection.retain(|&r| x.value_at(r as usize).satisfies(cmp, &y[r as usize]));
        }
        // Mismatched typed columns (INT vs STR, BOOL vs FLOAT, …):
        // θ-comparison is undefined for every row.
        _ => selection.clear(),
    }
}

/// A column's tag portion. Leaf scans retrieve whole columns from one
/// source, so the origin sets of a column are almost always identical
/// row to row (and the intermediate sets all empty) — stored as a single
/// [`TagColumn::Uniform`] set, which lets the filter stages record
/// mediators with one union per *stage* instead of one per surviving
/// row. Columns whose tags genuinely vary keep the row-aligned vector.
#[derive(Debug, Clone)]
enum TagColumn {
    Uniform(SourceSet),
    PerRow(Vec<SourceSet>),
}

impl TagColumn {
    fn from_rows(rows: Vec<SourceSet>) -> TagColumn {
        match rows.first() {
            Some(first) if rows.iter().all(|s| s == first) => TagColumn::Uniform(first.clone()),
            Some(_) => TagColumn::PerRow(rows),
            None => TagColumn::Uniform(SourceSet::empty()),
        }
    }

    fn at(&self, r: usize) -> &SourceSet {
        match self {
            TagColumn::Uniform(s) => s,
            TagColumn::PerRow(v) => &v[r],
        }
    }
}

/// One attribute of a batch: the typed data vector plus the two tag
/// portions, row-aligned. Columns are `Arc`-shared so projection is a
/// pointer swap and cloning a batch never copies cell payloads.
#[derive(Debug)]
struct Column {
    data: ColumnData,
    origin: TagColumn,
    intermediate: TagColumn,
}

/// A column-oriented slice of a polygen relation: one [`Column`] per
/// attribute, a selection vector of surviving row indices, a pending
/// mediator set per row (the late-tag accumulator), and the scan
/// ordinals the rows were gathered from.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    rows: usize,
    /// Indices (into the columns) of rows still alive, in scan order.
    selection: Vec<u32>,
    /// Mediating sources recorded by filter stages over uniform-origin
    /// columns — shared by every surviving row, unioned once per stage.
    pending_all: SourceSet,
    /// Per-row mediators, allocated lazily and only when a filter stage
    /// reads a column whose origins vary by row.
    pending_rows: Option<Vec<SourceSet>>,
    /// Each row's ordinal in the relation the batch was gathered from.
    ordinals: Vec<u32>,
}

impl ColumnBatch {
    /// Transpose owned tuples into columns (cells move — no clones).
    pub fn from_parts(schema: Arc<Schema>, tuples: Vec<PolyTuple>) -> Self {
        let rows = tuples.len();
        u32::try_from(rows).expect("batch rows fit the u32 selection vector");
        let degree = schema.degree();
        let mut data: Vec<Vec<Value>> = (0..degree).map(|_| Vec::with_capacity(rows)).collect();
        let mut origin: Vec<Vec<SourceSet>> =
            (0..degree).map(|_| Vec::with_capacity(rows)).collect();
        let mut intermediate: Vec<Vec<SourceSet>> =
            (0..degree).map(|_| Vec::with_capacity(rows)).collect();
        for tuple in tuples {
            debug_assert_eq!(tuple.len(), degree, "batch tuples match batch schema");
            for (j, cell) in tuple.into_iter().enumerate() {
                data[j].push(cell.datum);
                origin[j].push(cell.origin);
                intermediate[j].push(cell.intermediate);
            }
        }
        let columns = data
            .into_iter()
            .zip(origin)
            .zip(intermediate)
            .map(|((d, o), i)| {
                Arc::new(Column {
                    data: ColumnData::specialize(d),
                    origin: TagColumn::from_rows(o),
                    intermediate: TagColumn::from_rows(i),
                })
            })
            .collect();
        ColumnBatch {
            schema,
            columns,
            rows,
            selection: (0..rows as u32).collect(),
            pending_all: SourceSet::empty(),
            pending_rows: None,
            ordinals: (0..rows as u32).collect(),
        }
    }

    /// Lift a whole relation into a batch (tuples move).
    pub fn from_relation(rel: PolygenRelation) -> Self {
        let schema = Arc::clone(rel.schema());
        ColumnBatch::from_parts(schema, rel.into_tuples())
    }

    /// Gather the rows at `ordinals` out of a base relation — how an
    /// index probe emits straight into the columnar world. The batch
    /// remembers the probed ordinals; emitting it unchanged reproduces
    /// the probe relation byte for byte.
    pub fn gather(base: &PolygenRelation, ordinals: &[u32]) -> Self {
        let tuples: Vec<PolyTuple> = ordinals
            .iter()
            .map(|&o| base.tuples()[o as usize].clone())
            .collect();
        let mut batch = ColumnBatch::from_parts(Arc::clone(base.schema()), tuples);
        batch.ordinals = ordinals.to_vec();
        batch
    }

    /// The batch's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Surviving row count.
    pub fn len(&self) -> usize {
        self.selection.len()
    }

    /// Is every row filtered out (or the batch empty)?
    pub fn is_empty(&self) -> bool {
        self.selection.is_empty()
    }

    /// Total rows the batch was built with (alive or not).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Surviving row indices, in scan order.
    pub fn selection(&self) -> &[u32] {
        &self.selection
    }

    /// Scan ordinals of the batch's rows in the relation it was gathered
    /// from (identity for [`ColumnBatch::from_relation`]).
    pub fn ordinals(&self) -> &[u32] {
        &self.ordinals
    }

    /// Record a filter stage's mediators (the origins of the cells it
    /// read) for the current survivors. Uniform columns fold into the
    /// batch-wide pending set — one union per stage; varying columns
    /// union per survivor into the lazily-allocated per-row vector.
    fn record_mediators(&mut self, origin: &TagColumn) {
        match origin {
            TagColumn::Uniform(o) => self.pending_all.union_with(o),
            TagColumn::PerRow(v) => {
                let rows = self.rows;
                let pending = self
                    .pending_rows
                    .get_or_insert_with(|| vec![SourceSet::empty(); rows]);
                for &row in &self.selection {
                    pending[row as usize].union_with(&v[row as usize]);
                }
            }
        }
    }

    /// Select stage: `p[x θ const]`. Survivors stay in the selection
    /// vector and record the x-cell's origin as pending mediators; no
    /// cell is touched.
    pub fn select(&mut self, x: &str, cmp: Cmp, constant: &Value) -> Result<(), PolygenError> {
        let xi = self.schema.index_of(x)?.0;
        let col = Arc::clone(&self.columns[xi]);
        filter_const(&mut self.selection, &col.data, cmp, constant);
        self.record_mediators(&col.origin);
        Ok(())
    }

    /// Restrict stage: `p[x θ y]`. Survivors record both cells' origins
    /// as pending mediators.
    pub fn restrict(&mut self, x: &str, cmp: Cmp, y: &str) -> Result<(), PolygenError> {
        let xi = self.schema.index_of(x)?.0;
        let yi = self.schema.index_of(y)?.0;
        let cx = Arc::clone(&self.columns[xi]);
        let cy = Arc::clone(&self.columns[yi]);
        filter_pair(&mut self.selection, &cx.data, &cy.data, cmp);
        self.record_mediators(&cx.origin);
        self.record_mediators(&cy.origin);
        Ok(())
    }

    /// Projection as a column-pointer swap — no per-tuple rebuild. The
    /// duplicate collapse the paper's Project performs happens at
    /// emission (after [`ColumnBatch::into_relation`], via
    /// [`PolygenRelation::merge_duplicates`]), which is equivalent
    /// because batch-eligible pipelines only project as the final stage.
    pub fn project(&mut self, attrs: &[&str]) -> Result<(), PolygenError> {
        let idx = self.schema.indices_of(attrs)?;
        let schema = Arc::new(self.schema.project(&idx, self.schema.name())?);
        self.columns = idx.iter().map(|&i| Arc::clone(&self.columns[i])).collect();
        self.schema = schema;
        Ok(())
    }

    /// Relabel attributes positionally (schema swap; columns untouched).
    pub fn rename(&mut self, names: &[&str]) -> Result<(), PolygenError> {
        self.schema = Arc::new(self.schema.relabeled_attrs(names)?);
        Ok(())
    }

    /// Emit the surviving rows as a relation, materializing the late
    /// tags: every cell of row `r` gets `pending[r]` unioned into its
    /// intermediate set — the one-shot equivalent of the per-stage
    /// `tag_all` the row engine performs.
    pub fn into_relation(self) -> PolygenRelation {
        let pending_rows = self.pending_rows.as_deref();
        let mut tuples = Vec::with_capacity(self.selection.len());
        for &row in &self.selection {
            let r = row as usize;
            let tuple: PolyTuple = self
                .columns
                .iter()
                .map(|col| {
                    let mut intermediate = col.intermediate.at(r).clone();
                    intermediate.union_with(&self.pending_all);
                    if let Some(pending) = pending_rows {
                        intermediate.union_with(&pending[r]);
                    }
                    Cell::new(col.data.value_at(r), col.origin.at(r).clone(), intermediate)
                })
                .collect();
            tuples.push(tuple);
        }
        PolygenRelation::from_tuples(self.schema, tuples).expect("batch columns match batch schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::source::SourceId;
    use crate::stream::TupleStream;
    use polygen_flat::relation::Relation;

    fn base() -> PolygenRelation {
        let f = Relation::build("ALUMNUS", &["ANAME", "DEG", "ORG"])
            .row(&["Bob Swanson", "MBA", "Genentech"])
            .row(&["Stu Madnick", "MBA", "MIT"])
            .row(&["Ken Olsen", "MS", "DEC"])
            .row(&["John Reed", "MBA", "Citicorp"])
            .finish()
            .unwrap();
        PolygenRelation::from_flat(&f, SourceId(0))
    }

    /// A relation exercising every typed column plus the generic
    /// fallback (a nil-bearing mixed column).
    fn typed_base() -> PolygenRelation {
        use crate::tuple::PolyTuple;
        let schema = Arc::new(
            Schema::new("T", &["ID", "SCORE", "NAME", "FLAG", "MAYBE"]).expect("valid test schema"),
        );
        let rows: Vec<(i64, f64, &str, bool, Value)> = vec![
            (1, 3.5, "ada", true, Value::int(7)),
            (2, 1.25, "bob", false, Value::Null),
            (3, 9.0, "cyd", true, Value::str("x")),
            (4, 3.5, "dee", false, Value::int(7)),
        ];
        let tuples: Vec<PolyTuple> = rows
            .into_iter()
            .map(|(id, score, name, flag, maybe)| {
                vec![
                    Cell::retrieved(Value::int(id), SourceId(0)),
                    Cell::retrieved(Value::float(score), SourceId(0)),
                    Cell::retrieved(Value::str(name), SourceId(1)),
                    Cell::retrieved(Value::Bool(flag), SourceId(1)),
                    Cell::retrieved(maybe, SourceId(2)),
                ]
            })
            .collect();
        PolygenRelation::from_tuples(schema, tuples).unwrap()
    }

    /// The batch pipeline an executor runs: stages, emission, dedup if
    /// projected.
    fn run_batch(
        rel: PolygenRelation,
        f: impl FnOnce(&mut ColumnBatch) -> bool,
    ) -> PolygenRelation {
        let mut b = ColumnBatch::from_relation(rel);
        let projected = f(&mut b);
        let mut rel = b.into_relation();
        if projected {
            rel.merge_duplicates();
        }
        rel
    }

    #[test]
    fn select_matches_stream_byte_identically() {
        let rel = base();
        let mut s = TupleStream::from_relation(rel.clone());
        s.select("DEG", Cmp::Eq, &Value::str("MBA")).unwrap();
        let got = run_batch(rel, |b| {
            b.select("DEG", Cmp::Eq, &Value::str("MBA")).unwrap();
            false
        });
        assert_eq!(got.tuples(), s.into_relation().tuples());
    }

    #[test]
    fn restrict_matches_stream_byte_identically() {
        let rel = base();
        let mut s = TupleStream::from_relation(rel.clone());
        s.restrict("ANAME", Cmp::Ne, "ORG").unwrap();
        let got = run_batch(rel, |b| {
            b.restrict("ANAME", Cmp::Ne, "ORG").unwrap();
            false
        });
        assert_eq!(got.tuples(), s.into_relation().tuples());
    }

    #[test]
    fn fused_chain_with_projection_matches_stream() {
        let rel = base();
        let mut s = TupleStream::from_relation(rel.clone());
        s.select("DEG", Cmp::Eq, &Value::str("MBA")).unwrap();
        s.restrict("ANAME", Cmp::Ne, "ORG").unwrap();
        s.project(&["DEG"]).unwrap();
        let got = run_batch(rel, |b| {
            b.select("DEG", Cmp::Eq, &Value::str("MBA")).unwrap();
            b.restrict("ANAME", Cmp::Ne, "ORG").unwrap();
            b.project(&["DEG"]).unwrap();
            true
        });
        assert_eq!(got.len(), 1, "duplicates collapsed at emission");
        assert_eq!(got.tuples(), s.into_relation().tuples());
    }

    #[test]
    fn projection_dedup_absorbs_tags_like_eager_project() {
        let rel = base();
        let eager = algebra::project(&rel, &["DEG"]).unwrap();
        let got = run_batch(rel, |b| {
            b.project(&["DEG"]).unwrap();
            true
        });
        assert!(got.tagged_set_eq(&eager));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn typed_columns_match_generic_kernels() {
        let rel = typed_base();
        for (x, cmp, k) in [
            ("ID", Cmp::Ge, Value::int(2)),
            ("SCORE", Cmp::Lt, Value::float(4.0)),
            ("NAME", Cmp::Gt, Value::str("bob")),
            ("FLAG", Cmp::Eq, Value::Bool(true)),
            ("MAYBE", Cmp::Eq, Value::int(7)),
            // Mixed-type predicates: Int column vs Float constant and
            // vice versa widen; mismatches and nils never satisfy.
            ("ID", Cmp::Le, Value::float(2.5)),
            ("SCORE", Cmp::Ge, Value::int(3)),
            ("ID", Cmp::Ne, Value::str("zzz")),
            ("NAME", Cmp::Eq, Value::Null),
        ] {
            let mut s = TupleStream::from_relation(rel.clone());
            s.select(x, cmp, &k).unwrap();
            let got = run_batch(rel.clone(), |b| {
                b.select(x, cmp, &k).unwrap();
                false
            });
            assert_eq!(
                got.tuples(),
                s.into_relation().tuples(),
                "select {x} {cmp:?} {k}"
            );
        }
        for (x, cmp, y) in [
            ("ID", Cmp::Lt, "SCORE"),
            ("SCORE", Cmp::Ge, "ID"),
            ("ID", Cmp::Eq, "ID"),
            ("NAME", Cmp::Ne, "NAME"),
            ("ID", Cmp::Eq, "NAME"),
            ("MAYBE", Cmp::Eq, "ID"),
            ("ID", Cmp::Eq, "MAYBE"),
        ] {
            let mut s = TupleStream::from_relation(rel.clone());
            s.restrict(x, cmp, y).unwrap();
            let got = run_batch(rel.clone(), |b| {
                b.restrict(x, cmp, y).unwrap();
                false
            });
            assert_eq!(
                got.tuples(),
                s.into_relation().tuples(),
                "restrict {x} {cmp:?} {y}"
            );
        }
    }

    #[test]
    fn late_tags_accumulate_across_chained_stages() {
        let rel = typed_base();
        let mut s = TupleStream::from_relation(rel.clone());
        s.select("ID", Cmp::Ge, &Value::int(1)).unwrap();
        s.restrict("NAME", Cmp::Ne, "MAYBE").unwrap();
        s.select("FLAG", Cmp::Eq, &Value::Bool(true)).unwrap();
        let got = run_batch(rel, |b| {
            b.select("ID", Cmp::Ge, &Value::int(1)).unwrap();
            b.restrict("NAME", Cmp::Ne, "MAYBE").unwrap();
            b.select("FLAG", Cmp::Eq, &Value::Bool(true)).unwrap();
            false
        });
        assert_eq!(got.tuples(), s.into_relation().tuples());
        // The mediators of *all* stages landed: ID's source 0, NAME's
        // source 1 and MAYBE's source 2, on every surviving cell.
        for t in got.tuples() {
            for c in t {
                for s in [SourceId(0), SourceId(1), SourceId(2)] {
                    assert!(c.intermediate.contains(s));
                }
            }
        }
    }

    /// Columns whose tags vary row to row take the per-row pending path
    /// (no uniform shortcut) and must still match the stream kernels
    /// byte for byte.
    #[test]
    fn varying_tags_take_the_per_row_path_and_match_streams() {
        let schema = Arc::new(Schema::new("V", &["A", "B"]).expect("valid test schema"));
        let tuples: Vec<PolyTuple> = (0i64..8)
            .map(|i| {
                let mut b = Cell::retrieved(Value::int(100 - i), SourceId(7));
                b.intermediate = SourceSet::singleton(SourceId((i % 2) as u16 + 20));
                vec![Cell::retrieved(Value::int(i), SourceId((i % 3) as u16)), b]
            })
            .collect();
        let rel = PolygenRelation::from_tuples(schema, tuples).unwrap();
        let mut s = TupleStream::from_relation(rel.clone());
        s.select("A", Cmp::Ge, &Value::int(2)).unwrap();
        s.restrict("A", Cmp::Lt, "B").unwrap();
        let got = run_batch(rel, |b| {
            b.select("A", Cmp::Ge, &Value::int(2)).unwrap();
            b.restrict("A", Cmp::Lt, "B").unwrap();
            false
        });
        assert_eq!(got.tuples(), s.into_relation().tuples());
    }

    #[test]
    fn gather_roundtrips_and_keeps_ordinals() {
        let rel = base();
        let ordinals = [3u32, 1, 1];
        let batch = ColumnBatch::gather(&rel, &ordinals);
        assert_eq!(batch.ordinals(), &ordinals);
        assert_eq!(batch.rows(), 3);
        let expect: Vec<PolyTuple> = ordinals
            .iter()
            .map(|&o| rel.tuples()[o as usize].clone())
            .collect();
        assert_eq!(batch.into_relation().tuples(), expect.as_slice());
    }

    #[test]
    fn rename_and_unknown_attrs_behave_like_stream() {
        let rel = base();
        let mut b = ColumnBatch::from_relation(rel.clone());
        assert!(b.select("NOPE", Cmp::Eq, &Value::int(1)).is_err());
        assert!(b.restrict("DEG", Cmp::Eq, "NOPE").is_err());
        assert!(b.project(&["NOPE"]).is_err());
        assert!(b.rename(&["ONLY"]).is_err(), "arity checked");
        b.rename(&["N", "D", "O"]).unwrap();
        assert!(b
            .into_relation()
            .tagged_set_eq(&rel.rename_attrs(&["N", "D", "O"]).unwrap()));
    }

    #[test]
    fn selection_vector_filters_without_touching_columns() {
        let rel = typed_base();
        let mut b = ColumnBatch::from_relation(rel);
        assert_eq!((b.len(), b.rows()), (4, 4));
        b.select("ID", Cmp::Gt, &Value::int(2)).unwrap();
        assert_eq!((b.len(), b.rows()), (2, 4), "only the selection shrank");
        assert_eq!(b.selection(), &[2, 3]);
        assert!(!b.is_empty());
        b.select("ID", Cmp::Gt, &Value::int(99)).unwrap();
        assert!(b.is_empty());
        assert!(b.into_relation().tuples().is_empty());
    }

    #[test]
    fn batch_toggle_resolves() {
        // Whatever the environment says, the resolution is stable.
        assert_eq!(default_batch_enabled(), default_batch_enabled());
    }
}
