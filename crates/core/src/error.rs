//! Error type of the polygen layer.

use polygen_flat::error::FlatError;
use std::fmt;

/// Errors from polygen algebra evaluation and relation construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygenError {
    /// A substrate (schema / arity / attribute) error.
    Flat(FlatError),
    /// Coalesce found two non-nil, unequal data values and the conflict
    /// policy was [`Strict`](crate::algebra::coalesce::ConflictPolicy) —
    /// the "data conflict amongst data retrieved from different sources"
    /// the paper's §V flags as the next research problem.
    CoalesceConflict {
        attribute: String,
        left: String,
        right: String,
    },
    /// Merge needs the polygen scheme's primary key present in every
    /// operand.
    MissingMergeKey { relation: String, key: String },
    /// Merge requires at least one operand.
    EmptyMerge,
}

impl fmt::Display for PolygenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygenError::Flat(e) => write!(f, "{e}"),
            PolygenError::CoalesceConflict {
                attribute,
                left,
                right,
            } => write!(
                f,
                "coalesce conflict on `{attribute}`: `{left}` vs `{right}` (both non-nil)"
            ),
            PolygenError::MissingMergeKey { relation, key } => {
                write!(f, "merge operand `{relation}` lacks key attribute `{key}`")
            }
            PolygenError::EmptyMerge => write!(f, "merge requires at least one relation"),
        }
    }
}

impl std::error::Error for PolygenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolygenError::Flat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlatError> for PolygenError {
    fn from(e: FlatError) -> Self {
        PolygenError::Flat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_flat_errors() {
        let e: PolygenError = FlatError::EmptySchema {
            relation: "X".into(),
        }
        .into();
        assert!(e.to_string().contains("at least one attribute"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn conflict_display() {
        let e = PolygenError::CoalesceConflict {
            attribute: "HQ".into(),
            left: "NY".into(),
            right: "Boston".into(),
        };
        assert!(e.to_string().contains("coalesce conflict on `HQ`"));
    }
}
