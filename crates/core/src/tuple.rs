//! Polygen tuples and the `t(d)` / `t(o)` / `t(i)` projections.
//!
//! §II uses `t(d)` for a tuple's data portion, `t(o)` for its originating
//! sources, and `t(i)` for its intermediate sources; `t[x]` addresses the
//! cell of attribute `x`. A tuple here is simply a vector of [`Cell`]s —
//! the schema lives on the relation.

use crate::cell::Cell;
use crate::source::SourceSet;
use polygen_flat::value::Value;

/// One polygen tuple.
pub type PolyTuple = Vec<Cell>;

/// `t(d)` — clone out the data portion of a tuple.
pub fn data_of(tuple: &[Cell]) -> Vec<Value> {
    tuple.iter().map(|c| c.datum.clone()).collect()
}

/// `t[X](d)` — the data portion of a sublist of attribute positions.
pub fn data_at(tuple: &[Cell], indices: &[usize]) -> Vec<Value> {
    indices.iter().map(|&i| tuple[i].datum.clone()).collect()
}

/// `t(o)` — the union of every cell's originating sources.
pub fn origins_of(tuple: &[Cell]) -> SourceSet {
    let mut s = SourceSet::empty();
    for c in tuple {
        s.union_with(&c.origin);
    }
    s
}

/// `t(i)` — the union of every cell's intermediate sources.
pub fn intermediates_of(tuple: &[Cell]) -> SourceSet {
    let mut s = SourceSet::empty();
    for c in tuple {
        s.union_with(&c.intermediate);
    }
    s
}

/// Restrict's tag update applied tuple-wide:
/// `t'[w](i) = t[w](i) ∪ sources ∀ w ∈ attrs(p)`.
pub fn add_intermediate_all(tuple: &mut [Cell], sources: &SourceSet) {
    if sources.is_empty() {
        return;
    }
    for c in tuple {
        c.add_intermediate(sources);
    }
}

/// Attribute-wise tag merge for two tuples equal on the data portion
/// (Union's match branch and Project's duplicate collapse).
pub fn absorb_tuple_tags(dst: &mut [Cell], src: &[Cell]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        d.absorb_tags(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceId;

    fn cell(d: &str, o: &[u16], i: &[u16]) -> Cell {
        Cell::new(
            Value::str(d),
            o.iter().map(|&x| SourceId(x)).collect(),
            i.iter().map(|&x| SourceId(x)).collect(),
        )
    }

    #[test]
    fn projections() {
        let t = vec![cell("a", &[0], &[1]), cell("b", &[2], &[])];
        assert_eq!(data_of(&t), vec![Value::str("a"), Value::str("b")]);
        assert_eq!(data_at(&t, &[1]), vec![Value::str("b")]);
        let o = origins_of(&t);
        assert!(o.contains(SourceId(0)) && o.contains(SourceId(2)));
        assert_eq!(o.len(), 2);
        let i = intermediates_of(&t);
        assert_eq!(i.len(), 1);
        assert!(i.contains(SourceId(1)));
    }

    #[test]
    fn add_intermediate_all_touches_every_cell() {
        let mut t = vec![cell("a", &[0], &[]), cell("b", &[1], &[])];
        add_intermediate_all(&mut t, &SourceSet::singleton(SourceId(9)));
        assert!(t.iter().all(|c| c.intermediate.contains(SourceId(9))));
        // Empty update is a no-op fast path.
        add_intermediate_all(&mut t, &SourceSet::empty());
        assert!(t.iter().all(|c| c.intermediate.len() == 1));
    }

    #[test]
    fn absorb_tuple_tags_is_attrwise() {
        let mut a = vec![cell("x", &[0], &[]), cell("y", &[0], &[])];
        let b = vec![cell("x", &[1], &[2]), cell("y", &[3], &[])];
        absorb_tuple_tags(&mut a, &b);
        assert!(a[0].origin.contains(SourceId(1)));
        assert!(a[0].intermediate.contains(SourceId(2)));
        assert!(a[1].origin.contains(SourceId(3)));
        assert!(!a[1].origin.contains(SourceId(1)));
    }
}
