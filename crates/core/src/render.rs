//! Paper-style rendering of tagged relations.
//!
//! The paper prints each cell as `datum, {origins}, {intermediates}` —
//! e.g. `Genentech, {AD, CD}, {AD, CD}` or `nil, {}, {AD}` (Tables 4–9,
//! A1–A9). This module reproduces that presentation so the golden tests
//! and the `paper_tables` example can be compared against the PDF by eye.

use crate::cell::Cell;
use crate::relation::PolygenRelation;
use crate::source::SourceRegistry;
use std::fmt::Write as _;

/// `datum, {o}, {i}` — one cell in the paper's notation.
pub fn render_cell(cell: &Cell, reg: &SourceRegistry) -> String {
    format!(
        "{}, {}, {}",
        cell.datum,
        reg.render_set(&cell.origin),
        reg.render_set(&cell.intermediate)
    )
}

/// An aligned ASCII table of the full tagged relation.
pub fn render_relation(p: &PolygenRelation, reg: &SourceRegistry) -> String {
    let headers: Vec<String> = p.schema().attrs().iter().map(|a| a.to_string()).collect();
    let body: Vec<Vec<String>> = p
        .tuples()
        .iter()
        .map(|t| t.iter().map(|c| render_cell(c, reg)).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", p.schema());
    let emit = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, " {:w$} |", c, w = widths[i]);
        }
        out.push('\n');
    };
    emit(&mut out, &headers);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{:-<w$}|", "", w = w + 2);
    }
    out.push('\n');
    for row in &body {
        emit(&mut out, row);
    }
    out
}

/// A compact one-line-per-tuple form used in explain output:
/// `(a, {AD}, {} | b, {CD}, {AD})`.
pub fn render_tuple(t: &[Cell], reg: &SourceRegistry) -> String {
    let mut out = String::from("(");
    for (i, c) in t.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        out.push_str(&render_cell(c, reg));
    }
    out.push(')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceId, SourceSet};
    use polygen_flat::relation::Relation;
    use polygen_flat::value::Value;

    fn setup() -> (PolygenRelation, SourceRegistry) {
        let mut reg = SourceRegistry::new();
        let ad = reg.intern("AD");
        let flat = Relation::build("BUSINESS", &["BNAME", "IND"])
            .row(&["IBM", "High Tech"])
            .finish()
            .unwrap();
        (PolygenRelation::from_flat(&flat, ad), reg)
    }

    #[test]
    fn cell_matches_paper_notation() {
        let (p, reg) = setup();
        assert_eq!(render_cell(&p.tuples()[0][0], &reg), "IBM, {AD}, {}");
    }

    #[test]
    fn nil_cell_notation() {
        let (_, reg) = setup();
        let nil = Cell::nil_padding(SourceSet::singleton(SourceId(0)));
        assert_eq!(render_cell(&nil, &reg), "nil, {}, {AD}");
    }

    #[test]
    fn relation_table_contains_all_cells() {
        let (p, reg) = setup();
        let shown = render_relation(&p, &reg);
        assert!(shown.contains("BNAME"));
        assert!(shown.contains("IBM, {AD}, {}"));
        assert!(shown.contains("High Tech, {AD}, {}"));
    }

    #[test]
    fn tuple_one_liner() {
        let (p, reg) = setup();
        let line = render_tuple(&p.tuples()[0], &reg);
        assert_eq!(line, "(IBM, {AD}, {} | High Tech, {AD}, {})");
        let _ = Value::Null; // keep import used under cfg(test)
    }
}
