//! Source identity and source sets — the "gen" in polygen.
//!
//! §II: each cell of a polygen relation carries two sets of local databases
//! (LDs): `c(o)`, "the local databases from which the datum originates",
//! and `c(i)`, "the intermediate local databases whose data led to the
//! selection of the datum". The paper targets "a federated database
//! environment with hundreds of databases", so the set type matters:
//!
//! * [`SourceId`] — a registry-interned identifier for one local database.
//! * [`SourceRegistry`] — the name ↔ id intern table (part of the CIS data
//!   dictionary of Figure 1).
//! * [`SourceSet`] — the workhorse: a bitset storing up to 128 sources
//!   inline (two machine words, no heap traffic on the tag-update hot path)
//!   and spilling to a heap vector of words beyond that. Every polygen
//!   operator unions these sets per cell, so `union_with` is the hottest
//!   operation in the entire system.
//!
//! The [`alt`] submodule provides two deliberately naive alternative
//! representations (sorted vector, B-tree set) behind a common trait, used
//! by the `sourceset_repr` benchmark to quantify the representation choice
//! (an ablation called out in `DESIGN.md`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of one local database (LD), interned in a [`SourceRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u16);

impl SourceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Intern table mapping local-database names ("AD", "PD", "CD", …) to
/// [`SourceId`]s. One registry exists per federation and is shared via
/// `Arc` by the catalog, the LQP registry and the renderer.
#[derive(Debug, Default, Clone)]
pub struct SourceRegistry {
    names: Vec<Arc<str>>,
    /// name → id index; without it every `intern` linear-scans `names`
    /// and registry build-up for an n-source federation is O(n²).
    by_name: HashMap<Arc<str>, SourceId>,
}

impl SourceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a name, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> SourceId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = SourceId(u16::try_from(self.names.len()).expect("more than 65535 sources"));
        let name: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&name));
        self.by_name.insert(name, id);
        id
    }

    /// Find an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SourceId> {
        self.by_name.get(name).copied()
    }

    /// The name of an id (panics on a foreign id — ids only come from
    /// `intern`).
    pub fn name(&self, id: SourceId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned sources.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SourceId(i as u16), n.as_ref()))
    }

    /// Render a source set as the paper prints them: `{AD, CD}`.
    pub fn render_set(&self, set: &SourceSet) -> String {
        let mut out = String::from("{");
        for (i, id) in set.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.name(id));
        }
        out.push('}');
        out
    }
}

const INLINE_WORDS: usize = 2;
const INLINE_BITS: usize = INLINE_WORDS * 64;

/// A set of [`SourceId`]s: two inline words (sources 0–127), heap beyond.
#[derive(Clone)]
enum Repr {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// The set type carried twice by every polygen cell.
///
/// Canonical-form invariant (maintained by every mutator): the heap
/// representation is used only when a bit at index ≥ 128 is set, and never
/// has trailing zero words — so `Eq`/`Hash` can compare representations
/// directly.
#[derive(Clone)]
pub struct SourceSet(Repr);

impl SourceSet {
    /// The empty set (the intermediate tag of every freshly retrieved
    /// cell — "sources are tagged after data has been retrieved").
    pub fn empty() -> Self {
        SourceSet(Repr::Inline([0; INLINE_WORDS]))
    }

    /// A one-element set (the origin tag of a retrieved cell).
    pub fn singleton(id: SourceId) -> Self {
        let mut s = SourceSet::empty();
        s.insert(id);
        s
    }

    /// Build from any id iterator.
    pub fn from_ids<I: IntoIterator<Item = SourceId>>(ids: I) -> Self {
        let mut s = SourceSet::empty();
        for id in ids {
            s.insert(id);
        }
        s
    }

    fn words(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline(w) => w,
            Repr::Heap(v) => v,
        }
    }

    /// Insert one id.
    pub fn insert(&mut self, id: SourceId) {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        match &mut self.0 {
            Repr::Inline(w) if id.index() < INLINE_BITS => {
                w[word] |= 1 << bit;
            }
            Repr::Inline(w) => {
                let mut v = w.to_vec();
                v.resize(word + 1, 0);
                v[word] |= 1 << bit;
                self.0 = Repr::Heap(v);
            }
            Repr::Heap(v) => {
                if v.len() <= word {
                    v.resize(word + 1, 0);
                }
                v[word] |= 1 << bit;
            }
        }
        self.canonicalize();
    }

    /// In-place union — the hot path of Restrict, Union, Difference,
    /// Coalesce and the outer joins.
    pub fn union_with(&mut self, other: &SourceSet) {
        match (&mut self.0, &other.0) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x |= y;
                }
            }
            (Repr::Heap(a), rhs) => {
                let bw = match rhs {
                    Repr::Inline(w) => &w[..],
                    Repr::Heap(v) => v,
                };
                if a.len() < bw.len() {
                    a.resize(bw.len(), 0);
                }
                for (x, y) in a.iter_mut().zip(bw) {
                    *x |= y;
                }
            }
            (lhs @ Repr::Inline(_), Repr::Heap(b)) => {
                let mut v = b.clone();
                if let Repr::Inline(a) = lhs {
                    for (i, x) in a.iter().enumerate() {
                        v[i] |= x;
                    }
                }
                *lhs = Repr::Heap(v);
            }
        }
        self.canonicalize();
    }

    /// The union of two sets (allocating convenience form).
    pub fn union(&self, other: &SourceSet) -> SourceSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Membership test.
    pub fn contains(&self, id: SourceId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        self.words().get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is this the empty set?
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &SourceSet) -> bool {
        let (a, b) = (self.words(), other.words());
        a.iter()
            .enumerate()
            .all(|(i, &w)| w & !b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |bit| {
                if w & (1u64 << bit) != 0 {
                    Some(SourceId((wi * 64 + bit) as u16))
                } else {
                    None
                }
            })
        })
    }

    /// Restore the canonical-form invariant after mutation.
    fn canonicalize(&mut self) {
        if let Repr::Heap(v) = &mut self.0 {
            while v.len() > INLINE_WORDS && *v.last().expect("nonempty") == 0 {
                v.pop();
            }
            if v.len() <= INLINE_WORDS {
                let mut w = [0u64; INLINE_WORDS];
                w[..v.len()].copy_from_slice(v);
                self.0 = Repr::Inline(w);
            }
        }
    }
}

impl Default for SourceSet {
    fn default() -> Self {
        SourceSet::empty()
    }
}

impl PartialEq for SourceSet {
    fn eq(&self, other: &Self) -> bool {
        self.words() == other.words()
    }
}
impl Eq for SourceSet {}

impl PartialOrd for SourceSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SourceSet {
    /// Lexicographic on ascending member ids — a stable order for relation
    /// canonicalization in tests.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl std::hash::Hash for SourceSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.words().hash(state);
    }
}

impl fmt::Debug for SourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<SourceId> for SourceSet {
    fn from_iter<I: IntoIterator<Item = SourceId>>(iter: I) -> Self {
        SourceSet::from_ids(iter)
    }
}

pub mod alt {
    //! Alternative source-set representations for the ablation benchmark.
    //!
    //! The paper never discusses the tag-set data structure (in 1990 three
    //! databases fit in anything); with "hundreds of databases" the choice
    //! shows. `sourceset_repr` benches these against the bitset.

    use super::SourceId;
    use std::collections::BTreeSet;

    /// Minimal set interface shared by all representations.
    pub trait TagSet: Clone + Default {
        /// Insert one id.
        fn insert_id(&mut self, id: SourceId);
        /// In-place union.
        fn union_with_set(&mut self, other: &Self);
        /// Membership.
        fn contains_id(&self, id: SourceId) -> bool;
        /// Cardinality.
        fn card(&self) -> usize;
    }

    impl TagSet for super::SourceSet {
        fn insert_id(&mut self, id: SourceId) {
            self.insert(id);
        }
        fn union_with_set(&mut self, other: &Self) {
            self.union_with(other);
        }
        fn contains_id(&self, id: SourceId) -> bool {
            self.contains(id)
        }
        fn card(&self) -> usize {
            self.len()
        }
    }

    /// Sorted-`Vec` representation (cache friendly, O(n) merge).
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct SortedVecSet(pub Vec<u16>);

    impl TagSet for SortedVecSet {
        fn insert_id(&mut self, id: SourceId) {
            if let Err(pos) = self.0.binary_search(&id.0) {
                self.0.insert(pos, id.0);
            }
        }
        fn union_with_set(&mut self, other: &Self) {
            let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
            let (mut i, mut j) = (0, 0);
            while i < self.0.len() && j < other.0.len() {
                match self.0[i].cmp(&other.0[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(self.0[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(other.0[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(self.0[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&self.0[i..]);
            merged.extend_from_slice(&other.0[j..]);
            self.0 = merged;
        }
        fn contains_id(&self, id: SourceId) -> bool {
            self.0.binary_search(&id.0).is_ok()
        }
        fn card(&self) -> usize {
            self.0.len()
        }
    }

    /// `BTreeSet` representation (pointer-chasing baseline).
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct BTreeTagSet(pub BTreeSet<u16>);

    impl TagSet for BTreeTagSet {
        fn insert_id(&mut self, id: SourceId) {
            self.0.insert(id.0);
        }
        fn union_with_set(&mut self, other: &Self) {
            self.0.extend(other.0.iter().copied());
        }
        fn contains_id(&self, id: SourceId) -> bool {
            self.0.contains(&id.0)
        }
        fn card(&self) -> usize {
            self.0.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> SourceSet {
        v.iter().map(|&i| SourceId(i)).collect()
    }

    #[test]
    fn registry_interns_and_looks_up() {
        let mut reg = SourceRegistry::new();
        let ad = reg.intern("AD");
        let pd = reg.intern("PD");
        assert_eq!(reg.intern("AD"), ad);
        assert_ne!(ad, pd);
        assert_eq!(reg.name(ad), "AD");
        assert_eq!(reg.lookup("PD"), Some(pd));
        assert_eq!(reg.lookup("CD"), None);
        assert_eq!(reg.len(), 2);
        let names: Vec<&str> = reg.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["AD", "PD"]);
    }

    #[test]
    fn render_matches_paper_style() {
        let mut reg = SourceRegistry::new();
        let ad = reg.intern("AD");
        let cd = reg.intern("CD");
        assert_eq!(reg.render_set(&SourceSet::empty()), "{}");
        assert_eq!(reg.render_set(&SourceSet::singleton(ad)), "{AD}");
        assert_eq!(reg.render_set(&SourceSet::from_ids([cd, ad])), "{AD, CD}");
    }

    #[test]
    fn empty_singleton_basics() {
        let e = SourceSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = SourceSet::singleton(SourceId(7));
        assert!(!s.is_empty());
        assert!(s.contains(SourceId(7)));
        assert!(!s.contains(SourceId(8)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_inline() {
        let mut a = ids(&[1, 5]);
        a.union_with(&ids(&[5, 100]));
        assert_eq!(a, ids(&[1, 5, 100]));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn spills_to_heap_beyond_128() {
        let mut a = ids(&[3]);
        a.insert(SourceId(300));
        assert!(a.contains(SourceId(3)));
        assert!(a.contains(SourceId(300)));
        assert_eq!(a.len(), 2);
        // Union heap ∪ inline and inline ∪ heap agree.
        let b = ids(&[64]);
        let mut h1 = a.clone();
        h1.union_with(&b);
        let mut h2 = b.clone();
        h2.union_with(&a);
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), 3);
    }

    #[test]
    fn canonical_equality_across_reprs() {
        // Build {5} the long way round through a heap spill.
        let mut via_heap = ids(&[5, 300]);
        // There is no removal; emulate by constructing a heap with zero
        // trailing words through union of disjoint low sets.
        let direct = ids(&[5, 300]);
        via_heap.union_with(&ids(&[]));
        assert_eq!(via_heap, direct);
        use std::collections::HashSet;
        let mut hs = HashSet::new();
        hs.insert(via_heap);
        hs.insert(direct);
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn subset_and_order() {
        assert!(ids(&[1]).is_subset(&ids(&[1, 2])));
        assert!(!ids(&[1, 3]).is_subset(&ids(&[1, 2])));
        assert!(ids(&[]).is_subset(&ids(&[])));
        assert!(ids(&[1]).is_subset(&ids(&[1, 300])));
        assert!(!ids(&[300]).is_subset(&ids(&[1])));
        assert!(ids(&[1, 2]) < ids(&[1, 3]));
        assert!(ids(&[]) < ids(&[0]));
    }

    #[test]
    fn iter_ascending() {
        let s = ids(&[130, 2, 64, 7]);
        let got: Vec<u16> = s.iter().map(|i| i.0).collect();
        assert_eq!(got, vec![2, 7, 64, 130]);
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let a = ids(&[1, 70, 129]);
        let b = ids(&[0, 70, 200]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&SourceSet::empty()), a);
    }

    #[test]
    fn alt_representations_agree() {
        use alt::{BTreeTagSet, SortedVecSet, TagSet};
        fn exercise<T: TagSet>() -> (usize, bool, bool) {
            let mut a = T::default();
            a.insert_id(SourceId(3));
            a.insert_id(SourceId(1));
            a.insert_id(SourceId(3));
            let mut b = T::default();
            b.insert_id(SourceId(2));
            b.insert_id(SourceId(1));
            a.union_with_set(&b);
            (
                a.card(),
                a.contains_id(SourceId(2)),
                a.contains_id(SourceId(9)),
            )
        }
        assert_eq!(exercise::<SourceSet>(), (3, true, false));
        assert_eq!(exercise::<SortedVecSet>(), (3, true, false));
        assert_eq!(exercise::<BTreeTagSet>(), (3, true, false));
    }
}
